//! The TBox store with the applicability indexes used by enrichment.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use optique_rdf::Iri;

use crate::axiom::Axiom;
use crate::concept::BasicConcept;
use crate::role::Role;

/// An OWL 2 QL TBox: declared vocabulary plus axioms, indexed for the
/// backward-chaining accesses that PerfectRef-style rewriting performs.
///
/// Two index directions are maintained: `sup → direct subs` (who is directly
/// subsumed by this concept/role — the rewriter's "applicable axioms"
/// question) and `sub → direct sups` (used by classification, satisfiability
/// and the materialization oracle).
#[derive(Clone, Default)]
pub struct Ontology {
    axioms: Vec<Axiom>,
    classes: BTreeSet<Iri>,
    object_properties: BTreeSet<Iri>,
    data_properties: BTreeSet<Iri>,
    subs_of_concept: HashMap<BasicConcept, Vec<BasicConcept>>,
    sups_of_concept: HashMap<BasicConcept, Vec<BasicConcept>>,
    subs_of_role: HashMap<Role, Vec<Role>>,
    sups_of_role: HashMap<Role, Vec<Role>>,
    disjoint_concepts: Vec<(BasicConcept, BasicConcept)>,
    disjoint_roles: Vec<(Role, Role)>,
    functional: HashSet<Role>,
}

impl Ontology {
    /// An empty TBox.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Declares a named class (idempotent).
    pub fn declare_class(&mut self, iri: impl Into<Iri>) {
        self.classes.insert(iri.into());
    }

    /// Declares an object property (idempotent).
    pub fn declare_object_property(&mut self, iri: impl Into<Iri>) {
        self.object_properties.insert(iri.into());
    }

    /// Declares a data property (idempotent).
    pub fn declare_data_property(&mut self, iri: impl Into<Iri>) {
        self.data_properties.insert(iri.into());
    }

    /// Declared classes in sorted order.
    pub fn classes(&self) -> impl Iterator<Item = &Iri> {
        self.classes.iter()
    }

    /// Declared object properties in sorted order.
    pub fn object_properties(&self) -> impl Iterator<Item = &Iri> {
        self.object_properties.iter()
    }

    /// Declared data properties in sorted order.
    pub fn data_properties(&self) -> impl Iterator<Item = &Iri> {
        self.data_properties.iter()
    }

    /// True when `iri` is declared as a data property.
    pub fn is_data_property(&self, iri: &Iri) -> bool {
        self.data_properties.contains(iri)
    }

    /// All axioms in insertion order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// Number of axioms.
    pub fn axiom_count(&self) -> usize {
        self.axioms.len()
    }

    /// Adds an axiom, auto-declaring any vocabulary it mentions, and updates
    /// the applicability indexes.
    pub fn add_axiom(&mut self, axiom: Axiom) {
        match &axiom {
            Axiom::SubClass { sub, sup } => {
                self.note_concept(sub);
                self.note_concept(sup);
                self.subs_of_concept
                    .entry(sup.clone())
                    .or_default()
                    .push(sub.clone());
                self.sups_of_concept
                    .entry(sub.clone())
                    .or_default()
                    .push(sup.clone());
            }
            Axiom::SubRole { sub, sup } => {
                self.note_role(sub);
                self.note_role(sup);
                // A role inclusion S ⊑ R entails S⁻ ⊑ R⁻; index both
                // orientations so closure walks need no special-casing.
                for (s, r) in [(sub.clone(), sup.clone()), (sub.inverse(), sup.inverse())] {
                    self.subs_of_role
                        .entry(r.clone())
                        .or_default()
                        .push(s.clone());
                    self.sups_of_role.entry(s).or_default().push(r);
                }
            }
            Axiom::DisjointClasses(a, b) => {
                self.note_concept(a);
                self.note_concept(b);
                self.disjoint_concepts.push((a.clone(), b.clone()));
            }
            Axiom::DisjointRoles(a, b) => {
                self.note_role(a);
                self.note_role(b);
                self.disjoint_roles.push((a.clone(), b.clone()));
            }
            Axiom::Functional(role) => {
                self.note_role(role);
                self.functional.insert(role.clone());
            }
        }
        self.axioms.push(axiom);
    }

    fn note_concept(&mut self, concept: &BasicConcept) {
        match concept {
            BasicConcept::Atomic(iri) => {
                self.classes.insert(iri.clone());
            }
            BasicConcept::Exists(role) => self.note_role(role),
        }
    }

    fn note_role(&mut self, role: &Role) {
        let iri = role.property().clone();
        if !self.data_properties.contains(&iri) {
            self.object_properties.insert(iri);
        }
    }

    /// Direct subsumees of a concept: every `B` with an explicit `B ⊑ concept`
    /// axiom (not including those induced by role inclusions).
    pub fn direct_sub_concepts(&self, concept: &BasicConcept) -> &[BasicConcept] {
        self.subs_of_concept
            .get(concept)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Direct subsumees of a role, with inverse orientations already folded in.
    pub fn direct_sub_roles(&self, role: &Role) -> &[Role] {
        self.subs_of_role
            .get(role)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Reflexive-transitive subsumee closure of a concept, accounting for
    /// role inclusions (`S ⊑ R` entails `∃S ⊑ ∃R`).
    pub fn sub_concepts_closure(&self, concept: &BasicConcept) -> BTreeSet<BasicConcept> {
        self.concept_closure(concept, Direction::Down)
    }

    /// Reflexive-transitive subsumer closure of a concept.
    pub fn sup_concepts_closure(&self, concept: &BasicConcept) -> BTreeSet<BasicConcept> {
        self.concept_closure(concept, Direction::Up)
    }

    fn concept_closure(&self, concept: &BasicConcept, dir: Direction) -> BTreeSet<BasicConcept> {
        let mut seen: BTreeSet<BasicConcept> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(concept.clone());
        queue.push_back(concept.clone());
        while let Some(current) = queue.pop_front() {
            let concept_edges = match dir {
                Direction::Down => self.subs_of_concept.get(&current),
                Direction::Up => self.sups_of_concept.get(&current),
            };
            let role_neighbours: Vec<BasicConcept> = match &current {
                BasicConcept::Exists(role) => {
                    let role_edges = match dir {
                        Direction::Down => self.subs_of_role.get(role),
                        Direction::Up => self.sups_of_role.get(role),
                    };
                    role_edges
                        .into_iter()
                        .flatten()
                        .map(|r| BasicConcept::Exists(r.clone()))
                        .collect()
                }
                BasicConcept::Atomic(_) => Vec::new(),
            };
            for next in concept_edges
                .into_iter()
                .flatten()
                .cloned()
                .chain(role_neighbours)
            {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Reflexive-transitive subsumee closure of a role.
    pub fn sub_roles_closure(&self, role: &Role) -> BTreeSet<Role> {
        self.role_closure(role, Direction::Down)
    }

    /// Reflexive-transitive subsumer closure of a role.
    pub fn sup_roles_closure(&self, role: &Role) -> BTreeSet<Role> {
        self.role_closure(role, Direction::Up)
    }

    fn role_closure(&self, role: &Role, dir: Direction) -> BTreeSet<Role> {
        let mut seen: BTreeSet<Role> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(role.clone());
        queue.push_back(role.clone());
        while let Some(current) = queue.pop_front() {
            let edges = match dir {
                Direction::Down => self.subs_of_role.get(&current),
                Direction::Up => self.sups_of_role.get(&current),
            };
            for next in edges.into_iter().flatten().cloned() {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Classifies the atomic class hierarchy: for each declared class, the
    /// set of its atomic subsumers (excluding itself).
    pub fn classify(&self) -> BTreeMap<Iri, BTreeSet<Iri>> {
        let mut out = BTreeMap::new();
        for class in &self.classes {
            let concept = BasicConcept::Atomic(class.clone());
            let sups: BTreeSet<Iri> = self
                .sup_concepts_closure(&concept)
                .into_iter()
                .filter_map(|c| c.as_atomic().cloned())
                .filter(|iri| iri != class)
                .collect();
            out.insert(class.clone(), sups);
        }
        out
    }

    /// Declared disjointness between concepts (as asserted, not closed).
    pub fn disjoint_concepts(&self) -> &[(BasicConcept, BasicConcept)] {
        &self.disjoint_concepts
    }

    /// Declared disjointness between roles.
    pub fn disjoint_roles(&self) -> &[(Role, Role)] {
        &self.disjoint_roles
    }

    /// Roles asserted functional.
    pub fn functional_roles(&self) -> impl Iterator<Item = &Role> {
        self.functional.iter()
    }

    /// True when `role` is asserted functional.
    pub fn is_functional(&self, role: &Role) -> bool {
        self.functional.contains(role)
    }

    /// A concept is unsatisfiable when its subsumer closure contains two
    /// concepts asserted disjoint (directly or through further subsumption).
    pub fn is_satisfiable(&self, concept: &BasicConcept) -> bool {
        let sups = self.sup_concepts_closure(concept);
        for (a, b) in &self.disjoint_concepts {
            let a_hit = sups
                .iter()
                .any(|s| self.sup_concepts_closure(s).contains(a));
            let b_hit = sups
                .iter()
                .any(|s| self.sup_concepts_closure(s).contains(b));
            if a_hit && b_hit {
                return false;
            }
        }
        true
    }

    /// All declared classes that are unsatisfiable — the "quality
    /// verification" check BootOX runs after bootstrapping or importing.
    pub fn unsatisfiable_classes(&self) -> Vec<Iri> {
        self.classes
            .iter()
            .filter(|c| !self.is_satisfiable(&BasicConcept::Atomic((*c).clone())))
            .cloned()
            .collect()
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Up,
    Down,
}

impl std::fmt::Debug for Ontology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ontology({} axioms, {} classes, {} object props, {} data props)",
            self.axioms.len(),
            self.classes.len(),
            self.object_properties.len(),
            self.data_properties.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn atomic(s: &str) -> BasicConcept {
        BasicConcept::atomic(iri(s))
    }

    /// TBox used across tests:
    /// TempSensor ⊑ Sensor ⊑ Device; ∃inAssembly ⊑ Sensor; ∃inAssembly⁻ ⊑ Assembly;
    /// partOf ⊑ locatedIn; Turbine disj Sensor; funct inAssembly.
    fn siemens_like() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("TempSensor"), atomic("Sensor")));
        o.add_axiom(Axiom::subclass(atomic("Sensor"), atomic("Device")));
        o.add_axiom(Axiom::domain(iri("inAssembly"), atomic("Sensor")));
        o.add_axiom(Axiom::range(iri("inAssembly"), atomic("Assembly")));
        o.add_axiom(Axiom::subrole(
            Role::named(iri("partOf")),
            Role::named(iri("locatedIn")),
        ));
        o.add_axiom(Axiom::DisjointClasses(atomic("Turbine"), atomic("Sensor")));
        o.add_axiom(Axiom::Functional(Role::named(iri("inAssembly"))));
        o
    }

    #[test]
    fn closure_is_transitive() {
        let o = siemens_like();
        let sups = o.sup_concepts_closure(&atomic("TempSensor"));
        assert!(sups.contains(&atomic("Sensor")));
        assert!(sups.contains(&atomic("Device")));
    }

    #[test]
    fn closure_is_reflexive() {
        let o = siemens_like();
        assert!(o
            .sup_concepts_closure(&atomic("Sensor"))
            .contains(&atomic("Sensor")));
        assert!(o
            .sub_concepts_closure(&atomic("Sensor"))
            .contains(&atomic("Sensor")));
    }

    #[test]
    fn domain_gives_exists_subsumee() {
        let o = siemens_like();
        let subs = o.sub_concepts_closure(&atomic("Sensor"));
        assert!(subs.contains(&BasicConcept::exists(iri("inAssembly"))));
        // And transitively Device subsumes ∃inAssembly.
        let device_subs = o.sub_concepts_closure(&atomic("Device"));
        assert!(device_subs.contains(&BasicConcept::exists(iri("inAssembly"))));
    }

    #[test]
    fn role_inclusion_induces_exists_inclusion() {
        let o = siemens_like();
        let subs = o.sub_concepts_closure(&BasicConcept::exists(iri("locatedIn")));
        assert!(subs.contains(&BasicConcept::exists(iri("partOf"))));
        // Inverse orientation too.
        let subs_inv = o.sub_concepts_closure(&BasicConcept::exists_inverse(iri("locatedIn")));
        assert!(subs_inv.contains(&BasicConcept::exists_inverse(iri("partOf"))));
    }

    #[test]
    fn role_closure_handles_inverse_orientation() {
        let o = siemens_like();
        let subs = o.sub_roles_closure(&Role::inverse_of(iri("locatedIn")));
        assert!(subs.contains(&Role::inverse_of(iri("partOf"))));
    }

    #[test]
    fn classify_lists_atomic_subsumers() {
        let o = siemens_like();
        let taxonomy = o.classify();
        let temp_sups = &taxonomy[&iri("TempSensor")];
        assert!(temp_sups.contains(&iri("Sensor")));
        assert!(temp_sups.contains(&iri("Device")));
        assert!(
            !temp_sups.contains(&iri("TempSensor")),
            "classification excludes self"
        );
    }

    #[test]
    fn satisfiability_detects_disjointness_clash() {
        let mut o = siemens_like();
        // TurbineSensor ⊑ Turbine and ⊑ Sensor, which are disjoint.
        o.add_axiom(Axiom::subclass(atomic("TurbineSensor"), atomic("Turbine")));
        o.add_axiom(Axiom::subclass(atomic("TurbineSensor"), atomic("Sensor")));
        assert!(!o.is_satisfiable(&atomic("TurbineSensor")));
        assert_eq!(o.unsatisfiable_classes(), vec![iri("TurbineSensor")]);
    }

    #[test]
    fn satisfiable_by_default() {
        let o = siemens_like();
        assert!(o.is_satisfiable(&atomic("Sensor")));
        assert!(o.unsatisfiable_classes().is_empty());
    }

    #[test]
    fn functional_roles_recorded() {
        let o = siemens_like();
        assert!(o.is_functional(&Role::named(iri("inAssembly"))));
        assert!(!o.is_functional(&Role::named(iri("partOf"))));
    }

    #[test]
    fn vocabulary_autodeclared() {
        let o = siemens_like();
        let classes: Vec<_> = o.classes().cloned().collect();
        assert!(classes.contains(&iri("Sensor")));
        assert!(classes.contains(&iri("Assembly")));
        let props: Vec<_> = o.object_properties().cloned().collect();
        assert!(props.contains(&iri("inAssembly")));
    }

    #[test]
    fn data_property_declaration_wins_over_autodeclare() {
        let mut o = Ontology::new();
        o.declare_data_property(iri("hasValue"));
        o.add_axiom(Axiom::domain(iri("hasValue"), atomic("Sensor")));
        assert!(o.is_data_property(&iri("hasValue")));
        assert!(!o.object_properties().any(|p| p == &iri("hasValue")));
    }

    #[test]
    fn cyclic_hierarchy_terminates() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("A"), atomic("B")));
        o.add_axiom(Axiom::subclass(atomic("B"), atomic("A")));
        let sups = o.sup_concepts_closure(&atomic("A"));
        assert!(sups.contains(&atomic("B")));
        assert_eq!(sups.len(), 2);
    }
}
