//! TBox axioms of the OWL 2 QL fragment.

use std::fmt;

use crate::concept::BasicConcept;
use crate::role::Role;

/// An OWL 2 QL (DL-Lite_R) TBox axiom.
///
/// `SubClass` covers the OWL constructs `SubClassOf`, `ObjectPropertyDomain`
/// (`∃P ⊑ A`), `ObjectPropertyRange` (`∃P⁻ ⊑ A`), and mandatory-participation
/// axioms (`A ⊑ ∃P`). `SubRole` covers `SubObjectPropertyOf` and (as a pair
/// of inclusions) `InverseObjectProperties`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Axiom {
    /// `sub ⊑ sup` between basic concepts.
    SubClass {
        /// Subsumed concept.
        sub: BasicConcept,
        /// Subsuming concept.
        sup: BasicConcept,
    },
    /// `sub ⊑ sup` between roles.
    SubRole {
        /// Subsumed role.
        sub: Role,
        /// Subsuming role.
        sup: Role,
    },
    /// `a ⊑ ¬b`: the two concepts share no instances.
    DisjointClasses(BasicConcept, BasicConcept),
    /// `r ⊑ ¬s`: the two roles share no pairs.
    DisjointRoles(Role, Role),
    /// `funct R`: integrity constraint — each subject has at most one
    /// `R`-successor. Never used for rewriting (OWL 2 QL excludes it there);
    /// the STARQL sequencing semantics checks it per window state.
    Functional(Role),
}

impl Axiom {
    /// Convenience: `SubClassOf(A, B)` between two named classes.
    pub fn subclass(sub: impl Into<BasicConcept>, sup: impl Into<BasicConcept>) -> Self {
        Axiom::SubClass {
            sub: sub.into(),
            sup: sup.into(),
        }
    }

    /// Convenience: `ObjectPropertyDomain(P, A)` as `∃P ⊑ A`.
    pub fn domain(property: impl Into<optique_rdf::Iri>, class: impl Into<BasicConcept>) -> Self {
        Axiom::SubClass {
            sub: BasicConcept::Exists(Role::named(property.into())),
            sup: class.into(),
        }
    }

    /// Convenience: `ObjectPropertyRange(P, A)` as `∃P⁻ ⊑ A`.
    pub fn range(property: impl Into<optique_rdf::Iri>, class: impl Into<BasicConcept>) -> Self {
        Axiom::SubClass {
            sub: BasicConcept::Exists(Role::inverse_of(property.into())),
            sup: class.into(),
        }
    }

    /// Convenience: `SubObjectPropertyOf(P, Q)`.
    pub fn subrole(sub: Role, sup: Role) -> Self {
        Axiom::SubRole { sub, sup }
    }

    /// The pair of role inclusions equivalent to `InverseObjectProperties(P, Q)`.
    pub fn inverse_properties(
        p: impl Into<optique_rdf::Iri>,
        q: impl Into<optique_rdf::Iri>,
    ) -> [Self; 2] {
        let p = p.into();
        let q = q.into();
        [
            Axiom::SubRole {
                sub: Role::named(p.clone()),
                sup: Role::inverse_of(q.clone()),
            },
            Axiom::SubRole {
                sub: Role::named(q),
                sup: Role::inverse_of(p),
            },
        ]
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::SubClass { sub, sup } => write!(f, "{sub} ⊑ {sup}"),
            Axiom::SubRole { sub, sup } => write!(f, "{sub} ⊑ {sup}"),
            Axiom::DisjointClasses(a, b) => write!(f, "{a} ⊑ ¬{b}"),
            Axiom::DisjointRoles(a, b) => write!(f, "{a} ⊑ ¬{b}"),
            Axiom::Functional(r) => write!(f, "funct {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_rdf::Iri;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    #[test]
    fn domain_is_exists_inclusion() {
        let ax = Axiom::domain(iri("p"), BasicConcept::atomic(iri("A")));
        let Axiom::SubClass { sub, .. } = &ax else {
            panic!()
        };
        assert_eq!(sub, &BasicConcept::exists(iri("p")));
    }

    #[test]
    fn range_is_inverse_exists_inclusion() {
        let ax = Axiom::range(iri("p"), BasicConcept::atomic(iri("A")));
        let Axiom::SubClass { sub, .. } = &ax else {
            panic!()
        };
        assert_eq!(sub, &BasicConcept::exists_inverse(iri("p")));
    }

    #[test]
    fn inverse_properties_expand_to_two_inclusions() {
        let [a, b] = Axiom::inverse_properties(iri("hasPart"), iri("partOf"));
        let Axiom::SubRole { sub: s1, sup: p1 } = &a else {
            panic!()
        };
        let Axiom::SubRole { sub: s2, sup: p2 } = &b else {
            panic!()
        };
        assert_eq!(s1, &Role::named(iri("hasPart")));
        assert_eq!(p1, &Role::inverse_of(iri("partOf")));
        assert_eq!(s2, &Role::named(iri("partOf")));
        assert_eq!(p2, &Role::inverse_of(iri("hasPart")));
    }

    #[test]
    fn display_is_readable() {
        let ax = Axiom::subclass(
            BasicConcept::atomic(iri("TemperatureSensor")),
            BasicConcept::atomic(iri("Sensor")),
        );
        assert!(ax.to_string().contains("⊑"));
    }
}
