//! Basic concepts of DL-Lite_R.

use std::fmt;

use optique_rdf::Iri;

use crate::role::Role;

/// A DL-Lite_R *basic concept*: an atomic class or an unqualified
/// existential restriction over a role.
///
/// `∃R` denotes "things with at least one `R`-successor"; `∃R⁻` (an
/// existential over an inverse role) denotes "things with at least one
/// `R`-predecessor". These are exactly the concept shapes OWL 2 QL permits
/// on the left-hand side of inclusions, and — together with atomic classes —
/// the shapes PerfectRef rewrites between.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BasicConcept {
    /// A named class `A`.
    Atomic(Iri),
    /// `∃R` for a (possibly inverse) role `R`.
    Exists(Role),
}

impl BasicConcept {
    /// A named class.
    pub fn atomic(iri: impl Into<Iri>) -> Self {
        BasicConcept::Atomic(iri.into())
    }

    /// `∃P` over a named property.
    pub fn exists(iri: impl Into<Iri>) -> Self {
        BasicConcept::Exists(Role::named(iri.into()))
    }

    /// `∃P⁻` over a named property.
    pub fn exists_inverse(iri: impl Into<Iri>) -> Self {
        BasicConcept::Exists(Role::inverse_of(iri.into()))
    }

    /// The class IRI when atomic.
    pub fn as_atomic(&self) -> Option<&Iri> {
        match self {
            BasicConcept::Atomic(iri) => Some(iri),
            BasicConcept::Exists(_) => None,
        }
    }

    /// The role when existential.
    pub fn as_exists(&self) -> Option<&Role> {
        match self {
            BasicConcept::Exists(role) => Some(role),
            BasicConcept::Atomic(_) => None,
        }
    }
}

impl fmt::Display for BasicConcept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicConcept::Atomic(iri) => write!(f, "{iri}"),
            BasicConcept::Exists(role) => write!(f, "∃{role}"),
        }
    }
}

impl From<Iri> for BasicConcept {
    fn from(value: Iri) -> Self {
        BasicConcept::Atomic(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = BasicConcept::atomic(Iri::new("http://x/A"));
        assert!(a.as_atomic().is_some());
        assert!(a.as_exists().is_none());
        let e = BasicConcept::exists(Iri::new("http://x/p"));
        assert!(e.as_atomic().is_none());
        assert_eq!(e.as_exists().unwrap().property().as_str(), "http://x/p");
    }

    #[test]
    fn display_shapes() {
        assert_eq!(
            BasicConcept::atomic(Iri::new("http://x/A")).to_string(),
            "<http://x/A>"
        );
        assert_eq!(
            BasicConcept::exists(Iri::new("http://x/p")).to_string(),
            "∃<http://x/p>"
        );
        assert_eq!(
            BasicConcept::exists_inverse(Iri::new("http://x/p")).to_string(),
            "∃<http://x/p>⁻"
        );
    }
}
