//! Forward-chaining saturation (a bounded chase) of an RDF graph under a TBox.
//!
//! Used as the ground-truth oracle when testing the rewriting-based pipeline:
//! answering a conjunctive query over the *materialized* graph must agree
//! with answering the *rewritten* query over the raw graph. The chase is
//! depth-bounded because DL-Lite existentials (`A ⊑ ∃R`) can generate
//! infinite chains; queries in this workspace never traverse more than a few
//! existential hops, so a small bound is exact for them.

use std::collections::HashMap;

use optique_rdf::{Graph, Iri, Term, Triple, TriplePattern};

use crate::axiom::Axiom;
use crate::concept::BasicConcept;
use crate::ontology::Ontology;
use crate::role::Role;

/// Saturates `graph` under the TBox with existential-witness chains bounded
/// by `max_chase_depth` (0 disables witness creation entirely). Returns the
/// number of triples added.
pub fn materialize(graph: &mut Graph, ontology: &Ontology, max_chase_depth: usize) -> usize {
    let rdf_type = Iri::new(optique_rdf::vocab::rdf::TYPE);
    let mut witness_depth: HashMap<u64, usize> = HashMap::new();
    let mut added = 0usize;
    loop {
        let mut new_triples: Vec<Triple> = Vec::new();
        for axiom in ontology.axioms() {
            match axiom {
                Axiom::SubClass { sub, sup } => {
                    for member in concept_members(graph, sub) {
                        extend_with_concept(
                            graph,
                            &member,
                            sup,
                            &rdf_type,
                            max_chase_depth,
                            &witness_depth,
                            &mut new_triples,
                        );
                    }
                }
                Axiom::SubRole { sub, sup } => {
                    for (x, y) in role_pairs(graph, sub) {
                        let triple = role_triple(&x, &y, sup);
                        if let Some(t) = triple {
                            if !graph.contains(&t) {
                                new_triples.push(t);
                            }
                        }
                    }
                }
                // Constraints add no facts.
                Axiom::DisjointClasses(..) | Axiom::DisjointRoles(..) | Axiom::Functional(..) => {}
            }
        }
        if new_triples.is_empty() {
            return added;
        }
        for t in new_triples {
            // Track chase depth of freshly minted witnesses: a witness hanging
            // off another witness is one level deeper.
            if let Term::BNode(id) = &t.object {
                if !witness_depth.contains_key(id) {
                    let parent_depth = match &t.subject {
                        Term::BNode(pid) => witness_depth.get(pid).copied().unwrap_or(0),
                        _ => 0,
                    };
                    witness_depth.insert(*id, parent_depth + 1);
                }
            }
            if graph.insert(t) {
                added += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn extend_with_concept(
    graph: &Graph,
    member: &Term,
    sup: &BasicConcept,
    rdf_type: &Iri,
    max_chase_depth: usize,
    witness_depth: &HashMap<u64, usize>,
    out: &mut Vec<Triple>,
) {
    match sup {
        BasicConcept::Atomic(class) => {
            let t = Triple::new(member.clone(), rdf_type.clone(), Term::Iri(class.clone()));
            if !graph.contains(&t) {
                out.push(t);
            }
        }
        BasicConcept::Exists(role) => {
            // `member ∈ ∃R` — if it has no R-successor yet, mint a witness,
            // unless the member is itself a witness at the depth bound.
            if has_role_successor(graph, member, role) {
                return;
            }
            let depth = match member {
                Term::BNode(id) => witness_depth.get(id).copied().unwrap_or(0),
                _ => 0,
            };
            if depth >= max_chase_depth {
                return;
            }
            // Deterministic witness id derived from insertion count: callers
            // observe only that the witness is fresh.
            let witness = Term::BNode(hash_witness(member, role));
            if let Some(t) = role_triple(member, &witness, role) {
                if !graph.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
}

/// Stable witness id so repeated chase rounds reuse the same blank node
/// instead of minting endless fresh ones for the same (member, role) demand.
fn hash_witness(member: &Term, role: &Role) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    member.hash(&mut h);
    role.hash(&mut h);
    h.finish()
}

fn has_role_successor(graph: &Graph, member: &Term, role: &Role) -> bool {
    let pattern = match role {
        Role::Named(p) => TriplePattern::any()
            .with_subject(member.clone())
            .with_predicate(p.clone()),
        Role::Inverse(p) => TriplePattern::any()
            .with_predicate(p.clone())
            .with_object(member.clone()),
    };
    !graph.matching(&pattern).is_empty()
}

/// The graph members of a basic concept: `A` → subjects of `rdf:type A`;
/// `∃R` → subjects with an `R`-successor.
pub fn concept_members(graph: &Graph, concept: &BasicConcept) -> Vec<Term> {
    match concept {
        BasicConcept::Atomic(class) => graph.instances_of(class),
        BasicConcept::Exists(Role::Named(p)) => graph
            .matching(&TriplePattern::any().with_predicate(p.clone()))
            .into_iter()
            .map(|t| t.subject)
            .collect(),
        BasicConcept::Exists(Role::Inverse(p)) => graph
            .matching(&TriplePattern::any().with_predicate(p.clone()))
            .into_iter()
            .filter(|t| t.object.is_resource())
            .map(|t| t.object)
            .collect(),
    }
}

/// The `(x, y)` pairs of a role in the graph, normalised so `x` is the role
/// subject (i.e. inverse roles swap the triple's positions).
pub fn role_pairs(graph: &Graph, role: &Role) -> Vec<(Term, Term)> {
    let triples = graph.matching(&TriplePattern::any().with_predicate(role.property().clone()));
    triples
        .into_iter()
        .filter_map(|t| match role {
            Role::Named(_) => Some((t.subject, t.object)),
            Role::Inverse(_) => {
                if t.object.is_resource() {
                    Some((t.object, t.subject))
                } else {
                    None
                }
            }
        })
        .collect()
}

fn role_triple(x: &Term, y: &Term, role: &Role) -> Option<Triple> {
    match role {
        Role::Named(p) => Some(Triple::new(x.clone(), p.clone(), y.clone())),
        Role::Inverse(p) => {
            if y.is_resource() {
                Some(Triple::new(y.clone(), p.clone(), x.clone()))
            } else {
                None
            }
        }
    }
}

/// ABox-level constraint violations found in a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An individual belongs to two disjoint concepts.
    DisjointConcepts {
        /// The offending individual.
        individual: Term,
        /// First concept.
        left: BasicConcept,
        /// Second concept.
        right: BasicConcept,
    },
    /// A functional role with two distinct successors for one subject.
    Functionality {
        /// The role asserted functional.
        role: Role,
        /// The subject with multiple successors.
        subject: Term,
    },
}

/// Checks a (typically materialized) graph against the TBox's disjointness
/// and functionality constraints — the consistency half of OBSSDI's
/// closed-world integrity checking.
pub fn check_constraints(graph: &Graph, ontology: &Ontology) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (a, b) in ontology.disjoint_concepts() {
        let left: std::collections::BTreeSet<_> = concept_members(graph, a).into_iter().collect();
        for member in concept_members(graph, b) {
            if left.contains(&member) {
                violations.push(Violation::DisjointConcepts {
                    individual: member,
                    left: a.clone(),
                    right: b.clone(),
                });
            }
        }
    }
    for role in ontology.functional_roles() {
        let mut seen: HashMap<Term, Term> = HashMap::new();
        for (x, y) in role_pairs(graph, role) {
            match seen.get(&x) {
                Some(existing) if existing != &y => {
                    violations.push(Violation::Functionality {
                        role: role.clone(),
                        subject: x,
                    });
                }
                _ => {
                    seen.insert(x, y);
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn atomic(s: &str) -> BasicConcept {
        BasicConcept::atomic(iri(s))
    }

    fn tbox() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("TempSensor"), atomic("Sensor")));
        o.add_axiom(Axiom::domain(iri("inAssembly"), atomic("Sensor")));
        o.add_axiom(Axiom::range(iri("inAssembly"), atomic("Assembly")));
        o.add_axiom(Axiom::subrole(
            Role::named(iri("partOf")),
            Role::named(iri("locatedIn")),
        ));
        o
    }

    #[test]
    fn subclass_materializes() {
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(
            Term::iri("http://x/s1"),
            iri("TempSensor"),
        ));
        materialize(&mut g, &tbox(), 0);
        assert!(g.contains(&Triple::class_assertion(
            Term::iri("http://x/s1"),
            iri("Sensor")
        )));
    }

    #[test]
    fn domain_and_range_materialize() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://x/s1"),
            iri("inAssembly"),
            Term::iri("http://x/a1"),
        ));
        materialize(&mut g, &tbox(), 0);
        assert!(g.contains(&Triple::class_assertion(
            Term::iri("http://x/s1"),
            iri("Sensor")
        )));
        assert!(g.contains(&Triple::class_assertion(
            Term::iri("http://x/a1"),
            iri("Assembly")
        )));
    }

    #[test]
    fn subrole_materializes() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://x/p1"),
            iri("partOf"),
            Term::iri("http://x/t1"),
        ));
        materialize(&mut g, &tbox(), 0);
        assert!(g.contains(&Triple::new(
            Term::iri("http://x/p1"),
            iri("locatedIn"),
            Term::iri("http://x/t1")
        )));
    }

    #[test]
    fn existential_mints_bounded_witnesses() {
        let mut o = Ontology::new();
        // A ⊑ ∃p and ∃p⁻ ⊑ A: each witness re-enters A, creating a chain.
        o.add_axiom(Axiom::SubClass {
            sub: atomic("A"),
            sup: BasicConcept::exists(iri("p")),
        });
        o.add_axiom(Axiom::range(iri("p"), atomic("A")));
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(Term::iri("http://x/a"), iri("A")));
        materialize(&mut g, &o, 2);
        // depth bound 2: a → w1 → w2, and w2 gets typed A but no further p edge.
        let p_edges = g.matching(&TriplePattern::any().with_predicate(iri("p")));
        assert_eq!(p_edges.len(), 2, "chase depth bounded");
    }

    #[test]
    fn chase_depth_zero_adds_no_witnesses() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::SubClass {
            sub: atomic("A"),
            sup: BasicConcept::exists(iri("p")),
        });
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(Term::iri("http://x/a"), iri("A")));
        let added = materialize(&mut g, &o, 0);
        assert_eq!(added, 0);
    }

    #[test]
    fn existing_successor_satisfies_existential() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::SubClass {
            sub: atomic("A"),
            sup: BasicConcept::exists(iri("p")),
        });
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(Term::iri("http://x/a"), iri("A")));
        g.insert(Triple::new(
            Term::iri("http://x/a"),
            iri("p"),
            Term::iri("http://x/b"),
        ));
        let before = g.len();
        materialize(&mut g, &o, 3);
        assert_eq!(g.len(), before, "no witness needed");
    }

    #[test]
    fn disjointness_violation_detected() {
        let mut o = tbox();
        o.add_axiom(Axiom::DisjointClasses(atomic("Sensor"), atomic("Turbine")));
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(
            Term::iri("http://x/z"),
            iri("Sensor"),
        ));
        g.insert(Triple::class_assertion(
            Term::iri("http://x/z"),
            iri("Turbine"),
        ));
        let violations = check_constraints(&g, &o);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], Violation::DisjointConcepts { .. }));
    }

    #[test]
    fn functionality_violation_detected() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::Functional(Role::named(iri("inAssembly"))));
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://x/s"),
            iri("inAssembly"),
            Term::iri("http://x/a1"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/s"),
            iri("inAssembly"),
            Term::iri("http://x/a2"),
        ));
        let violations = check_constraints(&g, &o);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], Violation::Functionality { .. }));
    }

    #[test]
    fn consistent_graph_passes() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://x/s"),
            iri("inAssembly"),
            Term::iri("http://x/a1"),
        ));
        materialize(&mut g, &tbox(), 0);
        assert!(check_constraints(&g, &tbox()).is_empty());
    }

    #[test]
    fn materialize_is_idempotent() {
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(
            Term::iri("http://x/s1"),
            iri("TempSensor"),
        ));
        materialize(&mut g, &tbox(), 1);
        let len = g.len();
        let added = materialize(&mut g, &tbox(), 1);
        assert_eq!(added, 0);
        assert_eq!(g.len(), len);
    }
}
