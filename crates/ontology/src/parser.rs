//! A functional-style text syntax for authoring OWL 2 QL TBoxes.
//!
//! The grammar is a pragmatic subset of the OWL 2 Functional-Style Syntax,
//! restricted to the constructs expressible in the QL profile:
//!
//! ```text
//! Prefix(sie: <http://siemens.example/ontology#>)
//! Declaration(Class(sie:Turbine))
//! Declaration(ObjectProperty(sie:inAssembly))
//! Declaration(DataProperty(sie:hasValue))
//! SubClassOf(sie:TempSensor sie:Sensor)
//! SubClassOf(sie:Turbine ObjectSomeValuesFrom(sie:hasPart owl:Thing))
//! ObjectPropertyDomain(sie:inAssembly sie:Sensor)
//! ObjectPropertyRange(sie:inAssembly sie:Assembly)
//! SubObjectPropertyOf(sie:partOf sie:locatedIn)
//! SubObjectPropertyOf(ObjectInverseOf(sie:hasPart) sie:partOf)
//! InverseObjectProperties(sie:hasPart sie:partOf)
//! DisjointClasses(sie:Turbine sie:Sensor)
//! FunctionalObjectProperty(sie:inAssembly)
//! FunctionalDataProperty(sie:hasValue)
//! DataPropertyDomain(sie:hasValue sie:Sensor)
//! ```
//!
//! Comments start with `#` and run to end of line. Whitespace is free-form.

use optique_rdf::{Iri, Namespaces};

use crate::axiom::Axiom;
use crate::concept::BasicConcept;
use crate::ontology::Ontology;
use crate::role::Role;

/// A parse failure with positional context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntologyParseError {
    /// 1-based line where the failure was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for OntologyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for OntologyParseError {}

/// Parses a TBox document, returning the ontology and the prefix table it
/// declared (callers reuse the prefixes to compact IRIs in reports).
pub fn parse_ontology(text: &str) -> Result<(Ontology, Namespaces), OntologyParseError> {
    let mut namespaces = Namespaces::with_w3c_defaults();
    let mut ontology = Ontology::new();
    let mut tokens = Tokenizer::new(text);
    while let Some(tok) = tokens.next_token()? {
        let Token::Ident(head) = tok else {
            return Err(tokens.error(format!("expected construct name, got {tok:?}")));
        };
        tokens.expect(Token::Open)?;
        match head.as_str() {
            "Prefix" => parse_prefix(&mut tokens, &mut namespaces)?,
            "Declaration" => parse_declaration(&mut tokens, &namespaces, &mut ontology)?,
            "SubClassOf" => {
                let sub = parse_concept(&mut tokens, &namespaces)?;
                let sup = parse_concept(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::SubClass { sub, sup });
            }
            "ObjectPropertyDomain" => {
                let role = parse_role(&mut tokens, &namespaces)?;
                let sup = parse_concept(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::SubClass {
                    sub: BasicConcept::Exists(role),
                    sup,
                });
            }
            "ObjectPropertyRange" => {
                let role = parse_role(&mut tokens, &namespaces)?;
                let sup = parse_concept(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::SubClass {
                    sub: BasicConcept::Exists(role.inverse()),
                    sup,
                });
            }
            "DataPropertyDomain" => {
                let prop = parse_curie(&mut tokens, &namespaces)?;
                ontology.declare_data_property(prop.clone());
                let sup = parse_concept(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::SubClass {
                    sub: BasicConcept::Exists(Role::Named(prop)),
                    sup,
                });
            }
            "SubObjectPropertyOf" => {
                let sub = parse_role(&mut tokens, &namespaces)?;
                let sup = parse_role(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::SubRole { sub, sup });
            }
            "InverseObjectProperties" => {
                let p = parse_curie(&mut tokens, &namespaces)?;
                let q = parse_curie(&mut tokens, &namespaces)?;
                for ax in Axiom::inverse_properties(p, q) {
                    ontology.add_axiom(ax);
                }
            }
            "DisjointClasses" => {
                let a = parse_concept(&mut tokens, &namespaces)?;
                let b = parse_concept(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::DisjointClasses(a, b));
            }
            "DisjointObjectProperties" => {
                let a = parse_role(&mut tokens, &namespaces)?;
                let b = parse_role(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::DisjointRoles(a, b));
            }
            "FunctionalObjectProperty" => {
                let role = parse_role(&mut tokens, &namespaces)?;
                ontology.add_axiom(Axiom::Functional(role));
            }
            "FunctionalDataProperty" => {
                let prop = parse_curie(&mut tokens, &namespaces)?;
                ontology.declare_data_property(prop.clone());
                ontology.add_axiom(Axiom::Functional(Role::Named(prop)));
            }
            other => return Err(tokens.error(format!("unsupported construct {other}"))),
        }
        tokens.expect(Token::Close)?;
    }
    Ok((ontology, namespaces))
}

fn parse_prefix(tokens: &mut Tokenizer<'_>, ns: &mut Namespaces) -> Result<(), OntologyParseError> {
    let Some(Token::Ident(binding)) = tokens.next_token()? else {
        return Err(tokens.error("expected `prefix:` binding".into()));
    };
    let prefix = binding
        .strip_suffix(':')
        .ok_or_else(|| tokens.error(format!("prefix binding must end with ':', got {binding}")))?
        .to_string();
    let Some(Token::IriRef(iri)) = tokens.next_token()? else {
        return Err(tokens.error("expected <IRI> after prefix".into()));
    };
    ns.bind(prefix, iri);
    Ok(())
}

fn parse_declaration(
    tokens: &mut Tokenizer<'_>,
    ns: &Namespaces,
    ontology: &mut Ontology,
) -> Result<(), OntologyParseError> {
    let Some(Token::Ident(kind)) = tokens.next_token()? else {
        return Err(tokens.error("expected entity kind in Declaration".into()));
    };
    tokens.expect(Token::Open)?;
    let iri = parse_curie(tokens, ns)?;
    tokens.expect(Token::Close)?;
    match kind.as_str() {
        "Class" => ontology.declare_class(iri),
        "ObjectProperty" => ontology.declare_object_property(iri),
        "DataProperty" => ontology.declare_data_property(iri),
        other => return Err(tokens.error(format!("unsupported declaration kind {other}"))),
    }
    Ok(())
}

fn parse_concept(
    tokens: &mut Tokenizer<'_>,
    ns: &Namespaces,
) -> Result<BasicConcept, OntologyParseError> {
    match tokens.next_token()? {
        Some(Token::Ident(name)) if name == "ObjectSomeValuesFrom" => {
            tokens.expect(Token::Open)?;
            let role = parse_role(tokens, ns)?;
            // The filler must be owl:Thing in OWL 2 QL subclass position.
            let filler = parse_curie(tokens, ns)?;
            if filler.as_str() != optique_rdf::vocab::owl::THING {
                return Err(tokens.error(format!(
                    "OWL 2 QL restricts existential fillers here to owl:Thing, got {filler}"
                )));
            }
            tokens.expect(Token::Close)?;
            Ok(BasicConcept::Exists(role))
        }
        Some(tok) => {
            let iri = curie_from_token(tok, ns).map_err(|m| tokens.error(m))?;
            Ok(BasicConcept::Atomic(iri))
        }
        None => Err(tokens.error("expected concept, found end of input".into())),
    }
}

fn parse_role(tokens: &mut Tokenizer<'_>, ns: &Namespaces) -> Result<Role, OntologyParseError> {
    match tokens.next_token()? {
        Some(Token::Ident(name)) if name == "ObjectInverseOf" => {
            tokens.expect(Token::Open)?;
            let iri = parse_curie(tokens, ns)?;
            tokens.expect(Token::Close)?;
            Ok(Role::Inverse(iri))
        }
        Some(tok) => {
            let iri = curie_from_token(tok, ns).map_err(|m| tokens.error(m))?;
            Ok(Role::Named(iri))
        }
        None => Err(tokens.error("expected role, found end of input".into())),
    }
}

fn parse_curie(tokens: &mut Tokenizer<'_>, ns: &Namespaces) -> Result<Iri, OntologyParseError> {
    match tokens.next_token()? {
        Some(tok) => curie_from_token(tok, ns).map_err(|m| tokens.error(m)),
        None => Err(tokens.error("expected IRI, found end of input".into())),
    }
}

fn curie_from_token(tok: Token, ns: &Namespaces) -> Result<Iri, String> {
    match tok {
        Token::IriRef(full) => Ok(Iri::new(full)),
        Token::Ident(curie) => ns
            .expand(&curie)
            .ok_or_else(|| format!("unbound or malformed CURIE {curie}")),
        other => Err(format!("expected IRI or CURIE, got {other:?}")),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    IriRef(String),
    Open,
    Close,
}

struct Tokenizer<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(text: &'a str) -> Self {
        Tokenizer {
            rest: text,
            line: 1,
        }
    }

    fn error(&self, message: String) -> OntologyParseError {
        OntologyParseError {
            line: self.line,
            message,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            let trimmed = self.rest.trim_start_matches(|c: char| {
                if c == '\n' {
                    self.line += 1;
                }
                c.is_whitespace()
            });
            if let Some(after) = trimmed.strip_prefix('#') {
                let end = after.find('\n').map(|i| i + 1).unwrap_or(after.len());
                if after[..end].ends_with('\n') {
                    self.line += 1;
                }
                self.rest = &after[end..];
            } else {
                self.rest = trimmed;
                return;
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, OntologyParseError> {
        self.skip_trivia();
        let mut chars = self.rest.chars();
        let Some(first) = chars.next() else {
            return Ok(None);
        };
        match first {
            '(' => {
                self.rest = &self.rest[1..];
                Ok(Some(Token::Open))
            }
            ')' => {
                self.rest = &self.rest[1..];
                Ok(Some(Token::Close))
            }
            '<' => {
                let end = self
                    .rest
                    .find('>')
                    .ok_or_else(|| self.error("unterminated <IRI>".into()))?;
                let iri = self.rest[1..end].to_string();
                self.rest = &self.rest[end + 1..];
                Ok(Some(Token::IriRef(iri)))
            }
            c if c.is_alphanumeric() || c == '_' => {
                let end = self
                    .rest
                    .find(|ch: char| {
                        !(ch.is_alphanumeric() || ch == '_' || ch == ':' || ch == '-' || ch == '.')
                    })
                    .unwrap_or(self.rest.len());
                let ident = self.rest[..end].to_string();
                self.rest = &self.rest[end..];
                Ok(Some(Token::Ident(ident)))
            }
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }

    fn expect(&mut self, expected: Token) -> Result<(), OntologyParseError> {
        match self.next_token()? {
            Some(tok) if tok == expected => Ok(()),
            Some(tok) => Err(self.error(format!("expected {expected:?}, got {tok:?}"))),
            None => Err(self.error(format!("expected {expected:?}, found end of input"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        Prefix(sie: <http://siemens.example/ontology#>)
        # equipment taxonomy
        Declaration(Class(sie:Turbine))
        Declaration(DataProperty(sie:hasValue))
        SubClassOf(sie:TempSensor sie:Sensor)
        SubClassOf(sie:Turbine ObjectSomeValuesFrom(sie:hasPart owl:Thing))
        ObjectPropertyDomain(sie:inAssembly sie:Sensor)
        ObjectPropertyRange(sie:inAssembly sie:Assembly)
        SubObjectPropertyOf(sie:partOf sie:locatedIn)
        SubObjectPropertyOf(ObjectInverseOf(sie:hasPart) sie:partOf)
        InverseObjectProperties(sie:hasPart sie:partOf)
        DisjointClasses(sie:Turbine sie:Sensor)
        FunctionalObjectProperty(sie:inAssembly)
        FunctionalDataProperty(sie:hasValue)
        DataPropertyDomain(sie:hasValue sie:Sensor)
    "#;

    #[test]
    fn parses_sample_document() {
        let (onto, ns) = parse_ontology(SAMPLE).unwrap();
        assert!(onto.axiom_count() >= 11);
        assert!(ns.namespace("sie").is_some());
        let sensor = ns.expand("sie:Sensor").unwrap();
        let temp = ns.expand("sie:TempSensor").unwrap();
        assert!(onto
            .sup_concepts_closure(&BasicConcept::Atomic(temp))
            .contains(&BasicConcept::Atomic(sensor)));
    }

    #[test]
    fn data_property_tracked() {
        let (onto, ns) = parse_ontology(SAMPLE).unwrap();
        assert!(onto.is_data_property(&ns.expand("sie:hasValue").unwrap()));
    }

    #[test]
    fn existential_superclass_parses() {
        let (onto, ns) = parse_ontology(SAMPLE).unwrap();
        let turbine = BasicConcept::Atomic(ns.expand("sie:Turbine").unwrap());
        let has_part = ns.expand("sie:hasPart").unwrap();
        assert!(onto
            .sup_concepts_closure(&turbine)
            .contains(&BasicConcept::Exists(Role::Named(has_part))));
    }

    #[test]
    fn inverse_role_in_subproperty_position() {
        let (onto, ns) = parse_ontology(SAMPLE).unwrap();
        let part_of = Role::Named(ns.expand("sie:partOf").unwrap());
        let has_part_inv = Role::Inverse(ns.expand("sie:hasPart").unwrap());
        assert!(onto.sub_roles_closure(&part_of).contains(&has_part_inv));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_ontology("Prefix(sie: <http://x#>)\nBogus(sie:A)").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("Bogus"));
    }

    #[test]
    fn unbound_prefix_rejected() {
        let err = parse_ontology("SubClassOf(foo:A foo:B)").unwrap_err();
        assert!(err.message.contains("unbound"));
    }

    #[test]
    fn non_thing_filler_rejected() {
        let err =
            parse_ontology("Prefix(s: <http://x#>)\nSubClassOf(s:A ObjectSomeValuesFrom(s:p s:B))")
                .unwrap_err();
        assert!(err.message.contains("owl:Thing"));
    }

    #[test]
    fn full_iris_accepted_anywhere() {
        let (onto, _) = parse_ontology("SubClassOf(<http://a/X> <http://a/Y>)").unwrap();
        assert_eq!(onto.axiom_count(), 1);
    }
}
