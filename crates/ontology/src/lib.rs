//! OWL 2 QL ontology model for Optique's semantic layer.
//!
//! OWL 2 QL is the profile the paper's STARQL language is defined over: it is
//! the maximal OWL fragment for which conjunctive-query answering is
//! *first-order rewritable*, i.e. the enrichment stage can compile the
//! ontology into the query in polynomial time and hand the result to a plain
//! relational engine. Semantically the profile corresponds to the description
//! logic **DL-Lite_R**, which is exactly what this crate models:
//!
//! * [`Role`] — named object/data properties and their inverses,
//! * [`BasicConcept`] — atomic classes `A` and unqualified existentials
//!   `∃R`/`∃R⁻`,
//! * [`Axiom`] — concept/role inclusions, disjointness, and functionality
//!   (the latter kept as an *integrity constraint*, as in the paper's
//!   sequencing semantics, never used for rewriting),
//! * [`Ontology`] — the axiom store with applicability indexes used by the
//!   PerfectRef-style rewriter in `optique-rewrite`,
//! * [`parser`] — a functional-style text syntax for authoring TBoxes,
//! * [`materialize`] — forward-chaining saturation of an RDF graph under a
//!   TBox, used as the ground-truth oracle in rewriting tests.

pub mod axiom;
pub mod concept;
pub mod materialize;
pub mod ontology;
pub mod parser;
pub mod role;

pub use axiom::Axiom;
pub use concept::BasicConcept;
pub use ontology::Ontology;
pub use role::Role;
