//! Roles: object/data properties and their inverses.

use std::fmt;

use optique_rdf::Iri;

/// A DL-Lite_R role: a named property or the inverse of one.
///
/// Data properties are modelled as roles whose object position holds a
/// literal; the rewriter never inverts them (inverting a data property is
/// not expressible in OWL 2 QL), which callers enforce by only constructing
/// [`Role::Inverse`] for object properties.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Role {
    /// A named property `P`.
    Named(Iri),
    /// The inverse `P⁻` of a named property.
    Inverse(Iri),
}

impl Role {
    /// A named role.
    pub fn named(iri: impl Into<Iri>) -> Self {
        Role::Named(iri.into())
    }

    /// The inverse of a named role.
    pub fn inverse_of(iri: impl Into<Iri>) -> Self {
        Role::Inverse(iri.into())
    }

    /// The underlying property IRI, regardless of direction.
    pub fn property(&self) -> &Iri {
        match self {
            Role::Named(iri) | Role::Inverse(iri) => iri,
        }
    }

    /// Swaps direction: `P ↦ P⁻`, `P⁻ ↦ P`.
    pub fn inverse(&self) -> Role {
        match self {
            Role::Named(iri) => Role::Inverse(iri.clone()),
            Role::Inverse(iri) => Role::Named(iri.clone()),
        }
    }

    /// True for `P⁻`.
    pub fn is_inverse(&self) -> bool {
        matches!(self, Role::Inverse(_))
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Named(iri) => write!(f, "{iri}"),
            Role::Inverse(iri) => write!(f, "{iri}⁻"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_inverse_is_identity() {
        let r = Role::named(Iri::new("http://x/p"));
        assert_eq!(r.inverse().inverse(), r);
    }

    #[test]
    fn property_ignores_direction() {
        let p = Iri::new("http://x/p");
        assert_eq!(Role::named(p.clone()).property(), &p);
        assert_eq!(Role::inverse_of(p.clone()).property(), &p);
    }

    #[test]
    fn inverse_flag() {
        assert!(!Role::named(Iri::new("http://x/p")).is_inverse());
        assert!(Role::inverse_of(Iri::new("http://x/p")).is_inverse());
    }
}
