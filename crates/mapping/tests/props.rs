//! Property tests: template inversion laws and unfolding-vs-virtual-graph
//! agreement on generated data.

use optique_mapping::{
    materialize_catalog, unfold_cq, IriTemplate, MappingAssertion, MappingCatalog, TermMap,
};
use optique_rdf::Iri;
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm};
use proptest::prelude::*;

proptest! {
    /// invert ∘ render is the identity on integer key values.
    #[test]
    fn template_invert_render_roundtrip(
        prefix in "[a-z]{1,8}",
        suffix in "[a-z]{0,5}",
        key in any::<i64>(),
    ) {
        let t = IriTemplate::parse(&format!("http://x/{prefix}/{{id}}{suffix}")).unwrap();
        let rendered = t.render(&Value::Int(key));
        prop_assert_eq!(t.invert(&rendered), Some(Value::Int(key)));
    }

    /// Unfolded SQL answers = CQ over the materialized virtual graph, for a
    /// generated two-table FK instance.
    #[test]
    fn unfolding_agrees_with_virtual_graph(
        turbines in proptest::collection::vec(0i64..30, 1..12),
        sensor_links in proptest::collection::vec((0i64..40, any::<proptest::sample::Index>()), 0..20),
    ) {
        let mut tids: Vec<i64> = turbines;
        tids.sort_unstable();
        tids.dedup();
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int)],
                tids.iter().map(|&t| vec![Value::Int(t)]).collect(),
            )
            .unwrap(),
        );
        let mut sids: Vec<(i64, i64)> = sensor_links
            .into_iter()
            .map(|(s, pick)| (s, tids[pick.index(tids.len())]))
            .collect();
        sids.sort_unstable();
        sids.dedup_by_key(|(s, _)| *s);
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                sids.iter().map(|&(s, t)| vec![Value::Int(s), Value::Int(t)]).collect(),
            )
            .unwrap(),
        );

        let mut catalog = MappingCatalog::new();
        catalog
            .add(
                MappingAssertion::class(
                    "turbine",
                    Iri::new("http://x/Turbine"),
                    "SELECT tid FROM turbines",
                    TermMap::template("http://x/turbine/{tid}"),
                )
                .with_key(vec!["tid".into()]),
            )
            .unwrap();
        catalog
            .add(
                MappingAssertion::property(
                    "attached",
                    Iri::new("http://x/attachedTo"),
                    "SELECT sid, tid FROM sensors",
                    TermMap::template("http://x/sensor/{sid}"),
                    TermMap::template("http://x/turbine/{tid}"),
                )
                .with_key(vec!["sid".into()]),
            )
            .unwrap();

        let q = ConjunctiveQuery::new(
            vec!["s".into(), "t".into()],
            vec![
                Atom::property(
                    Iri::new("http://x/attachedTo"),
                    QueryTerm::var("s"),
                    QueryTerm::var("t"),
                ),
                Atom::class(Iri::new("http://x/Turbine"), QueryTerm::var("t")),
            ],
        );
        let (sql, _) = unfold_cq(&q, &catalog, &Default::default()).unwrap();
        let via_sql = match sql {
            Some(stmt) => optique_relational::exec::query(&stmt.to_string(), &db).unwrap().len(),
            None => 0,
        };
        let graph = materialize_catalog(&catalog, &db).unwrap();
        let via_graph = q.evaluate(&graph).len();
        prop_assert_eq!(via_sql, via_graph);
    }
}
