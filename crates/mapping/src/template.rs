//! Single-variable IRI templates with inversion.

use optique_relational::Value;

/// An IRI template of shape `prefix{column}suffix`.
///
/// BootOX and the hand-written Siemens mappings only ever mint object
/// identifiers from a single key column, so one variable slot is enforced —
/// it is what makes template *inversion* (constant IRI → column constraint)
/// and join-compatibility checks exact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IriTemplate {
    prefix: String,
    column: String,
    suffix: String,
}

impl IriTemplate {
    /// Parses `"http://x/turbine/{tid}"`-style templates. Exactly one
    /// `{column}` slot is required.
    pub fn parse(template: &str) -> Result<Self, String> {
        let open = template
            .find('{')
            .ok_or_else(|| format!("template {template:?} has no {{column}} slot"))?;
        let close = template[open..]
            .find('}')
            .map(|i| open + i)
            .ok_or_else(|| format!("template {template:?} has an unterminated slot"))?;
        let column = template[open + 1..close].to_string();
        if column.is_empty() {
            return Err(format!("template {template:?} has an empty column name"));
        }
        let rest = &template[close + 1..];
        if rest.contains('{') {
            return Err(format!("template {template:?} has more than one slot"));
        }
        Ok(IriTemplate {
            prefix: template[..open].to_string(),
            column,
            suffix: rest.to_string(),
        })
    }

    /// The column the slot reads.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The template text with the slot as `{}` — the form the
    /// `iri_template` SQL scalar takes.
    pub fn sql_pattern(&self) -> String {
        format!("{}{{}}{}", self.prefix, self.suffix)
    }

    /// Renders the IRI for a concrete value.
    pub fn render(&self, value: &Value) -> String {
        let middle = match value {
            Value::Text(s) => s.to_string(),
            other => other.to_string(),
        };
        format!("{}{middle}{}", self.prefix, self.suffix)
    }

    /// Two templates can produce equal IRIs only when their fixed parts
    /// agree (they may differ in column *name* — that just means joining on
    /// differently-named key columns).
    pub fn compatible_with(&self, other: &IriTemplate) -> bool {
        self.prefix == other.prefix && self.suffix == other.suffix
    }

    /// Inverts the template against a constant IRI: the column value that
    /// would render it, or `None` when the IRI does not match. Numeric
    /// strings come back as integers so column comparisons type-check.
    pub fn invert(&self, iri: &str) -> Option<Value> {
        let rest = iri.strip_prefix(self.prefix.as_str())?;
        let middle = rest.strip_suffix(self.suffix.as_str())?;
        if middle.is_empty() {
            return None;
        }
        Some(match middle.parse::<i64>() {
            Ok(n) => Value::Int(n),
            Err(_) => Value::text(middle),
        })
    }
}

impl std::fmt::Display for IriTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{{{}}}{}", self.prefix, self.column, self.suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render() {
        let t = IriTemplate::parse("http://x/turbine/{tid}").unwrap();
        assert_eq!(t.column(), "tid");
        assert_eq!(t.render(&Value::Int(42)), "http://x/turbine/42");
        assert_eq!(t.sql_pattern(), "http://x/turbine/{}");
    }

    #[test]
    fn parse_with_suffix() {
        let t = IriTemplate::parse("http://x/{sid}/sensor").unwrap();
        assert_eq!(t.render(&Value::text("a7")), "http://x/a7/sensor");
    }

    #[test]
    fn parse_errors() {
        assert!(IriTemplate::parse("http://x/noslot").is_err());
        assert!(IriTemplate::parse("http://x/{unterminated").is_err());
        assert!(IriTemplate::parse("http://x/{}").is_err());
        assert!(IriTemplate::parse("http://x/{a}/{b}").is_err());
    }

    #[test]
    fn inversion() {
        let t = IriTemplate::parse("http://x/turbine/{tid}").unwrap();
        assert_eq!(t.invert("http://x/turbine/42"), Some(Value::Int(42)));
        assert_eq!(t.invert("http://x/turbine/ab7"), Some(Value::text("ab7")));
        assert_eq!(t.invert("http://x/sensor/42"), None);
        assert_eq!(t.invert("http://x/turbine/"), None);
    }

    #[test]
    fn compatibility_ignores_column_name() {
        let a = IriTemplate::parse("http://x/t/{id}").unwrap();
        let b = IriTemplate::parse("http://x/t/{turbine_id}").unwrap();
        let c = IriTemplate::parse("http://x/s/{id}").unwrap();
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
    }

    #[test]
    fn roundtrip_display() {
        let t = IriTemplate::parse("http://x/{sid}/part").unwrap();
        let re = IriTemplate::parse(&t.to_string()).unwrap();
        assert_eq!(t, re);
    }
}
