//! R2RML-style GAV mappings and the **unfolding** stage.
//!
//! A mapping in OBSSDI relates one ontological term to queries over the
//! data: `Turbine(f(x⃗)) ← ∃y⃗ SQL(x⃗, y⃗)`, "a view definition … where `f` is
//! a function that converts tuples returned by SQL into identifiers of
//! objects populating the class Turbine". This crate models those
//! assertions and implements stage (ii) of query evaluation: translating an
//! enriched UCQ into SQL(+) — "STARQL unfolding is linear-time in the size
//! of both mappings and query".
//!
//! * [`IriTemplate`] — the `f` above: single-variable IRI templates with
//!   inversion (needed to push constant IRIs down to column predicates),
//! * [`MappingAssertion`]/[`MappingCatalog`] — the mapping store indexed by
//!   ontological term,
//! * [`unfold`] — CQ/UCQ → `SELECT … UNION ALL …` over the mapped sources,
//!   with incompatible-combination pruning and (optional, ablatable)
//!   self-join elimination,
//! * [`virtualize`] — materializes the virtual RDF graph a catalog defines
//!   over a database; the unfolding test oracle and the STATIC DATA path.

pub mod assertion;
pub mod catalog;
pub mod template;
pub mod unfold;
pub mod virtualize;

pub use assertion::{MappingAssertion, MappingHead, TermMap};
pub use catalog::MappingCatalog;
pub use template::IriTemplate;
pub use unfold::{unfold_cq, unfold_ucq, UnfoldSettings, UnfoldStats};
pub use virtualize::materialize_catalog;
