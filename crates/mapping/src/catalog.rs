//! The mapping catalog, indexed by ontological term.

use std::collections::HashMap;

use optique_rdf::Iri;

use crate::assertion::{MappingAssertion, MappingHead};

/// A set of mapping assertions with term-indexed lookup — the deployment
/// artifact BootOX produces and the unfolder consumes.
#[derive(Clone, Debug, Default)]
pub struct MappingCatalog {
    assertions: Vec<MappingAssertion>,
    by_class: HashMap<Iri, Vec<usize>>,
    by_property: HashMap<Iri, Vec<usize>>,
}

impl MappingCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        MappingCatalog::default()
    }

    /// Adds an assertion after validation.
    pub fn add(&mut self, assertion: MappingAssertion) -> Result<(), String> {
        assertion.validate()?;
        let idx = self.assertions.len();
        match &assertion.head {
            MappingHead::Class(c) => self.by_class.entry(c.clone()).or_default().push(idx),
            MappingHead::Property(p) => self.by_property.entry(p.clone()).or_default().push(idx),
        }
        self.assertions.push(assertion);
        Ok(())
    }

    /// All assertions.
    pub fn assertions(&self) -> &[MappingAssertion] {
        &self.assertions
    }

    /// Number of assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Assertions populating class `c`.
    pub fn for_class(&self, c: &Iri) -> Vec<&MappingAssertion> {
        self.by_class
            .get(c)
            .map(|ids| ids.iter().map(|&i| &self.assertions[i]).collect())
            .unwrap_or_default()
    }

    /// Assertions populating property `p`.
    pub fn for_property(&self, p: &Iri) -> Vec<&MappingAssertion> {
        self.by_property
            .get(p)
            .map(|ids| ids.iter().map(|&i| &self.assertions[i]).collect())
            .unwrap_or_default()
    }

    /// Ontological terms that have at least one mapping.
    pub fn mapped_terms(&self) -> Vec<&Iri> {
        let mut terms: Vec<&Iri> = self
            .by_class
            .keys()
            .chain(self.by_property.keys())
            .collect();
        terms.sort();
        terms
    }

    /// Merges another catalog into this one (BootOX "importing" flow).
    pub fn merge(&mut self, other: MappingCatalog) -> Result<(), String> {
        for a in other.assertions {
            self.add(a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::TermMap;
    use optique_rdf::Datatype;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn catalog() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(MappingAssertion::class(
            "m1",
            iri("Turbine"),
            "SELECT tid FROM turbines",
            TermMap::template("http://x/turbine/{tid}"),
        ))
        .unwrap();
        c.add(MappingAssertion::class(
            "m2",
            iri("Turbine"),
            "SELECT tid FROM legacy_turbines",
            TermMap::template("http://x/turbine/{tid}"),
        ))
        .unwrap();
        c.add(MappingAssertion::property(
            "m3",
            iri("hasValue"),
            "SELECT sid, val FROM msmt",
            TermMap::template("http://x/sensor/{sid}"),
            TermMap::column("val", Datatype::Double),
        ))
        .unwrap();
        c
    }

    #[test]
    fn lookup_by_term() {
        let c = catalog();
        assert_eq!(c.for_class(&iri("Turbine")).len(), 2);
        assert_eq!(c.for_property(&iri("hasValue")).len(), 1);
        assert!(c.for_class(&iri("Nope")).is_empty());
    }

    #[test]
    fn invalid_assertion_rejected() {
        let mut c = MappingCatalog::new();
        let err = c.add(MappingAssertion::class(
            "bad",
            iri("X"),
            "NOT SQL",
            TermMap::template("http://x/{id}"),
        ));
        assert!(err.is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn mapped_terms_sorted() {
        let c = catalog();
        let terms = c.mapped_terms();
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn merge_catalogs() {
        let mut a = catalog();
        let mut b = MappingCatalog::new();
        b.add(MappingAssertion::class(
            "m9",
            iri("Sensor"),
            "SELECT sid FROM sensors",
            TermMap::template("http://x/sensor/{sid}"),
        ))
        .unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.len(), 4);
    }
}
