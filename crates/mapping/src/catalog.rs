//! The mapping catalog, indexed by ontological term.

use std::collections::{BTreeMap, HashMap};

use optique_rdf::Iri;
use optique_relational::parser::TableRef;

use crate::assertion::{MappingAssertion, MappingHead, TermMap};

/// A set of mapping assertions with term-indexed lookup — the deployment
/// artifact BootOX produces and the unfolder consumes.
#[derive(Clone, Debug, Default)]
pub struct MappingCatalog {
    assertions: Vec<MappingAssertion>,
    by_class: HashMap<Iri, Vec<usize>>,
    by_property: HashMap<Iri, Vec<usize>>,
}

impl MappingCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        MappingCatalog::default()
    }

    /// Adds an assertion after validation.
    pub fn add(&mut self, assertion: MappingAssertion) -> Result<(), String> {
        assertion.validate()?;
        let idx = self.assertions.len();
        match &assertion.head {
            MappingHead::Class(c) => self.by_class.entry(c.clone()).or_default().push(idx),
            MappingHead::Property(p) => self.by_property.entry(p.clone()).or_default().push(idx),
        }
        self.assertions.push(assertion);
        Ok(())
    }

    /// All assertions.
    pub fn assertions(&self) -> &[MappingAssertion] {
        &self.assertions
    }

    /// Number of assertions.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Assertions populating class `c`.
    pub fn for_class(&self, c: &Iri) -> Vec<&MappingAssertion> {
        self.by_class
            .get(c)
            .map(|ids| ids.iter().map(|&i| &self.assertions[i]).collect())
            .unwrap_or_default()
    }

    /// Assertions populating property `p`.
    pub fn for_property(&self, p: &Iri) -> Vec<&MappingAssertion> {
        self.by_property
            .get(p)
            .map(|ids| ids.iter().map(|&i| &self.assertions[i]).collect())
            .unwrap_or_default()
    }

    /// Ontological terms that have at least one mapping.
    pub fn mapped_terms(&self) -> Vec<&Iri> {
        let mut terms: Vec<&Iri> = self
            .by_class
            .keys()
            .chain(self.by_property.keys())
            .collect();
        terms.sort();
        terms
    }

    /// Merges another catalog into this one (BootOX "importing" flow).
    pub fn merge(&mut self, other: MappingCatalog) -> Result<(), String> {
        for a in other.assertions {
            self.add(a)?;
        }
        Ok(())
    }

    /// How often each `(base table, column)` pair appears as a **term-map
    /// column** across the catalog, sorted by table then column.
    ///
    /// Term-map columns (an IRI template's slot, a literal map's column)
    /// are exactly the positions unfolded disjuncts join and filter
    /// through: two atoms sharing a variable become an equality between the
    /// term-map columns of their picked sources. The counts therefore
    /// estimate join frequency per column — the weight the partition-key
    /// advisor (`optique_relational::advise_partition_keys`) scores
    /// candidates by. Assertions whose source is not a simple single-table
    /// select are skipped (column-to-table attribution would be ambiguous).
    pub fn term_column_usage(&self) -> Vec<(String, String, usize)> {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for assertion in &self.assertions {
            let Ok(statement) = optique_relational::parse_select(&assertion.source_sql) else {
                continue;
            };
            let TableRef::Named { name, .. } = &statement.from else {
                continue;
            };
            if !statement.joins.is_empty() || statement.union_all.is_some() {
                continue;
            }
            let maps = [Some(&assertion.subject), assertion.object.as_ref()];
            for map in maps.into_iter().flatten() {
                let column = match map {
                    TermMap::Template(t) => Some(t.column().to_string()),
                    TermMap::Column { column, .. } => Some(column.clone()),
                    TermMap::Constant(_) => None,
                };
                if let Some(column) = column {
                    *counts.entry((name.clone(), column)).or_default() += 1;
                }
            }
        }
        counts
            .into_iter()
            .map(|((table, column), n)| (table, column, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::TermMap;
    use optique_rdf::Datatype;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn catalog() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(MappingAssertion::class(
            "m1",
            iri("Turbine"),
            "SELECT tid FROM turbines",
            TermMap::template("http://x/turbine/{tid}"),
        ))
        .unwrap();
        c.add(MappingAssertion::class(
            "m2",
            iri("Turbine"),
            "SELECT tid FROM legacy_turbines",
            TermMap::template("http://x/turbine/{tid}"),
        ))
        .unwrap();
        c.add(MappingAssertion::property(
            "m3",
            iri("hasValue"),
            "SELECT sid, val FROM msmt",
            TermMap::template("http://x/sensor/{sid}"),
            TermMap::column("val", Datatype::Double),
        ))
        .unwrap();
        c
    }

    #[test]
    fn lookup_by_term() {
        let c = catalog();
        assert_eq!(c.for_class(&iri("Turbine")).len(), 2);
        assert_eq!(c.for_property(&iri("hasValue")).len(), 1);
        assert!(c.for_class(&iri("Nope")).is_empty());
    }

    #[test]
    fn invalid_assertion_rejected() {
        let mut c = MappingCatalog::new();
        let err = c.add(MappingAssertion::class(
            "bad",
            iri("X"),
            "NOT SQL",
            TermMap::template("http://x/{id}"),
        ));
        assert!(err.is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn mapped_terms_sorted() {
        let c = catalog();
        let terms = c.mapped_terms();
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn term_column_usage_counts_join_positions() {
        let usage = catalog().term_column_usage();
        // turbines.tid: subject of m1; legacy_turbines.tid: subject of m2;
        // msmt.sid + msmt.val: subject/object of m3.
        assert_eq!(
            usage,
            vec![
                ("legacy_turbines".to_string(), "tid".to_string(), 1),
                ("msmt".to_string(), "sid".to_string(), 1),
                ("msmt".to_string(), "val".to_string(), 1),
                ("turbines".to_string(), "tid".to_string(), 1),
            ]
        );
        // Duplicate references accumulate.
        let mut c = catalog();
        c.add(MappingAssertion::class(
            "m4",
            iri("Generator"),
            "SELECT tid FROM turbines WHERE tid > 3",
            TermMap::template("http://x/turbine/{tid}"),
        ))
        .unwrap();
        let usage = c.term_column_usage();
        assert!(usage.contains(&("turbines".to_string(), "tid".to_string(), 2)));
    }

    #[test]
    fn merge_catalogs() {
        let mut a = catalog();
        let mut b = MappingCatalog::new();
        b.add(MappingAssertion::class(
            "m9",
            iri("Sensor"),
            "SELECT sid FROM sensors",
            TermMap::template("http://x/sensor/{sid}"),
        ))
        .unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.len(), 4);
    }
}
