//! Materializing the virtual RDF graph a catalog defines.
//!
//! Mappings define a *virtual* graph that unfolding queries without ever
//! building; materializing it explicitly gives (a) the ground-truth oracle
//! for unfolding tests — `unfolded SQL over DB ≡ CQ over materialized
//! graph` — and (b) the `STATIC DATA <ABox>` evaluation path STARQL's FROM
//! clause references.

use optique_rdf::{Datatype, Graph, Iri, Literal, Term, Triple};
use optique_relational::{Database, Value};

use crate::assertion::{MappingAssertion, MappingHead, TermMap};
use crate::catalog::MappingCatalog;

/// Converts an RDF literal to the SQL value that would produce it.
pub fn literal_to_value(lit: &Literal) -> Value {
    match lit.datatype() {
        Datatype::Integer => lit.as_i64().map(Value::Int).unwrap_or(Value::Null),
        Datatype::Double => lit.as_f64().map(Value::Float).unwrap_or(Value::Null),
        Datatype::Boolean => lit.as_bool().map(Value::Bool).unwrap_or(Value::Null),
        Datatype::DateTime => lit.as_i64().map(Value::Timestamp).unwrap_or(Value::Null),
        Datatype::String | Datatype::Duration => Value::text(lit.lexical()),
    }
}

/// Converts a SQL value to an RDF literal of the declared datatype;
/// `None` for SQL NULL (no triple is produced).
pub fn value_to_literal(value: &Value, datatype: Datatype) -> Option<Literal> {
    if value.is_null() {
        return None;
    }
    Some(match datatype {
        Datatype::Integer => Literal::integer(value.as_i64()?),
        Datatype::Double => Literal::double(value.as_f64()?),
        Datatype::Boolean => Literal::boolean(value.as_bool()?),
        Datatype::DateTime => Literal::datetime_millis(value.as_i64()?),
        Datatype::Duration => Literal::duration(value.as_str()?),
        Datatype::String => match value {
            Value::Text(s) => Literal::string(s.as_ref()),
            other => Literal::string(other.to_string()),
        },
    })
}

/// Evaluates a term map against one source row.
fn term_of(tm: &TermMap, row: &[Value], schema: &optique_relational::Schema) -> Option<Term> {
    match tm {
        TermMap::Template(t) => {
            let idx = schema.index_of(t.column())?;
            let v = &row[idx];
            if v.is_null() {
                return None;
            }
            Some(Term::Iri(Iri::new(t.render(v))))
        }
        TermMap::Column { column, datatype } => {
            let idx = schema.index_of(column)?;
            value_to_literal(&row[idx], *datatype).map(Term::Literal)
        }
        TermMap::Constant(term) => Some(term.clone()),
    }
}

/// Runs one assertion's source over the database and emits its triples.
pub fn materialize_assertion(
    assertion: &MappingAssertion,
    db: &Database,
) -> Result<Vec<Triple>, String> {
    let table = optique_relational::exec::query(&assertion.source_sql, db)
        .map_err(|e| format!("mapping {}: {e}", assertion.id))?;
    let mut out = Vec::with_capacity(table.len());
    for row in &table.rows {
        let Some(subject) = term_of(&assertion.subject, row, &table.schema) else {
            continue;
        };
        match (&assertion.head, &assertion.object) {
            (MappingHead::Class(c), _) => {
                out.push(Triple::class_assertion(subject, c.clone()));
            }
            (MappingHead::Property(p), Some(obj_map)) => {
                let Some(object) = term_of(obj_map, row, &table.schema) else {
                    continue;
                };
                out.push(Triple::new(subject, p.clone(), object));
            }
            (MappingHead::Property(_), None) => {
                return Err(format!(
                    "mapping {}: property without object map",
                    assertion.id
                ))
            }
        }
    }
    Ok(out)
}

/// Materializes the whole catalog into a graph.
pub fn materialize_catalog(catalog: &MappingCatalog, db: &Database) -> Result<Graph, String> {
    let mut graph = Graph::new();
    for assertion in catalog.assertions() {
        graph.extend(materialize_assertion(assertion, db)?);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{table::table_of, ColumnType};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int), ("model", ColumnType::Text)],
                vec![
                    vec![Value::Int(1), Value::text("SGT-400")],
                    vec![Value::Int(2), Value::text("SGT-800")],
                    vec![Value::Int(3), Value::Null],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn class_assertion_materializes_instances() {
        let m = MappingAssertion::class(
            "m1",
            iri("Turbine"),
            "SELECT tid FROM turbines",
            TermMap::template("http://x/turbine/{tid}"),
        );
        let triples = materialize_assertion(&m, &db()).unwrap();
        assert_eq!(triples.len(), 3);
        assert!(triples
            .iter()
            .all(|t| t.predicate.as_str() == optique_rdf::vocab::rdf::TYPE));
    }

    #[test]
    fn property_skips_null_objects() {
        let m = MappingAssertion::property(
            "m2",
            iri("hasModel"),
            "SELECT tid, model FROM turbines",
            TermMap::template("http://x/turbine/{tid}"),
            TermMap::column("model", Datatype::String),
        );
        let triples = materialize_assertion(&m, &db()).unwrap();
        assert_eq!(triples.len(), 2, "NULL model produces no triple");
    }

    #[test]
    fn filtered_source_respects_where() {
        let m = MappingAssertion::class(
            "m3",
            iri("ModernTurbine"),
            "SELECT tid FROM turbines WHERE tid > 1",
            TermMap::template("http://x/turbine/{tid}"),
        );
        let triples = materialize_assertion(&m, &db()).unwrap();
        assert_eq!(triples.len(), 2);
    }

    #[test]
    fn literal_value_roundtrip() {
        for (lit, val) in [
            (Literal::integer(5), Value::Int(5)),
            (Literal::double(2.5), Value::Float(2.5)),
            (Literal::boolean(true), Value::Bool(true)),
            (Literal::string("x"), Value::text("x")),
            (Literal::datetime_millis(99), Value::Timestamp(99)),
        ] {
            assert_eq!(literal_to_value(&lit), val);
            let dt = lit.datatype();
            assert_eq!(value_to_literal(&val, dt), Some(lit));
        }
        assert_eq!(value_to_literal(&Value::Null, Datatype::Integer), None);
    }

    #[test]
    fn int_column_as_double_literal() {
        let l = value_to_literal(&Value::Int(3), Datatype::Double).unwrap();
        assert_eq!(l.as_f64(), Some(3.0));
    }
}
