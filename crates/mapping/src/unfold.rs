//! Conjunctive-query → SQL(+) unfolding (GAV expansion).
//!
//! Each atom of the (already enriched) query picks one of its term's mapping
//! assertions; each combination of picks yields one conjunctive SQL query —
//! one FROM item per atom, join conditions wherever atoms share variables —
//! and the combinations are assembled with `UNION ALL`. Combinations whose
//! term maps can never produce equal RDF terms (different IRI templates,
//! IRI-vs-literal) are pruned before emission, and aliases over the same
//! source joined on a declared unique key are merged (**self-join
//! elimination** — the redundancy the paper calls out in challenge C3).

use std::collections::HashMap;

use optique_rdf::Term;
use optique_relational::parser::{Join, JoinType, Projection, SelectStatement, TableRef};
use optique_relational::{Expr, Value};
use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm, UnionQuery};

use crate::assertion::{MappingAssertion, MappingHead, TermMap};
use crate::catalog::MappingCatalog;
use crate::virtualize::literal_to_value;

/// Unfolder knobs.
#[derive(Clone, Copy, Debug)]
pub struct UnfoldSettings {
    /// Merge same-source aliases joined on a declared unique key.
    pub eliminate_self_joins: bool,
    /// Upper bound on mapping combinations per CQ.
    pub max_combinations: usize,
}

impl Default for UnfoldSettings {
    fn default() -> Self {
        UnfoldSettings {
            eliminate_self_joins: true,
            max_combinations: 100_000,
        }
    }
}

/// Unfolding observability (feeds E3/E5 reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnfoldStats {
    /// Mapping combinations enumerated.
    pub combinations: usize,
    /// SQL disjuncts emitted.
    pub emitted: usize,
    /// Combinations pruned as term-incompatible.
    pub pruned: usize,
    /// Alias pairs merged by self-join elimination.
    pub self_joins_eliminated: usize,
}

/// One RDF position inside a candidate: which alias produces it, with which
/// term map.
#[derive(Clone, Debug)]
struct Position {
    alias: usize,
    map: TermMap,
}

/// Join/filter conditions over aliases, pre-AST.
#[derive(Clone, Debug, PartialEq)]
enum Cond {
    ColEq {
        left: (usize, String),
        right: (usize, String),
    },
    ColConst {
        col: (usize, String),
        value: Value,
    },
}

/// Unfolds a UCQ into a single SQL(+) statement (`None` when no disjunct has
/// mappings for all its atoms).
pub fn unfold_ucq(
    ucq: &UnionQuery,
    catalog: &MappingCatalog,
    settings: &UnfoldSettings,
) -> Result<(Option<SelectStatement>, UnfoldStats), String> {
    let mut stats = UnfoldStats::default();
    let mut statements: Vec<SelectStatement> = Vec::new();
    for cq in &ucq.disjuncts {
        let (stmt, s) = unfold_cq(cq, catalog, settings)?;
        stats.combinations += s.combinations;
        stats.emitted += s.emitted;
        stats.pruned += s.pruned;
        stats.self_joins_eliminated += s.self_joins_eliminated;
        if let Some(stmt) = stmt {
            statements.push(stmt);
        }
    }
    Ok((chain_union(statements), stats))
}

/// Unfolds one conjunctive query.
pub fn unfold_cq(
    cq: &ConjunctiveQuery,
    catalog: &MappingCatalog,
    settings: &UnfoldSettings,
) -> Result<(Option<SelectStatement>, UnfoldStats), String> {
    let mut stats = UnfoldStats::default();
    if cq.atoms.is_empty() {
        return Err("cannot unfold an empty query body".into());
    }
    // Candidate assertions per atom.
    let mut candidates: Vec<Vec<&MappingAssertion>> = Vec::with_capacity(cq.atoms.len());
    for atom in &cq.atoms {
        let list = match atom {
            Atom::Class { class, .. } => catalog.for_class(class),
            Atom::Property { property, .. } => catalog.for_property(property),
        };
        if list.is_empty() {
            // An unmapped term makes the whole CQ empty over the sources.
            return Ok((None, stats));
        }
        candidates.push(list);
    }

    let total: usize = candidates.iter().map(Vec::len).product();
    if total > settings.max_combinations {
        return Err(format!(
            "unfolding would enumerate {total} combinations (limit {})",
            settings.max_combinations
        ));
    }

    let mut statements: Vec<SelectStatement> = Vec::new();
    let mut odometer = vec![0usize; cq.atoms.len()];
    loop {
        stats.combinations += 1;
        let picks: Vec<&MappingAssertion> = odometer
            .iter()
            .enumerate()
            .map(|(i, &j)| candidates[i][j])
            .collect();
        match build_candidate(cq, &picks, settings, &mut stats)? {
            Some(stmt) => {
                statements.push(stmt);
                stats.emitted += 1;
            }
            None => stats.pruned += 1,
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == odometer.len() {
                return Ok((chain_union(statements), stats));
            }
            odometer[i] += 1;
            if odometer[i] < candidates[i].len() {
                break;
            }
            odometer[i] = 0;
            i += 1;
        }
    }
}

/// Builds the SQL statement for one combination of mapping picks, or `None`
/// when the combination is term-incompatible.
fn build_candidate(
    cq: &ConjunctiveQuery,
    picks: &[&MappingAssertion],
    settings: &UnfoldSettings,
    stats: &mut UnfoldStats,
) -> Result<Option<SelectStatement>, String> {
    // Gather positions: query term → (alias, term map) occurrences.
    let mut var_positions: HashMap<&str, Vec<Position>> = HashMap::new();
    let mut conds: Vec<Cond> = Vec::new();

    for (i, (atom, assertion)) in cq.atoms.iter().zip(picks).enumerate() {
        let object_map = assertion.object.clone();
        let pairs: Vec<(&QueryTerm, TermMap)> = match (atom, &assertion.head) {
            (Atom::Class { arg, .. }, MappingHead::Class(_)) => {
                vec![(arg, assertion.subject.clone())]
            }
            (
                Atom::Property {
                    subject, object, ..
                },
                MappingHead::Property(_),
            ) => {
                let obj = object_map
                    .ok_or_else(|| format!("mapping {} lacks an object map", assertion.id))?;
                vec![(subject, assertion.subject.clone()), (object, obj)]
            }
            _ => {
                return Err(format!(
                    "mapping {} head does not fit its atom",
                    assertion.id
                ))
            }
        };
        for (term, map) in pairs {
            match term {
                QueryTerm::Var(v) => {
                    var_positions
                        .entry(v)
                        .or_default()
                        .push(Position { alias: i, map });
                }
                QueryTerm::Const(c) => match constant_condition(&map, c, i) {
                    ConstOutcome::Cond(cond) => conds.push(cond),
                    ConstOutcome::AlwaysTrue => {}
                    ConstOutcome::Incompatible => return Ok(None),
                },
            }
        }
    }

    // Shared variables induce join conditions.
    for positions in var_positions.values() {
        let first = &positions[0];
        for later in &positions[1..] {
            match join_condition(first, later) {
                JoinOutcome::Cond(cond) => conds.push(cond),
                JoinOutcome::AlwaysTrue => {}
                JoinOutcome::Incompatible => return Ok(None),
            }
        }
    }

    // Alias → source SQL (may shrink under self-join elimination).
    let mut alias_source: Vec<Option<&str>> =
        picks.iter().map(|m| Some(m.source_sql.as_str())).collect();
    let mut alias_rewrite: Vec<usize> = (0..picks.len()).collect();

    if settings.eliminate_self_joins {
        eliminate_self_joins(
            picks,
            &mut alias_source,
            &mut alias_rewrite,
            &mut conds,
            stats,
        );
    }

    // Canonicalize conditions through alias rewrites and drop tautologies.
    let rewrite = |a: usize| -> usize {
        let mut x = a;
        while alias_rewrite[x] != x {
            x = alias_rewrite[x];
        }
        x
    };
    let mut final_conds: Vec<Cond> = Vec::new();
    for cond in conds {
        let cond = match cond {
            Cond::ColEq { left, right } => {
                let l = (rewrite(left.0), left.1);
                let r = (rewrite(right.0), right.1);
                if l == r {
                    continue;
                }
                Cond::ColEq { left: l, right: r }
            }
            Cond::ColConst { col, value } => Cond::ColConst {
                col: (rewrite(col.0), col.1),
                value,
            },
        };
        if !final_conds.contains(&cond) {
            final_conds.push(cond);
        }
    }

    // SELECT list from answer variables. A boolean (ASK-style) query has
    // none; project a constant so the statement stays renderable and row
    // counts still witness satisfiability.
    let mut projections = Vec::with_capacity(cq.answer_vars.len().max(1));
    for v in &cq.answer_vars {
        let positions = var_positions
            .get(v.as_str())
            .ok_or_else(|| format!("answer variable ?{v} does not occur in the query body"))?;
        let p = &positions[0];
        let alias = rewrite(p.alias);
        let expr = term_expr(&p.map, alias);
        projections.push(Projection::Expr {
            expr,
            alias: Some(v.clone()),
        });
    }
    if projections.is_empty() {
        projections.push(Projection::Expr {
            expr: Expr::Literal(Value::Int(1)),
            alias: Some("__exists".into()),
        });
    }

    // FROM / JOIN over live aliases.
    let live: Vec<usize> = (0..picks.len())
        .filter(|&i| alias_source[i].is_some())
        .collect();
    let mut table_refs: Vec<(usize, TableRef)> = Vec::with_capacity(live.len());
    for &i in &live {
        let sql = alias_source[i].expect("live alias has a source");
        let query = optique_relational::parse_select(sql)
            .map_err(|e| format!("mapping source SQL failed to parse: {e}"))?;
        table_refs.push((
            i,
            TableRef::Subquery {
                query: Box::new(query),
                alias: alias_name(i),
            },
        ));
    }

    // Assign each condition: join ON for conditions bridging a later alias
    // to an earlier one; WHERE otherwise.
    let order_of = |a: usize| live.iter().position(|&x| x == a).expect("live alias");
    let mut on_conds: Vec<Vec<Expr>> = vec![Vec::new(); live.len()];
    let mut where_conds: Vec<Expr> = Vec::new();
    for cond in &final_conds {
        match cond {
            Cond::ColEq { left, right } => {
                let (lo, ro) = (order_of(left.0), order_of(right.0));
                let expr = Expr::eq(col_expr(left), col_expr(right));
                let later = lo.max(ro);
                if later == 0 {
                    where_conds.push(expr);
                } else {
                    on_conds[later].push(expr);
                }
            }
            Cond::ColConst { col, value } => {
                where_conds.push(Expr::eq(col_expr(col), Expr::Literal(value.clone())));
            }
        }
    }

    let mut refs = table_refs.into_iter();
    let (_, from) = refs.next().expect("at least one alias");
    let joins: Vec<Join> = refs
        .enumerate()
        .map(|(idx, (_, table))| Join {
            join_type: JoinType::Inner,
            table,
            on: Expr::and_all(on_conds[idx + 1].clone())
                .unwrap_or(Expr::Literal(Value::Bool(true))),
        })
        .collect();

    Ok(Some(SelectStatement {
        distinct: true,
        projections,
        from,
        joins,
        where_clause: Expr::and_all(where_conds),
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: None,
        union_all: None,
    }))
}

enum ConstOutcome {
    Cond(Cond),
    AlwaysTrue,
    Incompatible,
}

fn constant_condition(map: &TermMap, constant: &Term, alias: usize) -> ConstOutcome {
    match (map, constant) {
        (TermMap::Template(t), Term::Iri(iri)) => match t.invert(iri.as_str()) {
            Some(v) => ConstOutcome::Cond(Cond::ColConst {
                col: (alias, t.column().to_string()),
                value: v,
            }),
            None => ConstOutcome::Incompatible,
        },
        (TermMap::Column { column, .. }, Term::Literal(lit)) => {
            ConstOutcome::Cond(Cond::ColConst {
                col: (alias, column.clone()),
                value: literal_to_value(lit),
            })
        }
        (TermMap::Constant(c), k) => {
            if c == k {
                ConstOutcome::AlwaysTrue
            } else {
                ConstOutcome::Incompatible
            }
        }
        // IRI-producing map vs literal constant (or vice versa) never match.
        _ => ConstOutcome::Incompatible,
    }
}

enum JoinOutcome {
    Cond(Cond),
    AlwaysTrue,
    Incompatible,
}

fn join_condition(a: &Position, b: &Position) -> JoinOutcome {
    match (&a.map, &b.map) {
        (TermMap::Template(ta), TermMap::Template(tb)) => {
            if ta.compatible_with(tb) {
                JoinOutcome::Cond(Cond::ColEq {
                    left: (a.alias, ta.column().to_string()),
                    right: (b.alias, tb.column().to_string()),
                })
            } else {
                JoinOutcome::Incompatible
            }
        }
        (TermMap::Column { column: ca, .. }, TermMap::Column { column: cb, .. }) => {
            JoinOutcome::Cond(Cond::ColEq {
                left: (a.alias, ca.clone()),
                right: (b.alias, cb.clone()),
            })
        }
        (TermMap::Constant(x), TermMap::Constant(y)) => {
            if x == y {
                JoinOutcome::AlwaysTrue
            } else {
                JoinOutcome::Incompatible
            }
        }
        (TermMap::Template(t), TermMap::Constant(Term::Iri(iri)))
        | (TermMap::Constant(Term::Iri(iri)), TermMap::Template(t)) => {
            let alias = if matches!(a.map, TermMap::Template(_)) {
                a.alias
            } else {
                b.alias
            };
            match t.invert(iri.as_str()) {
                Some(v) => JoinOutcome::Cond(Cond::ColConst {
                    col: (alias, t.column().to_string()),
                    value: v,
                }),
                None => JoinOutcome::Incompatible,
            }
        }
        (TermMap::Column { column, .. }, TermMap::Constant(Term::Literal(lit))) => {
            JoinOutcome::Cond(Cond::ColConst {
                col: (a.alias, column.clone()),
                value: literal_to_value(lit),
            })
        }
        (TermMap::Constant(Term::Literal(lit)), TermMap::Column { column, .. }) => {
            JoinOutcome::Cond(Cond::ColConst {
                col: (b.alias, column.clone()),
                value: literal_to_value(lit),
            })
        }
        // IRI-producing vs literal-producing positions can never be equal.
        _ => JoinOutcome::Incompatible,
    }
}

/// Merges pairs of aliases reading the same source when the join conditions
/// equate a declared unique key of that source column-by-column.
fn eliminate_self_joins(
    picks: &[&MappingAssertion],
    alias_source: &mut [Option<&str>],
    alias_rewrite: &mut [usize],
    conds: &mut [Cond],
    stats: &mut UnfoldStats,
) {
    for i in 0..picks.len() {
        for j in (i + 1)..picks.len() {
            if alias_source[j].is_none() || alias_source[i].is_none() {
                continue;
            }
            if picks[i].source_sql != picks[j].source_sql {
                continue;
            }
            let Some(key) = &picks[i].source_key else {
                continue;
            };
            if picks[j].source_key.as_deref() != Some(key.as_slice()) {
                continue;
            }
            // All key columns must be equated between aliases i and j.
            let all_keyed = key.iter().all(|k| {
                conds.iter().any(|c| match c {
                    Cond::ColEq { left, right } => {
                        (left == &(i, k.clone()) && right == &(j, k.clone()))
                            || (left == &(j, k.clone()) && right == &(i, k.clone()))
                    }
                    Cond::ColConst { .. } => false,
                })
            });
            if all_keyed {
                alias_rewrite[j] = i;
                alias_source[j] = None;
                stats.self_joins_eliminated += 1;
            }
        }
    }
}

fn alias_name(i: usize) -> String {
    format!("u{i}")
}

fn col_expr(col: &(usize, String)) -> Expr {
    Expr::col(format!("{}.{}", alias_name(col.0), col.1))
}

fn term_expr(map: &TermMap, alias: usize) -> Expr {
    match map {
        TermMap::Template(t) => Expr::Function {
            name: "iri_template".into(),
            args: vec![
                Expr::Literal(Value::text(t.sql_pattern())),
                col_expr(&(alias, t.column().to_string())),
            ],
        },
        TermMap::Column { column, .. } => col_expr(&(alias, column.clone())),
        TermMap::Constant(term) => match term {
            Term::Iri(iri) => Expr::Literal(Value::text(iri.as_str())),
            Term::Literal(lit) => Expr::Literal(literal_to_value(lit)),
            Term::BNode(id) => Expr::Literal(Value::text(format!("_:b{id}"))),
        },
    }
}

fn chain_union(statements: Vec<SelectStatement>) -> Option<SelectStatement> {
    let mut iter = statements.into_iter();
    let mut head = iter.next()?;
    for stmt in iter {
        // Statements may already be UNION ALL chains themselves; append at
        // the tail so no disjunct is dropped.
        let mut tail = &mut head;
        while tail.union_all.is_some() {
            tail = tail.union_all.as_mut().expect("just checked");
        }
        tail.union_all = Some(Box::new(stmt));
    }
    Some(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_rdf::{Datatype, Iri};
    use optique_relational::{table::table_of, ColumnType, Database};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int), ("model", ColumnType::Text)],
                vec![
                    vec![Value::Int(1), Value::text("SGT-400")],
                    vec![Value::Int(2), Value::text("SGT-800")],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                vec![
                    vec![Value::Int(10), Value::Int(1)],
                    vec![Value::Int(11), Value::Int(1)],
                    vec![Value::Int(12), Value::Int(2)],
                ],
            )
            .unwrap(),
        );
        db
    }

    fn catalog() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(
            MappingAssertion::class(
                "turbine",
                iri("Turbine"),
                "SELECT tid FROM turbines",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::class(
                "sensor",
                iri("Sensor"),
                "SELECT sid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "attached",
                iri("attachedTo"),
                "SELECT sid, tid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["sid".into(), "tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "model",
                iri("hasModel"),
                "SELECT tid, model FROM turbines",
                TermMap::template("http://x/turbine/{tid}"),
                TermMap::column("model", Datatype::String),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c
    }

    fn var(v: &str) -> QueryTerm {
        QueryTerm::var(v)
    }

    fn run_unfolded(
        cq: &ConjunctiveQuery,
        settings: &UnfoldSettings,
    ) -> (Option<optique_relational::Table>, UnfoldStats) {
        let (stmt, stats) = unfold_cq(cq, &catalog(), settings).unwrap();
        let table = stmt.map(|s| {
            optique_relational::exec::query(&s.to_string(), &db()).expect("unfolded SQL runs")
        });
        (table, stats)
    }

    #[test]
    fn single_class_atom() {
        let cq = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Turbine"), var("x"))],
        );
        let (table, stats) = run_unfolded(&cq, &UnfoldSettings::default());
        let table = table.unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(stats.emitted, 1);
        let vals: Vec<&str> = table.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert!(vals.contains(&"http://x/turbine/1"));
    }

    #[test]
    fn join_across_atoms() {
        // q(s, t) ← Sensor(s) ∧ attachedTo(s, t)
        let cq = ConjunctiveQuery::new(
            vec!["s".into(), "t".into()],
            vec![
                Atom::class(iri("Sensor"), var("s")),
                Atom::property(iri("attachedTo"), var("s"), var("t")),
            ],
        );
        let (table, _) = run_unfolded(&cq, &UnfoldSettings::default());
        assert_eq!(table.unwrap().len(), 3);
    }

    #[test]
    fn constant_iri_inverts_to_column_filter() {
        let cq = ConjunctiveQuery::new(
            vec!["s".into()],
            vec![Atom::property(
                iri("attachedTo"),
                var("s"),
                QueryTerm::Const(Term::iri("http://x/turbine/1")),
            )],
        );
        let (table, _) = run_unfolded(&cq, &UnfoldSettings::default());
        assert_eq!(
            table.unwrap().len(),
            2,
            "sensors 10 and 11 attach to turbine 1"
        );
    }

    #[test]
    fn incompatible_constant_prunes() {
        let cq = ConjunctiveQuery::new(
            vec!["s".into()],
            vec![Atom::property(
                iri("attachedTo"),
                var("s"),
                QueryTerm::Const(Term::iri("http://other/thing/1")),
            )],
        );
        let (table, stats) = run_unfolded(&cq, &UnfoldSettings::default());
        assert!(table.is_none());
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn literal_object_variable() {
        let cq = ConjunctiveQuery::new(
            vec!["t".into(), "m".into()],
            vec![Atom::property(iri("hasModel"), var("t"), var("m"))],
        );
        let (table, _) = run_unfolded(&cq, &UnfoldSettings::default());
        let table = table.unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.rows.iter().any(|r| r[1].as_str() == Some("SGT-400")));
    }

    #[test]
    fn unmapped_term_yields_empty() {
        let cq = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("UnmappedThing"), var("x"))],
        );
        let (stmt, _) = unfold_cq(&cq, &catalog(), &UnfoldSettings::default()).unwrap();
        assert!(stmt.is_none());
    }

    #[test]
    fn self_join_eliminated_with_key() {
        // q(s, t) ← attachedTo(s, t) ∧ attachedTo(s, t) — artificially
        // duplicated atom; with keys declared the second alias collapses.
        let cq = ConjunctiveQuery::new(
            vec!["s".into(), "t".into()],
            vec![
                Atom::property(iri("attachedTo"), var("s"), var("t")),
                Atom::property(iri("attachedTo"), var("s"), var("t")),
            ],
        );
        let with = run_unfolded(&cq, &UnfoldSettings::default());
        let without = run_unfolded(
            &cq,
            &UnfoldSettings {
                eliminate_self_joins: false,
                ..Default::default()
            },
        );
        assert_eq!(with.1.self_joins_eliminated, 1);
        assert_eq!(without.1.self_joins_eliminated, 0);
        // Same answers either way.
        assert_eq!(with.0.unwrap().rows.len(), without.0.unwrap().rows.len());
    }

    /// Regression: one atom with several mappings must produce one UNION
    /// branch per mapping — an earlier chaining bug silently dropped all
    /// but the first combination.
    #[test]
    fn multiple_mappings_all_union_branches_survive() {
        let mut db = db();
        db.put_table(
            "legacy_turbines",
            table_of(
                "legacy_turbines",
                &[("tid", ColumnType::Int)],
                vec![vec![Value::Int(77)]],
            )
            .unwrap(),
        );
        let mut cat = catalog();
        cat.add(
            MappingAssertion::class(
                "turbine-legacy",
                iri("Turbine"),
                "SELECT tid FROM legacy_turbines",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        let cq = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Turbine"), var("x"))],
        );
        let (stmt, stats) = unfold_cq(&cq, &cat, &UnfoldSettings::default()).unwrap();
        assert_eq!(stats.emitted, 2);
        let stmt = stmt.unwrap();
        // Both branches present in the chain…
        let mut branches = 1;
        let mut cur = &stmt;
        while let Some(next) = &cur.union_all {
            branches += 1;
            cur = next;
        }
        assert_eq!(branches, 2);
        // …and both sources answer.
        let table = optique_relational::exec::query(&stmt.to_string(), &db).unwrap();
        assert_eq!(table.len(), 3, "2 modern + 1 legacy turbine");
    }

    #[test]
    fn ucq_unions_disjuncts() {
        let ucq = UnionQuery {
            disjuncts: vec![
                ConjunctiveQuery::new(
                    vec!["x".into()],
                    vec![Atom::class(iri("Turbine"), var("x"))],
                ),
                ConjunctiveQuery::new(vec!["x".into()], vec![Atom::class(iri("Sensor"), var("x"))]),
            ],
        };
        let (stmt, stats) = unfold_ucq(&ucq, &catalog(), &UnfoldSettings::default()).unwrap();
        let table = optique_relational::exec::query(&stmt.unwrap().to_string(), &db()).unwrap();
        assert_eq!(table.len(), 5, "2 turbines + 3 sensors");
        assert_eq!(stats.emitted, 2);
    }

    /// The oracle test: unfolded SQL ≡ CQ over the materialized virtual graph.
    #[test]
    fn unfolding_agrees_with_materialization() {
        let cq = ConjunctiveQuery::new(
            vec!["s".into(), "t".into(), "m".into()],
            vec![
                Atom::property(iri("attachedTo"), var("s"), var("t")),
                Atom::property(iri("hasModel"), var("t"), var("m")),
            ],
        );
        let (stmt, _) = unfold_cq(&cq, &catalog(), &UnfoldSettings::default()).unwrap();
        let table = optique_relational::exec::query(&stmt.unwrap().to_string(), &db()).unwrap();

        let graph = crate::virtualize::materialize_catalog(&catalog(), &db()).unwrap();
        let oracle = cq.evaluate(&graph);

        assert_eq!(table.len(), oracle.len());
        for row in &table.rows {
            let tuple: Vec<Term> = row
                .iter()
                .map(|v| match v {
                    Value::Text(s) if s.starts_with("http") => Term::iri(s.as_ref()),
                    other => Term::Literal(optique_rdf::Literal::string(other.to_string())),
                })
                .collect();
            // Compare IRIs positionally; literals compare via lexical form.
            let hit = oracle.iter().any(|o| {
                o.iter().zip(&tuple).all(|(a, b)| match (a, b) {
                    (Term::Iri(x), Term::Iri(y)) => x == y,
                    (Term::Literal(x), Term::Literal(y)) => {
                        x.lexical().trim_matches('\'') == y.lexical().trim_matches('\'')
                    }
                    _ => false,
                })
            });
            assert!(hit, "row {row:?} missing from oracle");
        }
    }
}
