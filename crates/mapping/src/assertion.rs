//! Mapping assertions: one ontological term ← one SQL source.

use optique_rdf::{Datatype, Iri, Term};

use crate::template::IriTemplate;

/// How one RDF position (subject or object) is produced from the SQL
/// source's output row.
#[derive(Clone, PartialEq, Debug)]
pub enum TermMap {
    /// An IRI built by a template over one column.
    Template(IriTemplate),
    /// A typed literal read from a column.
    Column {
        /// Source column name.
        column: String,
        /// Literal datatype.
        datatype: Datatype,
    },
    /// A fixed RDF term.
    Constant(Term),
}

impl TermMap {
    /// Template shorthand (panics on malformed templates — mapping
    /// definitions are code, not input).
    pub fn template(t: &str) -> Self {
        TermMap::Template(IriTemplate::parse(t).expect("valid template"))
    }

    /// Column-literal shorthand.
    pub fn column(name: impl Into<String>, datatype: Datatype) -> Self {
        TermMap::Column {
            column: name.into(),
            datatype,
        }
    }
}

/// The ontological term a mapping populates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MappingHead {
    /// A class: the assertion produces `subject rdf:type C` triples.
    Class(Iri),
    /// A property: `subject P object` triples.
    Property(Iri),
}

impl MappingHead {
    /// The term's IRI.
    pub fn iri(&self) -> &Iri {
        match self {
            MappingHead::Class(iri) | MappingHead::Property(iri) => iri,
        }
    }
}

/// One mapping assertion `head(subject[, object]) ← source_sql`.
#[derive(Clone, Debug)]
pub struct MappingAssertion {
    /// Stable identifier (for reports and provenance).
    pub id: String,
    /// The populated ontological term.
    pub head: MappingHead,
    /// The logical source: a SQL query over the underlying database.
    pub source_sql: String,
    /// Subject term map.
    pub subject: TermMap,
    /// Object term map (`None` for class heads).
    pub object: Option<TermMap>,
    /// Columns forming a unique key of `source_sql`'s output, when known.
    /// Unlocks sound self-join elimination during unfolding.
    pub source_key: Option<Vec<String>>,
}

impl MappingAssertion {
    /// A class mapping.
    pub fn class(
        id: impl Into<String>,
        class: Iri,
        source_sql: impl Into<String>,
        subject: TermMap,
    ) -> Self {
        MappingAssertion {
            id: id.into(),
            head: MappingHead::Class(class),
            source_sql: source_sql.into(),
            subject,
            object: None,
            source_key: None,
        }
    }

    /// A property mapping.
    pub fn property(
        id: impl Into<String>,
        property: Iri,
        source_sql: impl Into<String>,
        subject: TermMap,
        object: TermMap,
    ) -> Self {
        MappingAssertion {
            id: id.into(),
            head: MappingHead::Property(property),
            source_sql: source_sql.into(),
            subject,
            object: Some(object),
            source_key: None,
        }
    }

    /// Declares the unique key of the source output (builder style).
    pub fn with_key(mut self, columns: Vec<String>) -> Self {
        self.source_key = Some(columns);
        self
    }

    /// Validates that the source SQL parses and that term-map columns exist
    /// among its projected names. `None`-aliased expression projections are
    /// skipped (they can't be referenced by term maps anyway).
    pub fn validate(&self) -> Result<(), String> {
        let stmt = optique_relational::parse_select(&self.source_sql)
            .map_err(|e| format!("mapping {}: source SQL invalid: {e}", self.id))?;
        let mut names: Vec<String> = Vec::new();
        for p in &stmt.projections {
            match p {
                optique_relational::parser::Projection::Star => return Ok(()), // can't check
                optique_relational::parser::Projection::Expr { expr, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| expr.default_name()));
                }
            }
        }
        let check = |tm: &TermMap| -> Result<(), String> {
            let col = match tm {
                TermMap::Template(t) => t.column(),
                TermMap::Column { column, .. } => column.as_str(),
                TermMap::Constant(_) => return Ok(()),
            };
            if names.iter().any(|n| n == col) {
                Ok(())
            } else {
                Err(format!(
                    "mapping {}: column {col} not among source projections {names:?}",
                    self.id
                ))
            }
        };
        check(&self.subject)?;
        if let Some(obj) = &self.object {
            check(obj)?;
        }
        if matches!(self.head, MappingHead::Class(_)) && self.object.is_some() {
            return Err(format!(
                "mapping {}: class mapping must not have an object",
                self.id
            ));
        }
        if matches!(self.head, MappingHead::Property(_)) && self.object.is_none() {
            return Err(format!(
                "mapping {}: property mapping needs an object",
                self.id
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for MappingAssertion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.head, &self.object) {
            (MappingHead::Class(c), _) => {
                write!(f, "{c}(subject) ← {}", self.source_sql)
            }
            (MappingHead::Property(p), Some(_)) => {
                write!(f, "{p}(subject, object) ← {}", self.source_sql)
            }
            (MappingHead::Property(p), None) => write!(f, "{p}(?, ?) ← {}", self.source_sql),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    #[test]
    fn class_mapping_validates() {
        let m = MappingAssertion::class(
            "m1",
            iri("Turbine"),
            "SELECT tid FROM turbines",
            TermMap::template("http://x/turbine/{tid}"),
        );
        m.validate().unwrap();
    }

    #[test]
    fn missing_column_caught() {
        let m = MappingAssertion::class(
            "m1",
            iri("Turbine"),
            "SELECT model FROM turbines",
            TermMap::template("http://x/turbine/{tid}"),
        );
        assert!(m.validate().is_err());
    }

    #[test]
    fn bad_sql_caught() {
        let m = MappingAssertion::class(
            "m1",
            iri("Turbine"),
            "SELECT FROM WHERE",
            TermMap::template("http://x/turbine/{tid}"),
        );
        assert!(m.validate().is_err());
    }

    #[test]
    fn property_needs_object() {
        let mut m = MappingAssertion::property(
            "m2",
            iri("hasValue"),
            "SELECT sid, val FROM msmt",
            TermMap::template("http://x/sensor/{sid}"),
            TermMap::column("val", Datatype::Double),
        );
        m.validate().unwrap();
        m.object = None;
        assert!(m.validate().is_err());
    }

    #[test]
    fn alias_projection_names_respected() {
        let m = MappingAssertion::property(
            "m3",
            iri("locatedIn"),
            "SELECT t.id AS tid, c.name AS cname FROM turbines t JOIN countries c ON t.cid = c.id",
            TermMap::template("http://x/turbine/{tid}"),
            TermMap::column("cname", Datatype::String),
        );
        m.validate().unwrap();
    }
}
