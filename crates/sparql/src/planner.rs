//! Statistics-driven planning for the residual algebra.
//!
//! Post-unfolding, a query is a tree of solution-set joins around the BGPs
//! (`OPTIONAL` / `UNION` branches, nested groups). The paper line this repo
//! reproduces (Hovland et al.'s *OBDA Constraints for Effective Query
//! Answering*, the Analytics-Aware OBDA extension) shows that exploiting
//! backend statistics is what keeps unfolded queries tractable. This module
//! supplies the two planning levers [`crate::compile`] pulls:
//!
//! * **join ordering** — [`greedy_order`] picks a
//!   smallest-estimated-cardinality-first order over the inner-joinable
//!   operands of a group, preferring operands connected (by shared
//!   variables) to what is already joined, so cross products come last;
//!   estimates come from a [`CardinalityModel`] over the mapping catalog,
//!   the ontology taxonomy and a [`StatsCatalog`] snapshot;
//! * **semi-join pushdown** — a [`Restriction`] captures the bound-variable
//!   value lists of an already-materialized solution set; sibling BGPs
//!   execute with those lists attached as `IN`-list predicates
//!   ([`optique_relational::SemiJoin`]), so fragments return only
//!   join-compatible rows.
//!
//! Everything here is advisory: a bad estimate can only produce a slower
//! plan, never a different answer — the differential plan-equivalence suite
//! (`tests/planner_equivalence.rs`) pins optimized answers to naive ones.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::{BasicConcept, Ontology, Role};
use optique_rdf::Term;
use optique_relational::parser::TableRef;
use optique_relational::StatsCatalog;
use optique_rewrite::{Atom, QueryTerm};

use crate::algebra::{GroupPattern, PatternElement};
use crate::eval::SolutionSet;

/// Planner knobs. The default enables everything; [`Self::disabled`] is the
/// naive baseline the differential oracle compares against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannerSettings {
    /// Reorder inner-joinable group operands smallest-estimate-first
    /// (connected-subgraph preference). Off = textual order, exactly the
    /// pre-planner pipeline.
    pub reorder_joins: bool,
    /// Push bound-variable value lists of materialized solution sets into
    /// sibling BGP executions as `IN`-list predicates.
    pub semi_join_pushdown: bool,
    /// Per-variable cap on pushed values; larger bound sets are not pushed
    /// (an `IN` list past this size costs more than it prunes).
    pub max_in_list: usize,
}

impl Default for PlannerSettings {
    fn default() -> Self {
        PlannerSettings {
            reorder_joins: true,
            semi_join_pushdown: true,
            max_in_list: 256,
        }
    }
}

impl PlannerSettings {
    /// The naive baseline: textual join order, no pushdown.
    pub fn disabled() -> Self {
        PlannerSettings {
            reorder_joins: false,
            semi_join_pushdown: false,
            max_in_list: 0,
        }
    }
}

// ---- restrictions ------------------------------------------------------

/// Bound-variable value lists learned from a materialized solution set:
/// for each entry `(var, values)`, any solution joining with that set must
/// bind `var` to one of `values` (or leave it unbound). Values are sorted
/// and deduplicated, so equal restrictions have equal fingerprints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Restriction {
    entries: Vec<(String, Vec<Term>)>,
}

impl Restriction {
    /// The unrestricted context.
    pub fn empty() -> Self {
        Restriction::default()
    }

    /// True when nothing is restricted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The restricted variables and their value lists.
    pub fn entries(&self) -> &[(String, Vec<Term>)] {
        &self.entries
    }

    /// Derives a restriction from `solutions`: one entry per variable that
    /// is bound in **every** row (a row with the variable unbound joins
    /// with anything, so such a variable must not be restricted) with at
    /// most `max_values` distinct values.
    pub fn from_solutions(solutions: &SolutionSet, max_values: usize) -> Restriction {
        let mut entries = Vec::new();
        if max_values == 0 || solutions.rows.is_empty() {
            return Restriction { entries };
        }
        for (idx, var) in solutions.vars.iter().enumerate() {
            let mut values: BTreeSet<&Term> = BTreeSet::new();
            let mut fully_bound = true;
            for row in &solutions.rows {
                match &row[idx] {
                    Some(term) => {
                        values.insert(term);
                        if values.len() > max_values {
                            break;
                        }
                    }
                    None => {
                        fully_bound = false;
                        break;
                    }
                }
            }
            if fully_bound && values.len() <= max_values {
                entries.push((var.clone(), values.into_iter().cloned().collect()));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Restriction { entries }
    }

    /// Combines an outer-context restriction with this one. Variables
    /// restricted by both intersect (a joining value must satisfy both
    /// contexts); others union.
    pub fn merged(&self, inner: Restriction) -> Restriction {
        let mut entries = inner.entries;
        for (var, outer_values) in &self.entries {
            match entries.iter_mut().find(|(v, _)| v == var) {
                Some((_, values)) => {
                    values.retain(|t| outer_values.binary_search(t).is_ok());
                }
                None => entries.push((var.clone(), outer_values.clone())),
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Restriction { entries }
    }

    /// Keeps only the entries for `vars` (the variables a BGP can actually
    /// use).
    pub fn restrict_to(&self, vars: &[String]) -> Restriction {
        Restriction {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| vars.iter().any(|w| w == v))
                .cloned()
                .collect(),
        }
    }

    /// A deterministic fingerprint (entries are kept sorted), used to key
    /// restricted executions in the BGP cache.
    pub fn fingerprint(&self) -> String {
        format!("{:?}", self.entries)
    }
}

// ---- cardinality estimation --------------------------------------------

/// Fallback row estimate for sources with no statistics.
const DEFAULT_ROWS: f64 = 1_000.0;
/// Estimated selectivity of one WHERE conjunct in a mapping's source SQL.
const WHERE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Fallback equality selectivity for constants with no column statistics.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Damping divisor per repeated variable occurrence inside one BGP (a
/// coarse stand-in for `1 / distinct(join key)` when the key's provenance
/// is unknown).
const JOIN_DAMPING: f64 = 10.0;

/// Estimates BGP / group cardinalities from the mapping catalog, the
/// ontology taxonomy (a class atom reaches every mapped subclass after
/// PerfectRef) and a [`StatsCatalog`] snapshot of the sources.
///
/// Construct one per query and reuse it: atom estimates (taxonomy-closure
/// walks) and source-SQL parses are memoized per model, so repeated
/// estimation of the same BGP — ordering in one batch, counter accounting
/// in another — costs one parse per distinct mapping source.
pub struct CardinalityModel<'a> {
    ontology: &'a Ontology,
    mappings: &'a MappingCatalog,
    stats: Option<&'a StatsCatalog>,
    /// `source_sql → (base table, discounted rows)` memo.
    sources: RefCell<HashMap<String, (Option<String>, f64)>>,
    /// Per-atom estimate memo (taxonomy closures are the expensive part).
    atoms: RefCell<HashMap<Atom, f64>>,
}

impl<'a> CardinalityModel<'a> {
    /// A model over the deployment's assets; `stats` of `None` falls back
    /// to [`DEFAULT_ROWS`] everywhere (ordering degenerates to mapping
    /// fan-out counts).
    pub fn new(
        ontology: &'a Ontology,
        mappings: &'a MappingCatalog,
        stats: Option<&'a StatsCatalog>,
    ) -> Self {
        CardinalityModel {
            ontology,
            mappings,
            stats,
            sources: RefCell::new(HashMap::new()),
            atoms: RefCell::new(HashMap::new()),
        }
    }

    /// Estimated result rows of a BGP: atom estimates multiplied under
    /// independence, damped once per repeated variable occurrence.
    pub fn estimate_bgp(&self, atoms: &[Atom]) -> f64 {
        if atoms.is_empty() {
            return 1.0;
        }
        let mut estimate = 1.0;
        let mut seen_vars: Vec<&str> = Vec::new();
        for atom in atoms {
            estimate *= self.estimate_atom(atom);
            for term in atom.terms() {
                if let QueryTerm::Var(v) = term {
                    if seen_vars.iter().any(|w| *w == v) {
                        estimate /= JOIN_DAMPING;
                    } else {
                        seen_vars.push(v);
                    }
                }
            }
        }
        estimate.max(0.0)
    }

    /// Estimated rows of one atom: the summed source cardinalities of every
    /// mapping the (taxonomy-enriched) atom can unfold through, scaled by
    /// equality selectivity for each constant position. Memoized per atom.
    pub fn estimate_atom(&self, atom: &Atom) -> f64 {
        if let Some(&cached) = self.atoms.borrow().get(atom) {
            return cached;
        }
        let estimate = self.estimate_atom_uncached(atom);
        self.atoms.borrow_mut().insert(atom.clone(), estimate);
        estimate
    }

    fn estimate_atom_uncached(&self, atom: &Atom) -> f64 {
        match atom {
            Atom::Class { class, arg } => {
                let mut rows = 0.0;
                // PerfectRef reaches every sub-concept: atomic subclasses
                // contribute their class mappings, ∃R sub-concepts the
                // mappings of R.
                for concept in self
                    .ontology
                    .sub_concepts_closure(&BasicConcept::atomic(class.clone()))
                {
                    if let Some(iri) = concept.as_atomic() {
                        for assertion in self.mappings.for_class(iri) {
                            rows += self.assertion_rows(assertion, &[arg]);
                        }
                    } else if let Some(role) = concept.as_exists() {
                        for assertion in self.mappings.for_property(role.property()) {
                            rows += self.assertion_rows(assertion, &[arg]);
                        }
                    }
                }
                rows
            }
            Atom::Property {
                property,
                subject,
                object,
            } => {
                let properties: BTreeSet<optique_rdf::Iri> = self
                    .ontology
                    .sub_roles_closure(&Role::named(property.clone()))
                    .into_iter()
                    .map(|role| role.property().clone())
                    .collect();
                let mut rows = 0.0;
                for iri in &properties {
                    for assertion in self.mappings.for_property(iri) {
                        rows += self.assertion_rows(assertion, &[subject, object]);
                    }
                }
                rows
            }
        }
    }

    /// Rows one assertion's source contributes, after constant-position
    /// selectivities.
    fn assertion_rows(&self, assertion: &MappingAssertion, terms: &[&QueryTerm]) -> f64 {
        let (base_table, mut rows) = self.source_rows(&assertion.source_sql);
        let maps = [Some(&assertion.subject), assertion.object.as_ref()];
        for (term, map) in terms.iter().zip(maps) {
            if matches!(term, QueryTerm::Const(_)) {
                rows *= self.eq_selectivity(base_table.as_deref(), map);
            }
        }
        rows
    }

    /// `(base table, estimated rows)` of a mapping's source SQL: the FROM
    /// table's statistics row count, discounted per WHERE conjunct.
    /// Memoized per source text (mapping SQL is immutable for a model's
    /// lifetime).
    fn source_rows(&self, source_sql: &str) -> (Option<String>, f64) {
        if let Some(cached) = self.sources.borrow().get(source_sql) {
            return cached.clone();
        }
        let computed = self.source_rows_uncached(source_sql);
        self.sources
            .borrow_mut()
            .insert(source_sql.to_string(), computed.clone());
        computed
    }

    fn source_rows_uncached(&self, source_sql: &str) -> (Option<String>, f64) {
        let Ok(statement) = optique_relational::parse_select(source_sql) else {
            return (None, DEFAULT_ROWS);
        };
        let (table, mut rows) = match &statement.from {
            TableRef::Named { name, .. } => (
                Some(name.clone()),
                self.stats
                    .and_then(|s| s.row_count(name))
                    .map_or(DEFAULT_ROWS, |n| n as f64),
            ),
            _ => (None, DEFAULT_ROWS),
        };
        if let Some(where_clause) = &statement.where_clause {
            let conjuncts = optique_relational::plan::split_conjuncts(where_clause).len();
            rows *= WHERE_SELECTIVITY.powi(conjuncts as i32);
        }
        (table, rows.max(0.0))
    }

    /// Equality selectivity of a constant bound through `map`, using the
    /// distinct count of the term map's column on the source's base table.
    fn eq_selectivity(&self, base_table: Option<&str>, map: Option<&TermMap>) -> f64 {
        let column = match map {
            Some(TermMap::Template(t)) => Some(t.column().to_string()),
            Some(TermMap::Column { column, .. }) => Some(column.clone()),
            _ => None,
        };
        match (self.stats, base_table, column) {
            (Some(stats), Some(table), Some(column)) => stats
                .table(table)
                .map(|t| t.eq_selectivity(&column))
                .unwrap_or(DEFAULT_EQ_SELECTIVITY),
            _ => DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Estimated rows of a whole group pattern (used to order `UNION` /
    /// nested-group operands): joinable elements multiply, `UNION` branches
    /// sum, `FILTER` halves, `OPTIONAL` preserves (a left join keeps every
    /// left row).
    pub fn estimate_group(&self, group: &GroupPattern) -> f64 {
        let mut estimate = 1.0;
        for element in &group.elements {
            match element {
                PatternElement::Triples(atoms) => estimate *= self.estimate_bgp(atoms),
                PatternElement::SubGroup(inner) => estimate *= self.estimate_group(inner),
                PatternElement::Union(branches) => {
                    estimate *= branches.iter().map(|b| self.estimate_group(b)).sum::<f64>();
                }
                PatternElement::Optional(_) => {}
                PatternElement::Filter(_) => estimate *= 0.5,
                // Inline bindings are exact: their cardinality is known.
                PatternElement::Values(block) => estimate *= block.rows.len() as f64,
            }
        }
        estimate
    }

    /// Estimate for one inner-joinable group operand.
    pub fn estimate_element(&self, element: &PatternElement) -> f64 {
        match element {
            PatternElement::Triples(atoms) => self.estimate_bgp(atoms),
            PatternElement::SubGroup(inner) => self.estimate_group(inner),
            PatternElement::Union(branches) => {
                branches.iter().map(|b| self.estimate_group(b)).sum::<f64>()
            }
            PatternElement::Values(block) => block.rows.len() as f64,
            // OPTIONAL / FILTER are never batch operands.
            _ => DEFAULT_ROWS,
        }
    }
}

// ---- join ordering -----------------------------------------------------

/// One inner-joinable operand of a group, as seen by the ordering pass.
#[derive(Clone, Debug)]
pub struct JoinOperand {
    /// Variables the operand can bind.
    pub vars: Vec<String>,
    /// Estimated result cardinality.
    pub estimate: f64,
}

/// Greedy smallest-first ordering with connected-subgraph preference:
/// start from the seed variables (what is already joined), repeatedly pick
/// the cheapest operand sharing a variable with the connected set, falling
/// back to the cheapest overall when nothing connects (the unavoidable
/// cross product runs over the smallest inputs). Returns operand indexes
/// in execution order.
pub fn greedy_order(seed_vars: &[String], operands: &[JoinOperand]) -> Vec<usize> {
    let mut connected: Vec<&str> = seed_vars.iter().map(String::as_str).collect();
    let mut remaining: Vec<usize> = (0..operands.len()).collect();
    let mut order = Vec::with_capacity(operands.len());
    while !remaining.is_empty() {
        let connects = |i: usize| {
            operands[i]
                .vars
                .iter()
                .any(|v| connected.iter().any(|w| w == v))
        };
        let candidates: Vec<usize> = if connected.is_empty() {
            remaining.clone()
        } else {
            let linked: Vec<usize> = remaining.iter().copied().filter(|&i| connects(i)).collect();
            if linked.is_empty() {
                remaining.clone()
            } else {
                linked
            }
        };
        // Cheapest candidate; ties break on the textual position for
        // deterministic plans.
        let chosen = candidates
            .into_iter()
            .min_by(|&a, &b| {
                operands[a]
                    .estimate
                    .total_cmp(&operands[b].estimate)
                    .then(a.cmp(&b))
            })
            .expect("candidates is non-empty");
        remaining.retain(|&i| i != chosen);
        for v in &operands[chosen].vars {
            if !connected.iter().any(|w| w == v) {
                connected.push(v);
            }
        }
        order.push(chosen);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_rdf::Literal;

    fn sol(vars: &[&str], rows: Vec<Vec<Option<Term>>>) -> SolutionSet {
        SolutionSet {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    fn iri(s: &str) -> Option<Term> {
        Some(Term::iri(format!("http://x/{s}")))
    }

    #[test]
    fn restriction_skips_unbound_and_caps() {
        let s = sol(
            &["x", "y", "z"],
            vec![
                vec![iri("a"), iri("p"), None],
                vec![iri("b"), iri("p"), iri("q")],
                vec![iri("a"), iri("p"), iri("q")],
            ],
        );
        let r = Restriction::from_solutions(&s, 16);
        // z has an unbound row → excluded; x has 2 distinct, y has 1.
        assert_eq!(r.entries().len(), 2);
        assert_eq!(r.entries()[0].0, "x");
        assert_eq!(r.entries()[0].1.len(), 2);
        assert_eq!(r.entries()[1].0, "y");
        // A cap of 1 drops x (2 distinct values).
        let capped = Restriction::from_solutions(&s, 1);
        assert_eq!(capped.entries().len(), 1);
        assert_eq!(capped.entries()[0].0, "y");
        // A cap of 0 disables restriction entirely.
        assert!(Restriction::from_solutions(&s, 0).is_empty());
    }

    #[test]
    fn restriction_merge_intersects_overlap() {
        let outer =
            Restriction::from_solutions(&sol(&["x"], vec![vec![iri("a")], vec![iri("b")]]), 16);
        let inner = Restriction::from_solutions(
            &sol(
                &["x", "y"],
                vec![vec![iri("b"), iri("p")], vec![iri("c"), iri("p")]],
            ),
            16,
        );
        let merged = outer.merged(inner);
        let x = merged
            .entries()
            .iter()
            .find(|(v, _)| v == "x")
            .map(|(_, vals)| vals.clone())
            .unwrap();
        assert_eq!(x, vec![Term::iri("http://x/b")]);
        assert!(merged.entries().iter().any(|(v, _)| v == "y"));
    }

    #[test]
    fn restriction_fingerprint_is_order_stable() {
        let a = Restriction::from_solutions(&sol(&["x", "y"], vec![vec![iri("a"), iri("b")]]), 16);
        let b = Restriction::from_solutions(&sol(&["y", "x"], vec![vec![iri("b"), iri("a")]]), 16);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn greedy_prefers_small_then_connected() {
        // Operands: big scan {x}, small scan {y}, bridge {x, y}.
        let operands = vec![
            JoinOperand {
                vars: vec!["x".into()],
                estimate: 1_000.0,
            },
            JoinOperand {
                vars: vec!["y".into()],
                estimate: 3.0,
            },
            JoinOperand {
                vars: vec!["x".into(), "y".into()],
                estimate: 500.0,
            },
        ];
        // Smallest first (y), then the connected bridge, then the big scan:
        // the cross product y × x never materializes.
        assert_eq!(greedy_order(&[], &operands), vec![1, 2, 0]);
        // With x seeded by the context, only the x-operands connect; the
        // cheaper bridge goes first and unlocks the small y scan.
        assert_eq!(greedy_order(&["x".to_string()], &operands), vec![2, 1, 0]);
    }

    #[test]
    fn greedy_is_identity_when_already_sorted() {
        let operands = vec![
            JoinOperand {
                vars: vec!["x".into()],
                estimate: 1.0,
            },
            JoinOperand {
                vars: vec!["x".into()],
                estimate: 2.0,
            },
        ];
        assert_eq!(greedy_order(&[], &operands), vec![0, 1]);
    }

    #[test]
    fn literal_terms_restrict_too() {
        let s = sol(
            &["m"],
            vec![vec![Some(Term::Literal(Literal::string("SGT-400")))]],
        );
        let r = Restriction::from_solutions(&s, 4);
        assert_eq!(r.entries().len(), 1);
    }
}
