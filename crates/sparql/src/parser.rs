//! Recursive-descent parser for the SPARQL 1.1 subset.
//!
//! Supported surface (see the crate docs for the full grammar sketch):
//! `PREFIX` / `BASE` prologue, `SELECT [DISTINCT]` with plain variables, `*`
//! or `(AGG(…) AS ?alias)` items, `ASK`, group graph patterns with triples
//! blocks (`;` and `,` abbreviations, `a`), `OPTIONAL`, `UNION`, `FILTER`
//! (comparisons, boolean connectives, arithmetic, `REGEX`-lite, `BOUND`),
//! `GROUP BY`, `ORDER BY [ASC|DESC]`, `LIMIT`, `OFFSET`. Errors carry
//! line/column positions.

use optique_rdf::{Datatype, Iri, Literal, Namespaces, Term};
use optique_rewrite::{Atom, QueryTerm};

use crate::algebra::{
    AggregateFunction, ArithmeticOperator, AskQuery, ComparisonOperator, Expression, GroupPattern,
    PatternElement, Projection, Query, SelectItem, SelectQuery, SolutionModifier, ValuesBlock,
};
use crate::error::{Position, SparqlError};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a full SPARQL query. `namespaces` provides ambient prefixes
/// (e.g. a deployment's); `PREFIX` declarations in the query extend and
/// shadow them.
pub fn parse_sparql(text: &str, namespaces: &Namespaces) -> Result<Query, SparqlError> {
    let tokens = lex(text)?;
    let mut parser = Parser::new(tokens, namespaces.clone());
    let query = parser.parse_query()?;
    parser.expect_end()?;
    Ok(query)
}

/// Parses a stand-alone group graph pattern (`{ … }`) — the entry point
/// STARQL's WHERE clause reuses.
pub fn parse_group_graph_pattern(
    text: &str,
    namespaces: &Namespaces,
) -> Result<GroupPattern, SparqlError> {
    let tokens = lex(text)?;
    let mut parser = Parser::new(tokens, namespaces.clone());
    let group = parser.parse_group()?;
    parser.expect_end()?;
    Ok(group)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    namespaces: Namespaces,
    base: Option<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>, namespaces: Namespaces) -> Self {
        Parser {
            tokens,
            pos: 0,
            namespaces,
            base: None,
        }
    }

    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t.map(|t| t.kind)
    }

    fn position(&self) -> Position {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.position)
            .unwrap_or_else(Position::start)
    }

    fn err(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::parse(message, self.position())
    }

    /// True when the next token is the keyword `kw` (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {}", self.describe_next())))
        }
    }

    fn expect_token(&mut self, kind: TokenKind, what: &str) -> Result<(), SparqlError> {
        if self.peek() == Some(&kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {}", self.describe_next())))
        }
    }

    fn describe_next(&self) -> String {
        match self.peek() {
            None => "end of input".into(),
            Some(TokenKind::Word(w)) => format!("`{w}`"),
            Some(TokenKind::PName(p)) => format!("`{p}`"),
            Some(TokenKind::Var(v)) => format!("`?{v}`"),
            Some(TokenKind::IriRef(i)) => format!("`<{i}>`"),
            Some(TokenKind::Str(s)) => format!("string {s:?}"),
            Some(other) => format!("{other:?}"),
        }
    }

    fn expect_end(&self) -> Result<(), SparqlError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {}", self.describe_next())))
        }
    }

    // ---- prologue + query forms ----------------------------------------

    fn parse_query(&mut self) -> Result<Query, SparqlError> {
        self.parse_prologue()?;
        if self.eat_keyword("SELECT") {
            Ok(Query::Select(self.parse_select()?))
        } else if self.eat_keyword("ASK") {
            self.eat_keyword("WHERE");
            let pattern = self.parse_group()?;
            Ok(Query::Ask(AskQuery { pattern }))
        } else {
            Err(self.err(format!(
                "expected SELECT or ASK, found {}",
                self.describe_next()
            )))
        }
    }

    fn parse_prologue(&mut self) -> Result<(), SparqlError> {
        loop {
            if self.eat_keyword("PREFIX") {
                let Some(TokenKind::PName(pname)) = self.bump() else {
                    return Err(self.err("expected a prefix name after PREFIX"));
                };
                let prefix = pname.split(':').next().unwrap_or("").to_string();
                let Some(TokenKind::IriRef(iri)) = self.bump() else {
                    return Err(self.err("expected an IRI after the prefix name"));
                };
                self.namespaces.bind(prefix, self.resolve_relative(&iri));
            } else if self.eat_keyword("BASE") {
                let Some(TokenKind::IriRef(iri)) = self.bump() else {
                    return Err(self.err("expected an IRI after BASE"));
                };
                self.base = Some(iri);
            } else {
                return Ok(());
            }
        }
    }

    fn resolve_relative(&self, iri: &str) -> String {
        if iri.contains("://") || self.base.is_none() {
            iri.to_string()
        } else {
            format!("{}{}", self.base.as_deref().unwrap_or(""), iri)
        }
    }

    fn parse_select(&mut self) -> Result<SelectQuery, SparqlError> {
        let distinct = self.eat_keyword("DISTINCT");
        let projection = self.parse_projection()?;
        self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;

        let mut group_by = Vec::new();
        if self.at_keyword("GROUP") {
            self.bump();
            self.expect_keyword("BY")?;
            while let Some(TokenKind::Var(_)) = self.peek() {
                let Some(TokenKind::Var(v)) = self.bump() else {
                    unreachable!()
                };
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY needs at least one variable"));
            }
        }
        let modifiers = self.parse_modifiers()?;
        Ok(SelectQuery {
            distinct,
            projection,
            pattern,
            group_by,
            modifiers,
        })
    }

    fn parse_projection(&mut self) -> Result<Projection, SparqlError> {
        if self.peek() == Some(&TokenKind::Star) {
            self.bump();
            return Ok(Projection::All);
        }
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::Var(_)) => {
                    let Some(TokenKind::Var(v)) = self.bump() else {
                        unreachable!()
                    };
                    items.push(SelectItem::Var(v));
                }
                Some(TokenKind::LParen) => {
                    self.bump();
                    items.push(self.parse_aggregate_item()?);
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(self.err(format!(
                "SELECT needs `*`, variables, or aggregates; found {}",
                self.describe_next()
            )));
        }
        Ok(Projection::Items(items))
    }

    fn parse_aggregate_item(&mut self) -> Result<SelectItem, SparqlError> {
        let func = match self.bump() {
            Some(TokenKind::Word(w)) => match w.to_ascii_uppercase().as_str() {
                "COUNT" => AggregateFunction::Count,
                "SUM" => AggregateFunction::Sum,
                "AVG" => AggregateFunction::Avg,
                "MIN" => AggregateFunction::Min,
                "MAX" => AggregateFunction::Max,
                other => return Err(self.err(format!("unknown aggregate function `{other}`"))),
            },
            _ => return Err(self.err("expected an aggregate function")),
        };
        self.expect_token(TokenKind::LParen, "`(`")?;
        let distinct = self.eat_keyword("DISTINCT");
        let var = match self.peek() {
            Some(TokenKind::Star) => {
                if func != AggregateFunction::Count {
                    return Err(self.err(format!("{func}(*) is not defined; only COUNT(*)")));
                }
                self.bump();
                None
            }
            Some(TokenKind::Var(_)) => {
                let Some(TokenKind::Var(v)) = self.bump() else {
                    unreachable!()
                };
                Some(v)
            }
            _ => {
                return Err(self.err(format!(
                    "expected `*` or a variable inside {func}(…), found {}",
                    self.describe_next()
                )))
            }
        };
        self.expect_token(TokenKind::RParen, "`)`")?;
        self.expect_keyword("AS")?;
        let Some(TokenKind::Var(alias)) = self.bump() else {
            return Err(self.err("expected an alias variable after AS"));
        };
        self.expect_token(TokenKind::RParen, "`)` closing the aggregate item")?;
        Ok(SelectItem::Aggregate {
            func,
            distinct,
            var,
            alias,
        })
    }

    fn parse_modifiers(&mut self) -> Result<SolutionModifier, SparqlError> {
        let mut modifiers = SolutionModifier::default();
        if self.at_keyword("ORDER") {
            self.bump();
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(TokenKind::Var(_)) => {
                        let Some(TokenKind::Var(v)) = self.bump() else {
                            unreachable!()
                        };
                        modifiers.order_by.push((Expression::Var(v), false));
                    }
                    Some(TokenKind::Word(w))
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let descending = w.eq_ignore_ascii_case("DESC");
                        self.bump();
                        self.expect_token(TokenKind::LParen, "`(`")?;
                        let expr = self.parse_expression()?;
                        self.expect_token(TokenKind::RParen, "`)`")?;
                        modifiers.order_by.push((expr, descending));
                    }
                    _ => break,
                }
            }
            if modifiers.order_by.is_empty() {
                return Err(self.err("ORDER BY needs at least one sort key"));
            }
        }
        // LIMIT and OFFSET in either order.
        for _ in 0..2 {
            if self.at_keyword("LIMIT") {
                self.bump();
                modifiers.limit = Some(self.parse_count("LIMIT")?);
            } else if self.at_keyword("OFFSET") {
                self.bump();
                modifiers.offset = Some(self.parse_count("OFFSET")?);
            }
        }
        Ok(modifiers)
    }

    fn parse_count(&mut self, what: &str) -> Result<usize, SparqlError> {
        match self.bump() {
            Some(TokenKind::Int(n)) if n >= 0 => Ok(n as usize),
            _ => Err(self.err(format!("expected a non-negative integer after {what}"))),
        }
    }

    // ---- group graph patterns ------------------------------------------

    fn parse_group(&mut self) -> Result<GroupPattern, SparqlError> {
        self.expect_token(TokenKind::LBrace, "`{`")?;
        let mut elements: Vec<PatternElement> = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::RBrace) => {
                    self.bump();
                    return Ok(GroupPattern { elements });
                }
                None => return Err(self.err("unterminated group pattern (missing `}`)")),
                Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let inner = self.parse_group()?;
                    elements.push(PatternElement::Optional(inner));
                }
                Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    let expr = self.parse_constraint()?;
                    elements.push(PatternElement::Filter(expr));
                }
                Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("VALUES") => {
                    self.bump();
                    elements.push(PatternElement::Values(self.parse_values_block()?));
                }
                Some(TokenKind::LBrace) => {
                    let first = self.parse_group()?;
                    if self.at_keyword("UNION") {
                        let mut branches = vec![first];
                        while self.eat_keyword("UNION") {
                            branches.push(self.parse_group()?);
                        }
                        elements.push(PatternElement::Union(branches));
                    } else {
                        elements.push(PatternElement::SubGroup(first));
                    }
                }
                Some(TokenKind::Dot) => {
                    self.bump();
                }
                _ => {
                    let atoms = self.parse_triples_block()?;
                    elements.push(PatternElement::Triples(atoms));
                }
            }
        }
    }

    /// Consecutive `subject predicate object (; p o)* (, o)* .` triples.
    fn parse_triples_block(&mut self) -> Result<Vec<Atom>, SparqlError> {
        let mut atoms = Vec::new();
        loop {
            let subject = self.parse_term()?;
            loop {
                let (is_type, predicate) = self.parse_verb()?;
                loop {
                    let object = self.parse_term()?;
                    atoms.push(self.make_atom(is_type, &predicate, &subject, object)?);
                    if self.peek() == Some(&TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek() == Some(&TokenKind::Semicolon) {
                    self.bump();
                    // A dangling `;` before `.`/`}` is legal SPARQL.
                    if matches!(self.peek(), Some(TokenKind::Dot) | Some(TokenKind::RBrace)) {
                        break;
                    }
                } else {
                    break;
                }
            }
            if self.peek() == Some(&TokenKind::Dot) {
                self.bump();
            } else {
                break;
            }
            // The block ends at `}`, a keyword element, or a nested group.
            match self.peek() {
                None | Some(TokenKind::RBrace) | Some(TokenKind::LBrace) => break,
                Some(TokenKind::Word(w))
                    if w.eq_ignore_ascii_case("OPTIONAL")
                        || w.eq_ignore_ascii_case("FILTER")
                        || w.eq_ignore_ascii_case("VALUES") =>
                {
                    break
                }
                _ => {}
            }
        }
        Ok(atoms)
    }

    /// `VALUES ?v { term … }` (single variable, bare terms) or
    /// `VALUES (?a ?b …) { (t1 t2 …) … }` (full form). `UNDEF` marks an
    /// unbound position.
    fn parse_values_block(&mut self) -> Result<ValuesBlock, SparqlError> {
        let mut vars = Vec::new();
        let single = match self.peek() {
            Some(TokenKind::Var(_)) => {
                let Some(TokenKind::Var(v)) = self.bump() else {
                    unreachable!()
                };
                vars.push(v);
                true
            }
            Some(TokenKind::LParen) => {
                self.bump();
                while let Some(TokenKind::Var(_)) = self.peek() {
                    let Some(TokenKind::Var(v)) = self.bump() else {
                        unreachable!()
                    };
                    vars.push(v);
                }
                self.expect_token(TokenKind::RParen, "`)` closing the VALUES variables")?;
                if vars.is_empty() {
                    return Err(self.err("VALUES needs at least one variable"));
                }
                false
            }
            _ => {
                return Err(self.err(format!(
                    "expected a variable or `(` after VALUES, found {}",
                    self.describe_next()
                )))
            }
        };
        self.expect_token(TokenKind::LBrace, "`{` opening the VALUES data block")?;
        let mut rows = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::RBrace) => {
                    self.bump();
                    return Ok(ValuesBlock { vars, rows });
                }
                None => return Err(self.err("unterminated VALUES data block (missing `}`)")),
                Some(TokenKind::LParen) if !single => {
                    self.bump();
                    let mut row = Vec::with_capacity(vars.len());
                    while self.peek() != Some(&TokenKind::RParen) {
                        row.push(self.parse_data_value()?);
                    }
                    self.expect_token(TokenKind::RParen, "`)` closing a VALUES row")?;
                    if row.len() != vars.len() {
                        return Err(self.err(format!(
                            "VALUES row has {} terms for {} variables",
                            row.len(),
                            vars.len()
                        )));
                    }
                    rows.push(row);
                }
                _ if single => {
                    rows.push(vec![self.parse_data_value()?]);
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `(` or `}}` in the VALUES data block, found {}",
                        self.describe_next()
                    )))
                }
            }
        }
    }

    /// One VALUES data term: a constant (never a variable) or `UNDEF`.
    fn parse_data_value(&mut self) -> Result<Option<Term>, SparqlError> {
        if self.eat_keyword("UNDEF") {
            return Ok(None);
        }
        let position = self.position();
        match self.parse_term()? {
            QueryTerm::Const(term) => Ok(Some(term)),
            QueryTerm::Var(v) => Err(SparqlError::parse(
                format!("VALUES data must be constants or UNDEF, found ?{v}"),
                position,
            )),
        }
    }

    fn make_atom(
        &self,
        is_type: bool,
        predicate: &Iri,
        subject: &QueryTerm,
        object: QueryTerm,
    ) -> Result<Atom, SparqlError> {
        if is_type {
            match object {
                QueryTerm::Const(Term::Iri(class)) => Ok(Atom::Class {
                    class,
                    arg: subject.clone(),
                }),
                other => Err(SparqlError::unsupported(
                    format!("rdf:type needs a constant class IRI, found {other}"),
                    self.position(),
                )),
            }
        } else {
            Ok(Atom::Property {
                property: predicate.clone(),
                subject: subject.clone(),
                object,
            })
        }
    }

    /// Predicate position: `a`, a prefixed name, or an IRI. Variables are a
    /// deliberate subset exclusion (mappings are indexed by named terms).
    fn parse_verb(&mut self) -> Result<(bool, Iri), SparqlError> {
        match self.peek() {
            Some(TokenKind::Word(w)) if w == "a" => {
                self.bump();
                Ok((true, Iri::new(optique_rdf::vocab::rdf::TYPE)))
            }
            Some(TokenKind::Var(v)) => Err(SparqlError::unsupported(
                format!("variable predicate ?{v} is outside the supported subset"),
                self.position(),
            )),
            Some(TokenKind::PName(_)) | Some(TokenKind::IriRef(_)) => {
                let iri = self.parse_iri()?;
                Ok((iri.as_str() == optique_rdf::vocab::rdf::TYPE, iri))
            }
            _ => Err(self.err(format!(
                "expected a predicate, found {}",
                self.describe_next()
            ))),
        }
    }

    fn parse_iri(&mut self) -> Result<Iri, SparqlError> {
        let position = self.position();
        match self.bump() {
            Some(TokenKind::IriRef(iri)) => Ok(Iri::new(self.resolve_relative(&iri))),
            Some(TokenKind::PName(pname)) => self.namespaces.expand(&pname).ok_or_else(|| {
                SparqlError::parse(format!("unbound prefix in `{pname}`"), position)
            }),
            other => Err(SparqlError::parse(
                format!("expected an IRI, found {other:?}"),
                position,
            )),
        }
    }

    fn parse_term(&mut self) -> Result<QueryTerm, SparqlError> {
        let position = self.position();
        match self.peek() {
            Some(TokenKind::Var(_)) => {
                let Some(TokenKind::Var(v)) = self.bump() else {
                    unreachable!()
                };
                Ok(QueryTerm::var(v))
            }
            Some(TokenKind::PName(_)) | Some(TokenKind::IriRef(_)) => {
                Ok(QueryTerm::Const(Term::Iri(self.parse_iri()?)))
            }
            Some(TokenKind::Str(_)) => {
                let Some(TokenKind::Str(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(QueryTerm::Const(Term::Literal(self.typed_literal(s)?)))
            }
            Some(TokenKind::Int(_)) => {
                let Some(TokenKind::Int(i)) = self.bump() else {
                    unreachable!()
                };
                Ok(QueryTerm::Const(Term::Literal(Literal::integer(i))))
            }
            Some(TokenKind::Float(_)) => {
                let Some(TokenKind::Float(f)) = self.bump() else {
                    unreachable!()
                };
                Ok(QueryTerm::Const(Term::Literal(Literal::double(f))))
            }
            Some(TokenKind::Minus) => {
                self.bump();
                match self.bump() {
                    Some(TokenKind::Int(i)) => {
                        Ok(QueryTerm::Const(Term::Literal(Literal::integer(-i))))
                    }
                    Some(TokenKind::Float(f)) => {
                        Ok(QueryTerm::Const(Term::Literal(Literal::double(-f))))
                    }
                    _ => Err(SparqlError::parse("expected a number after `-`", position)),
                }
            }
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(QueryTerm::Const(Term::Literal(Literal::boolean(true))))
            }
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(QueryTerm::Const(Term::Literal(Literal::boolean(false))))
            }
            _ => Err(SparqlError::parse(
                format!("expected a term, found {}", self.describe_next()),
                position,
            )),
        }
    }

    /// A string literal with an optional `^^datatype` tag.
    fn typed_literal(&mut self, lexical: String) -> Result<Literal, SparqlError> {
        if self.peek() != Some(&TokenKind::Carets) {
            return Ok(Literal::string(lexical));
        }
        self.bump();
        let datatype_iri = self.parse_iri()?;
        let datatype = [
            Datatype::String,
            Datatype::Integer,
            Datatype::Double,
            Datatype::Boolean,
            Datatype::DateTime,
            Datatype::Duration,
        ]
        .into_iter()
        .find(|d| d.iri() == datatype_iri)
        .unwrap_or(Datatype::String);
        Ok(Literal::typed(lexical, datatype))
    }

    // ---- expressions ----------------------------------------------------

    fn parse_constraint(&mut self) -> Result<Expression, SparqlError> {
        match self.peek() {
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect_token(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::Word(w))
                if w.eq_ignore_ascii_case("REGEX") || w.eq_ignore_ascii_case("BOUND") =>
            {
                self.parse_primary_expression()
            }
            _ => Err(self.err(format!(
                "expected `(` or a builtin call after FILTER, found {}",
                self.describe_next()
            ))),
        }
    }

    fn parse_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_and_expression()?;
        while self.peek() == Some(&TokenKind::OrOr) {
            self.bump();
            let right = self.parse_and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_relational_expression()?;
        while self.peek() == Some(&TokenKind::AndAnd) {
            self.bump();
            let right = self.parse_relational_expression()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational_expression(&mut self) -> Result<Expression, SparqlError> {
        let left = self.parse_additive_expression()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => ComparisonOperator::Eq,
            Some(TokenKind::Ne) => ComparisonOperator::Ne,
            Some(TokenKind::Lt) => ComparisonOperator::Lt,
            Some(TokenKind::Le) => ComparisonOperator::Le,
            Some(TokenKind::Gt) => ComparisonOperator::Gt,
            Some(TokenKind::Ge) => ComparisonOperator::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_additive_expression()?;
        Ok(Expression::Compare(op, Box::new(left), Box::new(right)))
    }

    fn parse_additive_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_multiplicative_expression()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => ArithmeticOperator::Add,
                Some(TokenKind::Minus) => ArithmeticOperator::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative_expression()?;
            left = Expression::Arithmetic(op, Box::new(left), Box::new(right));
        }
    }

    fn parse_multiplicative_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_unary_expression()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => ArithmeticOperator::Mul,
                Some(TokenKind::Slash) => ArithmeticOperator::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary_expression()?;
            left = Expression::Arithmetic(op, Box::new(left), Box::new(right));
        }
    }

    fn parse_unary_expression(&mut self) -> Result<Expression, SparqlError> {
        match self.peek() {
            Some(TokenKind::Bang) => {
                self.bump();
                let inner = self.parse_unary_expression()?;
                Ok(Expression::Not(Box::new(inner)))
            }
            Some(TokenKind::Minus) => {
                self.bump();
                match self.peek() {
                    Some(TokenKind::Int(_)) => {
                        let Some(TokenKind::Int(i)) = self.bump() else {
                            unreachable!()
                        };
                        Ok(Expression::Const(Term::Literal(Literal::integer(-i))))
                    }
                    Some(TokenKind::Float(_)) => {
                        let Some(TokenKind::Float(f)) = self.bump() else {
                            unreachable!()
                        };
                        Ok(Expression::Const(Term::Literal(Literal::double(-f))))
                    }
                    _ => {
                        let inner = self.parse_primary_expression()?;
                        Ok(Expression::Arithmetic(
                            ArithmeticOperator::Sub,
                            Box::new(Expression::Const(Term::Literal(Literal::integer(0)))),
                            Box::new(inner),
                        ))
                    }
                }
            }
            _ => self.parse_primary_expression(),
        }
    }

    fn parse_primary_expression(&mut self) -> Result<Expression, SparqlError> {
        let position = self.position();
        match self.peek() {
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect_token(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::Var(_)) => {
                let Some(TokenKind::Var(v)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expression::Var(v))
            }
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("REGEX") => {
                self.bump();
                self.expect_token(TokenKind::LParen, "`(` after REGEX")?;
                let text = self.parse_expression()?;
                self.expect_token(TokenKind::Comma, "`,` between REGEX arguments")?;
                let Some(TokenKind::Str(pattern)) = self.bump() else {
                    return Err(SparqlError::parse(
                        "REGEX pattern must be a string literal",
                        position,
                    ));
                };
                let mut case_insensitive = false;
                if self.peek() == Some(&TokenKind::Comma) {
                    self.bump();
                    let Some(TokenKind::Str(flags)) = self.bump() else {
                        return Err(SparqlError::parse(
                            "REGEX flags must be a string literal",
                            position,
                        ));
                    };
                    case_insensitive = flags.contains('i');
                }
                self.expect_token(TokenKind::RParen, "`)` closing REGEX")?;
                Ok(Expression::Regex {
                    text: Box::new(text),
                    pattern,
                    case_insensitive,
                })
            }
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("BOUND") => {
                self.bump();
                self.expect_token(TokenKind::LParen, "`(` after BOUND")?;
                let Some(TokenKind::Var(v)) = self.bump() else {
                    return Err(SparqlError::parse("BOUND takes a variable", position));
                };
                self.expect_token(TokenKind::RParen, "`)` closing BOUND")?;
                Ok(Expression::Bound(v))
            }
            Some(TokenKind::Word(w))
                if w.eq_ignore_ascii_case("true") || w.eq_ignore_ascii_case("false") =>
            {
                let b = w.eq_ignore_ascii_case("true");
                self.bump();
                Ok(Expression::Const(Term::Literal(Literal::boolean(b))))
            }
            Some(TokenKind::Str(_)) => {
                let Some(TokenKind::Str(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expression::Const(Term::Literal(self.typed_literal(s)?)))
            }
            Some(TokenKind::Int(_)) => {
                let Some(TokenKind::Int(i)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expression::Const(Term::Literal(Literal::integer(i))))
            }
            Some(TokenKind::Float(_)) => {
                let Some(TokenKind::Float(f)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expression::Const(Term::Literal(Literal::double(f))))
            }
            Some(TokenKind::PName(_)) | Some(TokenKind::IriRef(_)) => {
                Ok(Expression::Const(Term::Iri(self.parse_iri()?)))
            }
            _ => Err(self.err(format!(
                "expected an expression, found {}",
                self.describe_next()
            ))),
        }
    }
}
