//! **optique-sparql** — the SPARQL front-end for Optique's static OBDA side.
//!
//! The paper's static half answers SPARQL queries over relational data via
//! ontology rewriting and mapping unfolding; this crate is that query
//! *language* surface. It follows the classic OBDA architecture (Ontop,
//! Hovland et al.'s *OBDA Constraints for Effective Query Answering*,
//! Kharlamov et al.'s *Towards Analytics-Aware OBDA*): a SPARQL entry point
//! feeding the rewrite → unfold → relational-execution pipeline.
//!
//! Layers:
//!
//! * [`lexer`] / [`parser`] — a hand-written tokenizer and recursive-descent
//!   parser for a SPARQL 1.1 subset: `PREFIX`/`BASE`, `SELECT`/`ASK` with
//!   `DISTINCT`, basic graph patterns (`;`/`,` abbreviations, `a`),
//!   `OPTIONAL`, `UNION`, `FILTER` (comparisons, `&&`/`||`/`!`, arithmetic,
//!   `REGEX`-lite, `BOUND`), `GROUP BY` with `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`
//!   aggregates, `ORDER BY`/`LIMIT`/`OFFSET`. Errors carry line/column.
//! * [`algebra`] — the query algebra ([`GroupPattern`], [`Expression`],
//!   [`SolutionModifier`]) in the style of oxigraph's `spargebra`; BGPs
//!   reuse `optique_rewrite::Atom`, so rewriting needs no translation.
//! * [`compile`] — [`StaticPipeline`]: each BGP is enriched by PerfectRef,
//!   unfolded through the mapping catalog into `UNION ALL` SQL, and run on
//!   the relational engine; [`PipelineStats`] reports per-stage timings.
//! * [`eval`] — the residual algebra over [`SolutionSet`]s: joins across
//!   `OPTIONAL`/`UNION` branches, filters, modifiers, aggregation — and the
//!   merge of federated per-fragment results.
//! * [`planner`] — statistics-driven join ordering (smallest estimate
//!   first, connected-subgraph preference) and semi-join pushdown
//!   ([`Restriction`]s become `IN`-list predicates on plan fragments);
//!   [`PlannerSettings::disabled`] reproduces the naive pipeline for the
//!   differential plan-equivalence oracle.
//! * [`cache`] — [`BgpCache`]: per-BGP solution-set memoization with
//!   hit/miss counters and whole-cache invalidation on relational writes.
//! * [`results`] — [`SparqlResults`]: solution tables / ASK booleans.
//!
//! ```
//! use optique_rdf::Namespaces;
//! let mut ns = Namespaces::with_w3c_defaults();
//! ns.bind("sie", "http://siemens.example/ontology#");
//! let query = optique_sparql::parse_sparql(
//!     "SELECT ?s WHERE { ?s a sie:Sensor } LIMIT 10",
//!     &ns,
//! ).unwrap();
//! assert!(matches!(query, optique_sparql::Query::Select(_)));
//! ```

pub mod algebra;
pub mod cache;
pub mod compile;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod results;

pub use algebra::{
    AggregateFunction, ArithmeticOperator, AskQuery, ComparisonOperator, Expression, GroupPattern,
    PatternElement, Projection, Query, SelectItem, SelectQuery, SolutionModifier, ValuesBlock,
};
pub use cache::{BgpCache, TableVersions};
pub use compile::{
    expression_to_sql, split_union_chain, FragmentExecutor, FragmentRound, PipelineStats,
    StaticPipeline,
};
pub use error::{ErrorKind, Position, SparqlError};
pub use eval::{solutions_from_tables, SolutionSet};
pub use parser::{parse_group_graph_pattern, parse_sparql};
pub use planner::{CardinalityModel, PlannerSettings, Restriction};
pub use results::SparqlResults;
