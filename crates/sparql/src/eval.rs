//! Solution sets and the residual-algebra operators.
//!
//! BGPs are answered by the rewrite → unfold → SQL pipeline (see
//! [`crate::compile`]); everything *around* the BGPs — joins across
//! `OPTIONAL`/`UNION` branches, `FILTER`s, ordering, slicing, aggregation —
//! runs here over [`SolutionSet`]s of RDF terms.

use std::cmp::Ordering;
use std::collections::HashMap;

use optique_rdf::{Literal, Term};

use crate::algebra::{
    AggregateFunction, ArithmeticOperator, ComparisonOperator, Expression, SelectItem,
};
use crate::error::SparqlError;

/// A multiset of variable bindings: one column per variable, one row per
/// solution; `None` is an unbound position (from `OPTIONAL` or `UNION`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolutionSet {
    /// Column names (no `?`).
    pub vars: Vec<String>,
    /// Rows; every row has `vars.len()` entries.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl SolutionSet {
    /// The join identity: no variables, one empty solution.
    pub fn unit() -> Self {
        SolutionSet {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// No variables, no solutions (the empty result).
    pub fn empty() -> Self {
        SolutionSet::default()
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value of `var` in `row`, if the variable exists and is bound.
    pub fn value(&self, row: &[Option<Term>], var: &str) -> Option<Term> {
        let idx = self.vars.iter().position(|v| v == var)?;
        row.get(idx).and_then(|t| t.clone())
    }

    /// Natural join: rows merge when every shared variable is compatible
    /// (equal, or unbound on at least one side).
    pub fn join(&self, other: &SolutionSet) -> SolutionSet {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.vars.iter().position(|w| w == v).map(|j| (i, j)))
            .collect();
        let mut out = self.merged_header(other);

        if shared.is_empty() {
            for l in &self.rows {
                for r in &other.rows {
                    out.rows.push(merge_rows(l, r, &shared, other.vars.len()));
                }
            }
            return out;
        }

        // Hash right rows on their fully-bound shared-key prefix; rows with
        // unbound key positions go to a scan list (only OPTIONAL/UNION
        // produce them, so it stays short).
        let mut keyed: HashMap<Vec<Term>, Vec<&Vec<Option<Term>>>> = HashMap::new();
        let mut wildcards: Vec<&Vec<Option<Term>>> = Vec::new();
        for r in &other.rows {
            match shared
                .iter()
                .map(|&(_, j)| r[j].clone())
                .collect::<Option<Vec<Term>>>()
            {
                Some(key) => keyed.entry(key).or_default().push(r),
                None => wildcards.push(r),
            }
        }
        for l in &self.rows {
            let key: Option<Vec<Term>> = shared.iter().map(|&(i, _)| l[i].clone()).collect();
            match key {
                Some(key) => {
                    if let Some(matches) = keyed.get(&key) {
                        for r in matches {
                            out.rows.push(merge_rows(l, r, &shared, other.vars.len()));
                        }
                    }
                    for r in &wildcards {
                        if compatible(l, r, &shared) {
                            out.rows.push(merge_rows(l, r, &shared, other.vars.len()));
                        }
                    }
                }
                None => {
                    for r in &other.rows {
                        if compatible(l, r, &shared) {
                            out.rows.push(merge_rows(l, r, &shared, other.vars.len()));
                        }
                    }
                }
            }
        }
        out
    }

    /// Left (outer) join — the `OPTIONAL` operator: unmatched left rows
    /// survive with the right-only columns unbound.
    pub fn left_join(&self, other: &SolutionSet) -> SolutionSet {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.vars.iter().position(|w| w == v).map(|j| (i, j)))
            .collect();
        let mut out = self.merged_header(other);
        let right_only = out.vars.len() - self.vars.len();
        for l in &self.rows {
            let mut matched = false;
            for r in &other.rows {
                if compatible(l, r, &shared) {
                    out.rows.push(merge_rows(l, r, &shared, other.vars.len()));
                    matched = true;
                }
            }
            if !matched {
                let mut row = l.clone();
                row.extend(std::iter::repeat_with(|| None).take(right_only));
                out.rows.push(row);
            }
        }
        out
    }

    /// Multiset union, aligning columns and padding missing ones.
    pub fn union(mut self, other: SolutionSet) -> SolutionSet {
        let mapping: Vec<usize> = other
            .vars
            .iter()
            .map(|v| {
                self.vars.iter().position(|w| w == v).unwrap_or_else(|| {
                    self.vars.push(v.clone());
                    self.vars.len() - 1
                })
            })
            .collect();
        let width = self.vars.len();
        for row in &mut self.rows {
            row.resize(width, None);
        }
        for row in other.rows {
            let mut aligned: Vec<Option<Term>> = vec![None; width];
            for (j, value) in row.into_iter().enumerate() {
                aligned[mapping[j]] = value;
            }
            self.rows.push(aligned);
        }
        self
    }

    /// Keeps rows whose effective boolean value of `expr` is true.
    pub fn filter(mut self, expr: &Expression) -> SolutionSet {
        let vars = self.vars.clone();
        self.rows.retain(|row| {
            effective_boolean_value(&eval_expression(expr, &vars, row)).unwrap_or(false)
        });
        self
    }

    /// Sorts rows by the given `(expression, descending)` keys. Ties break
    /// on the full row, so the order — and anything sliced off it by
    /// `LIMIT` — is a function of the solution *set* alone, never of the
    /// arrival order an execution backend happens to produce (single-node,
    /// replicated and shard-scattered runs all agree).
    pub fn order_by(&mut self, keys: &[(Expression, bool)]) {
        if keys.is_empty() {
            return;
        }
        let vars = self.vars.clone();
        self.rows.sort_by(|a, b| {
            for (expr, descending) in keys {
                let va = eval_expression(expr, &vars, a);
                let vb = eval_expression(expr, &vars, b);
                let ord = term_order(&va, &vb);
                if ord != Ordering::Equal {
                    return if *descending { ord.reverse() } else { ord };
                }
            }
            for (ta, tb) in a.iter().zip(b) {
                let ord = term_order(ta, tb);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    /// Projects onto `names` (unknown names become all-unbound columns,
    /// matching SPARQL's treatment of never-bound variables).
    pub fn project(&self, names: &[String]) -> SolutionSet {
        let indexes: Vec<Option<usize>> = names
            .iter()
            .map(|n| self.vars.iter().position(|v| v == n))
            .collect();
        SolutionSet {
            vars: names.to_vec(),
            rows: self
                .rows
                .iter()
                .map(|row| {
                    indexes
                        .iter()
                        .map(|ix| ix.and_then(|i| row[i].clone()))
                        .collect()
                })
                .collect(),
        }
    }

    /// Removes duplicate rows, keeping first occurrences in order.
    pub fn distinct(&mut self) {
        let mut seen: std::collections::HashSet<Vec<Option<Term>>> = Default::default();
        self.rows.retain(|row| seen.insert(row.clone()));
    }

    /// Applies OFFSET then LIMIT.
    pub fn slice(&mut self, offset: Option<usize>, limit: Option<usize>) {
        if let Some(skip) = offset {
            self.rows.drain(..skip.min(self.rows.len()));
        }
        if let Some(cap) = limit {
            self.rows.truncate(cap);
        }
    }

    fn merged_header(&self, other: &SolutionSet) -> SolutionSet {
        let mut vars = self.vars.clone();
        for v in &other.vars {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        SolutionSet {
            vars,
            rows: Vec::new(),
        }
    }
}

/// Merges the per-fragment result tables of a federated BGP round back into
/// one solution set. Each table holds one unfolded disjunct's answers (or
/// one partition's concatenated scan); a UCQ's certain answers are the
/// *set* union of its disjuncts' answers, so rows deduplicate here — the
/// same collapse the single-node `UNION ALL` path performs.
pub fn solutions_from_tables(
    vars: Vec<String>,
    tables: Vec<optique_relational::Table>,
) -> SolutionSet {
    let mut out = SolutionSet {
        vars,
        rows: Vec::new(),
    };
    for table in &tables {
        for row in &table.rows {
            out.rows
                .push(row.iter().map(crate::compile::value_to_term).collect());
        }
    }
    out.distinct();
    out
}

fn compatible(l: &[Option<Term>], r: &[Option<Term>], shared: &[(usize, usize)]) -> bool {
    shared.iter().all(|&(i, j)| match (&l[i], &r[j]) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    })
}

fn merge_rows(
    l: &[Option<Term>],
    r: &[Option<Term>],
    shared: &[(usize, usize)],
    right_width: usize,
) -> Vec<Option<Term>> {
    let mut row = l.to_vec();
    // Fill shared positions left unbound by the left side.
    for &(i, j) in shared {
        if row[i].is_none() {
            row[i] = r[j].clone();
        }
    }
    for (j, value) in r.iter().enumerate().take(right_width) {
        if !shared.iter().any(|&(_, sj)| sj == j) {
            row.push(value.clone());
        }
    }
    row
}

// ---- expressions -------------------------------------------------------

/// Evaluates an expression over one row; `None` is SPARQL's "error" value
/// (unbound variable, type error), which filters treat as false.
pub fn eval_expression(expr: &Expression, vars: &[String], row: &[Option<Term>]) -> Option<Term> {
    match expr {
        Expression::Var(v) => {
            let idx = vars.iter().position(|w| w == v)?;
            row.get(idx).and_then(|t| t.clone())
        }
        Expression::Const(t) => Some(t.clone()),
        Expression::Or(a, b) => {
            let left = effective_boolean_value(&eval_expression(a, vars, row));
            let right = effective_boolean_value(&eval_expression(b, vars, row));
            // SPARQL's three-valued OR: true beats error.
            match (left, right) {
                (Some(true), _) | (_, Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                (Some(false), Some(false)) => Some(Term::Literal(Literal::boolean(false))),
                _ => None,
            }
        }
        Expression::And(a, b) => {
            let left = effective_boolean_value(&eval_expression(a, vars, row));
            let right = effective_boolean_value(&eval_expression(b, vars, row));
            match (left, right) {
                (Some(false), _) | (_, Some(false)) => Some(Term::Literal(Literal::boolean(false))),
                (Some(true), Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                _ => None,
            }
        }
        Expression::Not(a) => {
            let inner = effective_boolean_value(&eval_expression(a, vars, row))?;
            Some(Term::Literal(Literal::boolean(!inner)))
        }
        Expression::Compare(op, a, b) => {
            let left = eval_expression(a, vars, row)?;
            let right = eval_expression(b, vars, row)?;
            let outcome = match op {
                ComparisonOperator::Eq => terms_equal(&left, &right),
                ComparisonOperator::Ne => !terms_equal(&left, &right),
                _ => {
                    let ord = comparable_order(&left, &right)?;
                    match op {
                        ComparisonOperator::Lt => ord == Ordering::Less,
                        ComparisonOperator::Le => ord != Ordering::Greater,
                        ComparisonOperator::Gt => ord == Ordering::Greater,
                        ComparisonOperator::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    }
                }
            };
            Some(Term::Literal(Literal::boolean(outcome)))
        }
        Expression::Arithmetic(op, a, b) => {
            let left = eval_expression(a, vars, row)?;
            let right = eval_expression(b, vars, row)?;
            let (x, y) = (numeric(&left)?, numeric(&right)?);
            let result = match op {
                ArithmeticOperator::Add => x + y,
                ArithmeticOperator::Sub => x - y,
                ArithmeticOperator::Mul => x * y,
                ArithmeticOperator::Div => {
                    if y == 0.0 {
                        return None;
                    }
                    x / y
                }
            };
            // Preserve integer typing for closed integer operations.
            let both_int = is_integer(&left) && is_integer(&right);
            if both_int && *op != ArithmeticOperator::Div && result.fract() == 0.0 {
                Some(Term::Literal(Literal::integer(result as i64)))
            } else {
                Some(Term::Literal(Literal::double(result)))
            }
        }
        Expression::Regex {
            text,
            pattern,
            case_insensitive,
        } => {
            let value = eval_expression(text, vars, row)?;
            let haystack = term_text(&value);
            Some(Term::Literal(Literal::boolean(regex_lite(
                &haystack,
                pattern,
                *case_insensitive,
            ))))
        }
        Expression::Bound(v) => {
            let idx = vars.iter().position(|w| w == v);
            let bound = idx.is_some_and(|i| row.get(i).is_some_and(|t| t.is_some()));
            Some(Term::Literal(Literal::boolean(bound)))
        }
    }
}

/// SPARQL's effective boolean value; `None` on type error.
pub fn effective_boolean_value(term: &Option<Term>) -> Option<bool> {
    match term {
        Some(Term::Literal(lit)) => {
            if let Some(b) = lit.as_bool() {
                Some(b)
            } else if let Some(n) = lit.as_f64() {
                Some(n != 0.0 && !n.is_nan())
            } else {
                Some(!lit.lexical().is_empty())
            }
        }
        _ => None,
    }
}

fn terms_equal(a: &Term, b: &Term) -> bool {
    if let (Some(x), Some(y)) = (term_numeric(a), term_numeric(b)) {
        return x == y;
    }
    a == b
}

/// Ordering for `<`/`>` comparisons: numeric when both sides are numeric,
/// lexicographic over text forms otherwise.
fn comparable_order(a: &Term, b: &Term) -> Option<Ordering> {
    match (term_numeric(a), term_numeric(b)) {
        (Some(x), Some(y)) => Some(x.total_cmp(&y)),
        _ => Some(term_text(a).cmp(&term_text(b))),
    }
}

/// Total order for ORDER BY: unbound first, then numerics, then the rest by
/// text — stable and deterministic across runs.
pub fn term_order(a: &Option<Term>, b: &Option<Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (term_numeric(x), term_numeric(y)) {
            (Some(nx), Some(ny)) => nx.total_cmp(&ny),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => term_text(x).cmp(&term_text(y)),
        },
    }
}

fn numeric(term: &Term) -> Option<f64> {
    term_numeric(term)
}

fn term_numeric(term: &Term) -> Option<f64> {
    match term {
        Term::Literal(lit) => lit.as_f64(),
        _ => None,
    }
}

fn is_integer(term: &Term) -> bool {
    matches!(term, Term::Literal(lit) if lit.as_i64().is_some())
}

/// The comparable / regex-able text of a term.
pub fn term_text(term: &Term) -> String {
    match term {
        Term::Iri(iri) => iri.as_str().to_string(),
        Term::Literal(lit) => lit.lexical().to_string(),
        Term::BNode(id) => format!("_:b{id}"),
    }
}

/// The `REGEX`-lite dialect: `^` / `$` anchors, `.*` gaps, literal text
/// otherwise, optional case-insensitivity.
fn regex_lite(haystack: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (hay, pat) = if case_insensitive {
        (haystack.to_lowercase(), pattern.to_lowercase())
    } else {
        (haystack.to_string(), pattern.to_string())
    };
    let anchored_start = pat.starts_with('^');
    let anchored_end = pat.ends_with('$') && !pat.ends_with("\\$");
    let core = pat.trim_start_matches('^').trim_end_matches('$');

    if core.is_empty() {
        // `^$` matches only the empty string; a bare anchor matches all.
        return !(anchored_start && anchored_end) || hay.is_empty();
    }
    let segments: Vec<&str> = core.split(".*").collect();
    let mut cursor = 0usize;
    for (i, segment) in segments.iter().enumerate() {
        if segment.is_empty() {
            continue;
        }
        match hay[cursor..].find(segment) {
            Some(found) => {
                if i == 0 && anchored_start && found != 0 {
                    return false;
                }
                cursor += found + segment.len();
            }
            None => return false,
        }
    }
    // A pattern ending in `.*` (trailing empty segment) satisfies `$`
    // unconditionally; otherwise the final literal must close the string.
    if anchored_end {
        if let Some(last) = segments.last() {
            if !last.is_empty() && !hay.ends_with(last) {
                return false;
            }
        }
    }
    true
}

// ---- aggregation -------------------------------------------------------

/// Groups `solutions` by `group_by` and evaluates the aggregate items; the
/// output has one column per item, in item order.
pub fn aggregate(
    solutions: &SolutionSet,
    group_by: &[String],
    items: &[SelectItem],
) -> Result<SolutionSet, SparqlError> {
    for item in items {
        if let SelectItem::Var(v) = item {
            if !group_by.contains(v) {
                return Err(SparqlError::execution(format!(
                    "?{v} is projected but neither aggregated nor in GROUP BY"
                )));
            }
        }
    }

    // Group keys in input order (deterministic output).
    let mut order: Vec<Vec<Option<Term>>> = Vec::new();
    let mut groups: HashMap<Vec<Option<Term>>, Vec<&Vec<Option<Term>>>> = HashMap::new();
    for row in &solutions.rows {
        let key: Vec<Option<Term>> = group_by.iter().map(|v| solutions.value(row, v)).collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    // A grand aggregate over zero rows still yields one (empty-key) group.
    if groups.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let vars: Vec<String> = items.iter().map(|i| i.name().to_string()).collect();
    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let members = &groups[&key];
        let mut out_row = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SelectItem::Var(v) => {
                    let idx = group_by.iter().position(|g| g == v).expect("checked above");
                    out_row.push(key[idx].clone());
                }
                SelectItem::Aggregate {
                    func,
                    distinct,
                    var,
                    ..
                } => {
                    out_row.push(eval_aggregate(solutions, members, *func, *distinct, var));
                }
            }
        }
        rows.push(out_row);
    }
    Ok(SolutionSet { vars, rows })
}

fn eval_aggregate(
    solutions: &SolutionSet,
    members: &[&Vec<Option<Term>>],
    func: AggregateFunction,
    distinct: bool,
    var: &Option<String>,
) -> Option<Term> {
    // Collect the aggregated values (bound only), deduplicating under
    // DISTINCT.
    let mut values: Vec<Term> = Vec::new();
    match var {
        None => {
            // COUNT(*) counts solutions, not values.
            let n = members.len() as i64;
            return Some(Term::Literal(Literal::integer(n)));
        }
        Some(v) => {
            for row in members {
                if let Some(t) = solutions.value(row, v) {
                    values.push(t);
                }
            }
        }
    }
    if distinct {
        let mut seen: std::collections::HashSet<Term> = Default::default();
        values.retain(|t| seen.insert(t.clone()));
    }
    match func {
        AggregateFunction::Count => Some(Term::Literal(Literal::integer(values.len() as i64))),
        AggregateFunction::Sum => {
            let sum: f64 = values.iter().filter_map(term_numeric).sum();
            let all_int = values.iter().all(is_integer);
            Some(Term::Literal(if all_int {
                Literal::integer(sum as i64)
            } else {
                Literal::double(sum)
            }))
        }
        AggregateFunction::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(term_numeric).collect();
            if nums.is_empty() {
                None
            } else {
                Some(Term::Literal(Literal::double(
                    nums.iter().sum::<f64>() / nums.len() as f64,
                )))
            }
        }
        AggregateFunction::Min => values.into_iter().map(Some).min_by(term_order).flatten(),
        AggregateFunction::Max => values.into_iter().map(Some).max_by(term_order).flatten(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Option<Term> {
        Some(Term::iri(format!("http://x/{s}")))
    }

    fn int(i: i64) -> Option<Term> {
        Some(Term::Literal(Literal::integer(i)))
    }

    fn set(vars: &[&str], rows: Vec<Vec<Option<Term>>>) -> SolutionSet {
        SolutionSet {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn join_on_shared_var() {
        let left = set(
            &["x", "y"],
            vec![vec![iri("a"), int(1)], vec![iri("b"), int(2)]],
        );
        let right = set(
            &["x", "z"],
            vec![vec![iri("a"), int(10)], vec![iri("c"), int(30)]],
        );
        let joined = left.join(&right);
        assert_eq!(joined.vars, vec!["x", "y", "z"]);
        assert_eq!(joined.rows, vec![vec![iri("a"), int(1), int(10)]]);
    }

    #[test]
    fn cross_product_without_shared_vars() {
        let left = set(&["x"], vec![vec![iri("a")], vec![iri("b")]]);
        let right = set(&["y"], vec![vec![int(1)], vec![int(2)]]);
        assert_eq!(left.join(&right).len(), 4);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let left = set(&["x"], vec![vec![iri("a")], vec![iri("b")]]);
        let right = set(&["x", "z"], vec![vec![iri("a"), int(10)]]);
        let joined = left.left_join(&right);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.rows[1], vec![iri("b"), None]);
    }

    #[test]
    fn union_aligns_columns() {
        let a = set(&["x"], vec![vec![iri("a")]]);
        let b = set(&["y"], vec![vec![int(1)]]);
        let u = a.union(b);
        assert_eq!(u.vars, vec!["x", "y"]);
        assert_eq!(u.rows, vec![vec![iri("a"), None], vec![None, int(1)]]);
    }

    #[test]
    fn filter_numeric_comparison() {
        let s = set(&["v"], vec![vec![int(5)], vec![int(15)]]);
        let kept = s.filter(&Expression::Compare(
            ComparisonOperator::Gt,
            Box::new(Expression::Var("v".into())),
            Box::new(Expression::Const(Term::Literal(Literal::integer(10)))),
        ));
        assert_eq!(kept.rows, vec![vec![int(15)]]);
    }

    #[test]
    fn filter_drops_error_rows() {
        // Comparing an unbound value is an error → row dropped.
        let s = set(&["v"], vec![vec![None], vec![int(1)]]);
        let kept = s.filter(&Expression::Compare(
            ComparisonOperator::Ge,
            Box::new(Expression::Var("v".into())),
            Box::new(Expression::Const(Term::Literal(Literal::integer(0)))),
        ));
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn bound_sees_unbound() {
        let s = set(&["v"], vec![vec![None], vec![int(1)]]);
        let kept = s.filter(&Expression::Not(Box::new(Expression::Bound("v".into()))));
        assert_eq!(kept.rows, vec![vec![None]]);
    }

    #[test]
    fn regex_lite_modes() {
        assert!(regex_lite("SGT-400", "SGT", false));
        assert!(regex_lite("SGT-400", "^SGT", false));
        assert!(!regex_lite("XSGT-400", "^SGT", false));
        assert!(regex_lite("SGT-400", "400$", false));
        assert!(!regex_lite("SGT-400x", "400$", false));
        assert!(regex_lite("SGT-400", "sgt", true));
        assert!(!regex_lite("SGT-400", "sgt", false));
        assert!(regex_lite("alpha-beta-gamma", "^alpha.*gamma$", false));
        assert!(!regex_lite("alpha-beta", "^alpha.*gamma$", false));
        // `$` after a trailing `.*` gap is satisfied by any suffix.
        assert!(regex_lite("SGT-400", "^SGT.*$", false));
        assert!(regex_lite("SGT", "^SGT.*$", false));
        assert!(!regex_lite("XGT-400", "^SGT.*$", false));
        // `^$` only matches the empty string; bare `.*` matches anything.
        assert!(regex_lite("", "^$", false));
        assert!(!regex_lite("x", "^$", false));
        assert!(regex_lite("anything", ".*", false));
    }

    #[test]
    fn order_by_numeric_then_slice() {
        let mut s = set(&["v"], vec![vec![int(30)], vec![int(10)], vec![int(20)]]);
        s.order_by(&[(Expression::Var("v".into()), false)]);
        assert_eq!(s.rows, vec![vec![int(10)], vec![int(20)], vec![int(30)]]);
        s.slice(Some(1), Some(1));
        assert_eq!(s.rows, vec![vec![int(20)]]);
    }

    #[test]
    fn aggregate_count_and_avg() {
        let s = set(
            &["g", "v"],
            vec![
                vec![iri("a"), int(1)],
                vec![iri("a"), int(3)],
                vec![iri("b"), int(10)],
            ],
        );
        let out = aggregate(
            &s,
            &["g".to_string()],
            &[
                SelectItem::Var("g".into()),
                SelectItem::Aggregate {
                    func: AggregateFunction::Count,
                    distinct: false,
                    var: None,
                    alias: "n".into(),
                },
                SelectItem::Aggregate {
                    func: AggregateFunction::Avg,
                    distinct: false,
                    var: Some("v".into()),
                    alias: "mean".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(out.vars, vec!["g", "n", "mean"]);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][1], int(2));
        assert_eq!(out.rows[0][2], Some(Term::Literal(Literal::double(2.0))));
        assert_eq!(out.rows[1][1], int(1));
    }

    #[test]
    fn grand_aggregate_over_empty_input() {
        let s = set(&["v"], vec![]);
        let out = aggregate(
            &s,
            &[],
            &[SelectItem::Aggregate {
                func: AggregateFunction::Count,
                distinct: false,
                var: None,
                alias: "n".into(),
            }],
        )
        .unwrap();
        assert_eq!(out.rows, vec![vec![int(0)]]);
    }

    #[test]
    fn projecting_an_unaggregated_var_errors() {
        let s = set(&["g", "v"], vec![]);
        assert!(aggregate(&s, &[], &[SelectItem::Var("g".into())],).is_err());
    }
}
