//! The static OBDA pipeline: BGP → PerfectRef rewrite → mapping unfolding →
//! SQL execution → residual-algebra evaluation.
//!
//! Each basic graph pattern becomes one `optique_rewrite::ConjunctiveQuery`
//! whose answer variables are the BGP's variables. The CQ is enriched
//! against the deployment TBox (PerfectRef), unfolded through the mapping
//! catalog into one `UNION ALL` SQL statement, and executed on the
//! relational engine. Everything the SQL cannot express — joins across
//! `OPTIONAL`/`UNION` branches, `FILTER`s, modifiers, aggregates — runs
//! over [`SolutionSet`]s in [`crate::eval`].

use std::time::Instant;

use optique_mapping::{unfold_ucq, MappingCatalog, UnfoldSettings};
use optique_ontology::Ontology;
use optique_rdf::{Literal, Term};
use optique_relational::{Database, Value};
use optique_rewrite::{rewrite, Atom, ConjunctiveQuery, QueryTerm, RewriteSettings};

use crate::algebra::{GroupPattern, PatternElement, Projection, Query, SelectItem, SelectQuery};
use crate::error::SparqlError;
use crate::eval::{aggregate, SolutionSet};
use crate::results::SparqlResults;

/// Everything query answering needs from a deployment.
pub struct StaticPipeline<'a> {
    /// The TBox used for enrichment.
    pub ontology: &'a Ontology,
    /// The mapping catalog over the static sources.
    pub mappings: &'a MappingCatalog,
    /// The data sources.
    pub db: &'a Database,
    /// Enrichment knobs.
    pub rewrite_settings: RewriteSettings,
    /// Unfolding knobs.
    pub unfold_settings: UnfoldSettings,
}

/// Per-query observability, surfaced on the platform dashboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Basic graph patterns evaluated.
    pub bgps: usize,
    /// Total UCQ disjuncts after enrichment.
    pub ucq_disjuncts: usize,
    /// Total SQL disjuncts emitted by unfolding.
    pub sql_disjuncts: usize,
    /// Microseconds spent in PerfectRef.
    pub rewrite_micros: u64,
    /// Microseconds spent unfolding.
    pub unfold_micros: u64,
    /// Microseconds spent executing SQL.
    pub exec_micros: u64,
    /// Rows in the final result.
    pub rows: usize,
}

impl<'a> StaticPipeline<'a> {
    /// Answers a parsed query.
    pub fn answer(&self, query: &Query) -> Result<(SparqlResults, PipelineStats), SparqlError> {
        let mut stats = PipelineStats::default();
        match query {
            Query::Ask(ask) => {
                let solutions = self.eval_group(&ask.pattern, &mut stats)?;
                let truth = !solutions.is_empty();
                stats.rows = usize::from(truth);
                Ok((SparqlResults::Boolean(truth), stats))
            }
            Query::Select(select) => {
                let solutions = self.eval_group(&select.pattern, &mut stats)?;
                let result = self.finish_select(select, solutions)?;
                stats.rows = result.len();
                Ok((SparqlResults::Solutions(result), stats))
            }
        }
    }

    fn finish_select(
        &self,
        select: &SelectQuery,
        mut solutions: SolutionSet,
    ) -> Result<SolutionSet, SparqlError> {
        let has_aggregates = !select.group_by.is_empty()
            || matches!(&select.projection, Projection::Items(items)
                if items.iter().any(|i| matches!(i, SelectItem::Aggregate { .. })));

        if has_aggregates {
            let Projection::Items(items) = &select.projection else {
                return Err(SparqlError::execution(
                    "SELECT * cannot be combined with aggregates or GROUP BY",
                ));
            };
            let mut out = aggregate(&solutions, &select.group_by, items)?;
            out.order_by(&select.modifiers.order_by);
            if select.distinct {
                out.distinct();
            }
            out.slice(select.modifiers.offset, select.modifiers.limit);
            return Ok(out);
        }

        // Order over the full solution (ORDER BY may use unprojected vars),
        // then project, dedup, slice.
        solutions.order_by(&select.modifiers.order_by);
        let names: Vec<String> = match &select.projection {
            Projection::All => select.pattern.variables(),
            Projection::Items(items) => items.iter().map(|i| i.name().to_string()).collect(),
        };
        let mut out = solutions.project(&names);
        if select.distinct {
            out.distinct();
        }
        out.slice(select.modifiers.offset, select.modifiers.limit);
        Ok(out)
    }

    fn eval_group(
        &self,
        group: &GroupPattern,
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        let mut current = SolutionSet::unit();
        let mut filters = Vec::new();
        for element in &group.elements {
            match element {
                PatternElement::Triples(atoms) => {
                    let bgp = self.eval_bgp(atoms, stats)?;
                    current = current.join(&bgp);
                }
                PatternElement::SubGroup(inner) => {
                    let sub = self.eval_group(inner, stats)?;
                    current = current.join(&sub);
                }
                PatternElement::Optional(inner) => {
                    let sub = self.eval_group(inner, stats)?;
                    current = current.left_join(&sub);
                }
                PatternElement::Union(branches) => {
                    let mut united = SolutionSet::empty();
                    for branch in branches {
                        united = united.union(self.eval_group(branch, stats)?);
                    }
                    current = current.join(&united);
                }
                PatternElement::Filter(expr) => filters.push(expr),
            }
        }
        // FILTERs scope over the whole group.
        for expr in filters {
            current = current.filter(expr);
        }
        Ok(current)
    }

    /// One BGP through rewrite → unfold → SQL execution.
    fn eval_bgp(
        &self,
        atoms: &[Atom],
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        stats.bgps += 1;
        if atoms.is_empty() {
            return Ok(SolutionSet::unit());
        }
        let vars = bgp_variables(atoms);
        let cq = ConjunctiveQuery::new(vars.clone(), atoms.to_vec());

        let started = Instant::now();
        let (ucq, _) = rewrite(&cq, self.ontology, &self.rewrite_settings)
            .map_err(|e| SparqlError::execution(format!("enrichment failed: {e}")))?;
        stats.rewrite_micros += started.elapsed().as_micros() as u64;
        stats.ucq_disjuncts += ucq.len();

        let started = Instant::now();
        let (sql, unfold_stats) = unfold_ucq(&ucq, self.mappings, &self.unfold_settings)
            .map_err(|e| SparqlError::execution(format!("unfolding failed: {e}")))?;
        stats.unfold_micros += started.elapsed().as_micros() as u64;
        stats.sql_disjuncts += unfold_stats.emitted;

        let Some(statement) = sql else {
            // Some term has no mapping: the BGP is empty over the sources.
            return Ok(SolutionSet {
                vars,
                rows: Vec::new(),
            });
        };

        let started = Instant::now();
        let table = optique_relational::exec::query(&statement.to_string(), self.db)
            .map_err(|e| SparqlError::execution(format!("SQL execution failed: {e}")))?;
        stats.exec_micros += started.elapsed().as_micros() as u64;

        if vars.is_empty() {
            // Constant-only BGP: satisfiable iff any row came back.
            return Ok(if table.is_empty() {
                SolutionSet::empty()
            } else {
                SolutionSet::unit()
            });
        }
        // Certain-answer semantics: a UCQ's answers are the *set* union of
        // its disjuncts' answers, so duplicates across `UNION ALL` branches
        // (one sensor reachable through several mappings) collapse here.
        let mut solutions = SolutionSet {
            vars,
            rows: table
                .rows
                .iter()
                .map(|row| row.iter().map(value_to_term).collect())
                .collect(),
        };
        solutions.distinct();
        Ok(solutions)
    }
}

/// Variables of a BGP in first-seen order — the CQ's answer signature.
fn bgp_variables(atoms: &[Atom]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for atom in atoms {
        for term in atom.terms() {
            if let QueryTerm::Var(v) = term {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
        }
    }
    out
}

/// Lifts a SQL value back into an RDF term. Mapping templates mint IRIs as
/// text, so text that looks like an IRI becomes one (the same convention
/// the unfolding oracle tests use); everything else stays a typed literal.
pub fn value_to_term(value: &Value) -> Option<Term> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(Term::Literal(Literal::integer(*i))),
        Value::Float(f) => Some(Term::Literal(Literal::double(*f))),
        Value::Bool(b) => Some(Term::Literal(Literal::boolean(*b))),
        Value::Timestamp(t) => Some(Term::Literal(Literal::datetime_millis(*t))),
        Value::Text(s) => {
            if s.contains("://") || s.starts_with("urn:") {
                Some(Term::iri(s.as_ref()))
            } else {
                Some(Term::Literal(Literal::string(s.as_ref())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_mapping::{MappingAssertion, TermMap};
    use optique_ontology::{Axiom, BasicConcept};
    use optique_rdf::{Datatype, Iri, Namespaces};
    use optique_relational::{table::table_of, ColumnType};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn ns() -> Namespaces {
        let mut ns = Namespaces::with_w3c_defaults();
        ns.bind("x", "http://x/");
        ns
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[
                    ("tid", ColumnType::Int),
                    ("model", ColumnType::Text),
                    ("kind", ColumnType::Text),
                ],
                vec![
                    vec![Value::Int(1), Value::text("SGT-400"), Value::text("gas")],
                    vec![Value::Int(2), Value::text("SGT-800"), Value::text("gas")],
                    vec![Value::Int(3), Value::text("SST-600"), Value::text("steam")],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                vec![
                    vec![Value::Int(10), Value::Int(1)],
                    vec![Value::Int(11), Value::Int(1)],
                    vec![Value::Int(12), Value::Int(2)],
                ],
            )
            .unwrap(),
        );
        db
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(
            BasicConcept::atomic(iri("GasTurbine")),
            BasicConcept::atomic(iri("Turbine")),
        ));
        o.declare_data_property(iri("hasModel"));
        o
    }

    fn catalog() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(
            MappingAssertion::class(
                "gas",
                iri("GasTurbine"),
                "SELECT tid FROM turbines WHERE kind = 'gas'",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::class(
                "steam",
                iri("Turbine"),
                "SELECT tid FROM turbines WHERE kind = 'steam'",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "model",
                iri("hasModel"),
                "SELECT tid, model FROM turbines",
                TermMap::template("http://x/turbine/{tid}"),
                TermMap::column("model", Datatype::String),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "attached",
                iri("attachedTo"),
                "SELECT sid, tid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["sid".into(), "tid".into()]),
        )
        .unwrap();
        c
    }

    fn answer(text: &str) -> (SparqlResults, PipelineStats) {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let pipeline = StaticPipeline {
            ontology: &onto,
            mappings: &maps,
            db: &db,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        let query = crate::parse_sparql(text, &ns()).unwrap();
        pipeline.answer(&query).unwrap()
    }

    #[test]
    fn rewriting_reaches_subclasses() {
        // Turbine(x): the direct mapping only covers steam turbines;
        // PerfectRef adds GasTurbine ⊑ Turbine, reaching all three.
        let (r, stats) = answer("SELECT ?t WHERE { ?t a x:Turbine }");
        assert_eq!(r.len(), 3);
        assert!(stats.ucq_disjuncts >= 2, "enrichment added a disjunct");
    }

    #[test]
    fn join_filter_order_limit() {
        let (r, _) = answer(
            "SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m . \
             FILTER(REGEX(?m, \"^SGT\")) } ORDER BY DESC(?m) LIMIT 1",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "m"),
            Some(Term::Literal(Literal::string("SGT-800")))
        );
    }

    #[test]
    fn optional_binds_where_present() {
        // Sensors are attached to turbines 1 and 2; turbine 3 has none.
        let (r, _) = answer(
            "SELECT ?t ?s WHERE { ?t a x:Turbine . \
             OPTIONAL { ?s x:attachedTo ?t } } ORDER BY ?t",
        );
        assert_eq!(r.len(), 4, "3 attachments + 1 bare turbine");
        let unbound = r.rows().iter().filter(|row| row[1].is_none()).count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn union_merges_branches() {
        let (r, _) =
            answer("SELECT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }");
        // 2 gas turbines + 3 attachment targets (turbines 1, 1, 2).
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn distinct_dedups() {
        let (r, _) = answer(
            "SELECT DISTINCT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }",
        );
        assert_eq!(r.len(), 2, "turbines 1 and 2");
    }

    #[test]
    fn aggregates_group_and_count() {
        let (r, _) = answer(
            "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s x:attachedTo ?t } \
             GROUP BY ?t ORDER BY DESC(?n)",
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "n"), Some(Term::Literal(Literal::integer(2))));
    }

    #[test]
    fn ask_true_and_false() {
        let (r, _) = answer("ASK { ?s x:attachedTo <http://x/turbine/1> }");
        assert_eq!(r.as_bool(), Some(true));
        let (r, _) = answer("ASK { ?s x:attachedTo <http://x/turbine/3> }");
        assert_eq!(r.as_bool(), Some(false));
    }

    #[test]
    fn unmapped_class_is_empty_not_an_error() {
        let (r, _) = answer("SELECT ?x WHERE { ?x a x:Unmapped }");
        assert!(r.is_empty());
    }

    #[test]
    fn stats_track_pipeline_stages() {
        let (_, stats) = answer("SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m }");
        assert_eq!(stats.bgps, 1);
        assert!(stats.sql_disjuncts >= 2);
        assert!(stats.rows > 0);
    }
}
