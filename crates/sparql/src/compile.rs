//! The static OBDA pipeline: BGP → PerfectRef rewrite → mapping unfolding →
//! SQL execution → residual-algebra evaluation.
//!
//! Each basic graph pattern becomes one `optique_rewrite::ConjunctiveQuery`
//! whose answer variables are the BGP's variables. The CQ is enriched
//! against the deployment TBox (PerfectRef), unfolded through the mapping
//! catalog into one `UNION ALL` SQL statement, and executed on the
//! relational engine. Everything the SQL cannot express — joins across
//! `OPTIONAL`/`UNION` branches, `FILTER`s, modifiers, aggregates — runs
//! over [`SolutionSet`]s in [`crate::eval`].
//!
//! Execution of the unfolded SQL has two backends:
//!
//! * **single-node** (the default): the whole `UNION ALL` chain runs on the
//!   pipeline's [`Database`];
//! * **federated**: a [`FragmentExecutor`] receives one [`PlanFragment`]
//!   per unfolded disjunct ([`split_union_chain`]) and executes them on a
//!   worker pool (ExaStream, in `optique`'s wiring); the per-fragment
//!   tables merge back into one solution set in
//!   [`crate::eval::solutions_from_tables`]. Both backends produce the same
//!   certain-answer *set*, which the federation equivalence suite asserts.
//!
//! A [`BgpCache`] can be attached to memoize whole-BGP solution sets across
//! `OPTIONAL`/`UNION` branches and across queries.

use std::time::Instant;

use optique_mapping::{unfold_ucq, MappingCatalog, UnfoldSettings};
use optique_ontology::Ontology;
use optique_rdf::{Literal, Term};
use optique_relational::parser::SelectStatement;
use optique_relational::{expr::BinOp, expr::UnaryOp, Database, Expr, PlanFragment, Table, Value};
use optique_rewrite::{rewrite, Atom, ConjunctiveQuery, QueryTerm, RewriteSettings};

use crate::algebra::{
    ArithmeticOperator, ComparisonOperator, Expression, GroupPattern, PatternElement, Projection,
    Query, SelectItem, SelectQuery,
};
use crate::cache::BgpCache;
use crate::error::SparqlError;
use crate::eval::{aggregate, solutions_from_tables, SolutionSet};
use crate::results::SparqlResults;

/// A distributed backend for unfolded-SQL execution: takes one
/// [`PlanFragment`] per disjunct, returns one result table per fragment, in
/// order. Implementations ship fragments to workers however they like (the
/// platform's implementation rides ExaStream's gateway/scheduler/exchange).
pub trait FragmentExecutor: Sync {
    /// Executes the fragments of one BGP round.
    fn execute(&self, fragments: Vec<PlanFragment>) -> Result<Vec<Table>, String>;

    /// How many workers back this executor (observability only).
    fn workers(&self) -> usize {
        1
    }
}

/// Everything query answering needs from a deployment.
pub struct StaticPipeline<'a> {
    /// The TBox used for enrichment.
    pub ontology: &'a Ontology,
    /// The mapping catalog over the static sources.
    pub mappings: &'a MappingCatalog,
    /// The data sources.
    pub db: &'a Database,
    /// Enrichment knobs.
    pub rewrite_settings: RewriteSettings,
    /// Unfolding knobs.
    pub unfold_settings: UnfoldSettings,
    /// Distributed execution backend; `None` runs single-node on [`Self::db`].
    pub executor: Option<&'a dyn FragmentExecutor>,
    /// Per-BGP solution-set cache; `None` disables caching.
    pub cache: Option<&'a BgpCache>,
    /// Cache generation this pipeline's database snapshot belongs to;
    /// stores are dropped if the cache has been invalidated since. Callers
    /// that snapshot a mutable database must capture this **before** the
    /// snapshot (see [`Self::with_cache_at`]).
    pub cache_generation: u64,
}

/// Per-query observability, surfaced on the platform dashboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Basic graph patterns evaluated.
    pub bgps: usize,
    /// Total UCQ disjuncts after enrichment.
    pub ucq_disjuncts: usize,
    /// Total SQL disjuncts emitted by unfolding.
    pub sql_disjuncts: usize,
    /// Microseconds spent in PerfectRef.
    pub rewrite_micros: u64,
    /// Microseconds spent unfolding.
    pub unfold_micros: u64,
    /// Microseconds spent executing SQL.
    pub exec_micros: u64,
    /// Rows in the final result.
    pub rows: usize,
    /// BGPs answered from the [`BgpCache`].
    pub cache_hits: usize,
    /// BGPs that went through the full pipeline (cache attached but cold).
    pub cache_misses: usize,
    /// Plan fragments shipped to the distributed executor.
    pub fragments: usize,
}

impl<'a> StaticPipeline<'a> {
    /// A single-node, cache-less pipeline with default settings.
    pub fn new(ontology: &'a Ontology, mappings: &'a MappingCatalog, db: &'a Database) -> Self {
        StaticPipeline {
            ontology,
            mappings,
            db,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
            executor: None,
            cache: None,
            cache_generation: 0,
        }
    }

    /// Routes unfolded SQL through a distributed executor.
    pub fn with_executor(mut self, executor: &'a dyn FragmentExecutor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Attaches a per-BGP solution-set cache, capturing its current
    /// generation. Correct when the pipeline's database cannot change
    /// underneath it; if the database is a snapshot of mutable state, use
    /// [`Self::with_cache_at`] with a generation captured before the
    /// snapshot was taken.
    pub fn with_cache(self, cache: &'a BgpCache) -> Self {
        let generation = cache.generation();
        self.with_cache_at(cache, generation)
    }

    /// Attaches a per-BGP cache with an explicitly captured generation.
    /// Capturing the generation *before* snapshotting the database closes
    /// the race where a write lands between the two: either the snapshot is
    /// fresh (stores fine) or the store's generation is stale (dropped).
    pub fn with_cache_at(mut self, cache: &'a BgpCache, generation: u64) -> Self {
        self.cache = Some(cache);
        self.cache_generation = generation;
        self
    }

    /// Answers a parsed query.
    pub fn answer(&self, query: &Query) -> Result<(SparqlResults, PipelineStats), SparqlError> {
        let mut stats = PipelineStats::default();
        match query {
            Query::Ask(ask) => {
                let solutions = self.eval_group(&ask.pattern, &mut stats)?;
                let truth = !solutions.is_empty();
                stats.rows = usize::from(truth);
                Ok((SparqlResults::Boolean(truth), stats))
            }
            Query::Select(select) => {
                let solutions = self.eval_group(&select.pattern, &mut stats)?;
                let result = self.finish_select(select, solutions)?;
                stats.rows = result.len();
                Ok((SparqlResults::Solutions(result), stats))
            }
        }
    }

    fn finish_select(
        &self,
        select: &SelectQuery,
        mut solutions: SolutionSet,
    ) -> Result<SolutionSet, SparqlError> {
        let has_aggregates = !select.group_by.is_empty()
            || matches!(&select.projection, Projection::Items(items)
                if items.iter().any(|i| matches!(i, SelectItem::Aggregate { .. })));

        if has_aggregates {
            let Projection::Items(items) = &select.projection else {
                return Err(SparqlError::execution(
                    "SELECT * cannot be combined with aggregates or GROUP BY",
                ));
            };
            let mut out = aggregate(&solutions, &select.group_by, items)?;
            out.order_by(&select.modifiers.order_by);
            if select.distinct {
                out.distinct();
            }
            out.slice(select.modifiers.offset, select.modifiers.limit);
            return Ok(out);
        }

        // Order over the full solution (ORDER BY may use unprojected vars),
        // then project, dedup, slice.
        solutions.order_by(&select.modifiers.order_by);
        let names: Vec<String> = match &select.projection {
            Projection::All => select.pattern.variables(),
            Projection::Items(items) => items.iter().map(|i| i.name().to_string()).collect(),
        };
        let mut out = solutions.project(&names);
        if select.distinct {
            out.distinct();
        }
        out.slice(select.modifiers.offset, select.modifiers.limit);
        Ok(out)
    }

    fn eval_group(
        &self,
        group: &GroupPattern,
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        let mut current = SolutionSet::unit();
        let mut filters = Vec::new();
        for element in &group.elements {
            match element {
                PatternElement::Triples(atoms) => {
                    let bgp = self.eval_bgp(atoms, stats)?;
                    current = current.join(&bgp);
                }
                PatternElement::SubGroup(inner) => {
                    let sub = self.eval_group(inner, stats)?;
                    current = current.join(&sub);
                }
                PatternElement::Optional(inner) => {
                    let sub = self.eval_group(inner, stats)?;
                    current = current.left_join(&sub);
                }
                PatternElement::Union(branches) => {
                    let mut united = SolutionSet::empty();
                    for branch in branches {
                        united = united.union(self.eval_group(branch, stats)?);
                    }
                    current = current.join(&united);
                }
                PatternElement::Filter(expr) => filters.push(expr),
            }
        }
        // FILTERs scope over the whole group.
        for expr in filters {
            current = current.filter(expr);
        }
        Ok(current)
    }

    /// One BGP through cache lookup → rewrite → unfold → SQL execution
    /// (single-node or federated).
    fn eval_bgp(
        &self,
        atoms: &[Atom],
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        stats.bgps += 1;
        if atoms.is_empty() {
            return Ok(SolutionSet::unit());
        }
        let key = self.cache.map(|_| BgpCache::key(atoms));
        if let (Some(cache), Some(key)) = (self.cache, key.as_deref()) {
            if let Some(cached) = cache.lookup(key) {
                stats.cache_hits += 1;
                return Ok(cached);
            }
            stats.cache_misses += 1;
        }

        let vars = bgp_variables(atoms);
        let cq = ConjunctiveQuery::new(vars.clone(), atoms.to_vec());

        let started = Instant::now();
        let (ucq, _) = rewrite(&cq, self.ontology, &self.rewrite_settings)
            .map_err(|e| SparqlError::execution(format!("enrichment failed: {e}")))?;
        stats.rewrite_micros += started.elapsed().as_micros() as u64;
        stats.ucq_disjuncts += ucq.len();

        let started = Instant::now();
        let (sql, unfold_stats) = unfold_ucq(&ucq, self.mappings, &self.unfold_settings)
            .map_err(|e| SparqlError::execution(format!("unfolding failed: {e}")))?;
        stats.unfold_micros += started.elapsed().as_micros() as u64;
        stats.sql_disjuncts += unfold_stats.emitted;

        let solutions = match sql {
            // Some term has no mapping: the BGP is empty over the sources.
            None => SolutionSet {
                vars,
                rows: Vec::new(),
            },
            Some(statement) => {
                let started = Instant::now();
                let tables = self.execute_statement(statement, stats)?;
                stats.exec_micros += started.elapsed().as_micros() as u64;

                if vars.is_empty() {
                    // Constant-only BGP: satisfiable iff any row came back.
                    if tables.iter().any(|t| !t.is_empty()) {
                        SolutionSet::unit()
                    } else {
                        SolutionSet::empty()
                    }
                } else {
                    // Certain-answer semantics: a UCQ's answers are the *set*
                    // union of its disjuncts' answers, so duplicates across
                    // `UNION ALL` branches / fragments (one sensor reachable
                    // through several mappings) collapse in the merge.
                    solutions_from_tables(vars, tables)
                }
            }
        };

        if let (Some(cache), Some(key)) = (self.cache, key) {
            // `cache_generation` was captured before the database snapshot:
            // a write that landed since then makes this store a no-op
            // instead of repopulating the cache with stale answers.
            cache.store(key, solutions.clone(), self.cache_generation);
        }
        Ok(solutions)
    }

    /// Runs one unfolded `UNION ALL` statement: on the distributed executor
    /// as per-disjunct fragments when one is attached, on the local engine
    /// otherwise. Returns the result tables to merge.
    fn execute_statement(
        &self,
        statement: SelectStatement,
        stats: &mut PipelineStats,
    ) -> Result<Vec<Table>, SparqlError> {
        match self.executor {
            Some(executor) => {
                let fragments: Vec<PlanFragment> = split_union_chain(statement)
                    .into_iter()
                    .enumerate()
                    .map(|(i, stmt)| {
                        // Cost estimate: FROM item count (join width drives
                        // disjunct cost far more than anything else we can
                        // see statically).
                        let cost = (stmt.joins.len() + 1) as f64;
                        PlanFragment::new(i as u64, stmt.to_string(), cost)
                    })
                    .collect();
                stats.fragments += fragments.len();
                executor
                    .execute(fragments)
                    .map_err(|e| SparqlError::execution(format!("federated execution failed: {e}")))
            }
            None => {
                let table = optique_relational::exec::query(&statement.to_string(), self.db)
                    .map_err(|e| SparqlError::execution(format!("SQL execution failed: {e}")))?;
                Ok(vec![table])
            }
        }
    }
}

/// Splits an unfolded `UNION ALL` chain into its disjunct statements — the
/// inverse of the unfolder's chaining, and the unit of federated execution.
pub fn split_union_chain(statement: SelectStatement) -> Vec<SelectStatement> {
    let mut out = Vec::new();
    let mut cursor = Some(statement);
    while let Some(mut stmt) = cursor {
        cursor = stmt.union_all.take().map(|next| *next);
        out.push(stmt);
    }
    out
}

/// Translates a SPARQL `FILTER` expression into a relational [`Expr`] over
/// SQL columns. `lookup` maps a SPARQL variable to the SQL expression that
/// produces it (typically a projection of the unfolded statement). Only the
/// SQL-expressible fragment translates: comparisons, `&&`/`||`/`!`,
/// arithmetic, variables and constants. `REGEX`/`BOUND` (and anything else
/// engine-specific) is rejected — those stay in the residual algebra.
pub fn expression_to_sql(
    expr: &Expression,
    lookup: &dyn Fn(&str) -> Option<Expr>,
) -> Result<Expr, String> {
    match expr {
        Expression::Var(v) => {
            lookup(v).ok_or_else(|| format!("?{v} has no SQL column in this statement"))
        }
        Expression::Const(term) => Ok(Expr::Literal(term_to_value(term))),
        Expression::And(a, b) => Ok(Expr::binary(
            BinOp::And,
            expression_to_sql(a, lookup)?,
            expression_to_sql(b, lookup)?,
        )),
        Expression::Or(a, b) => Ok(Expr::binary(
            BinOp::Or,
            expression_to_sql(a, lookup)?,
            expression_to_sql(b, lookup)?,
        )),
        Expression::Not(a) => Ok(Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(expression_to_sql(a, lookup)?),
        }),
        Expression::Compare(op, a, b) => {
            let op = match op {
                ComparisonOperator::Eq => BinOp::Eq,
                ComparisonOperator::Ne => BinOp::Ne,
                ComparisonOperator::Lt => BinOp::Lt,
                ComparisonOperator::Le => BinOp::Le,
                ComparisonOperator::Gt => BinOp::Gt,
                ComparisonOperator::Ge => BinOp::Ge,
            };
            Ok(Expr::binary(
                op,
                expression_to_sql(a, lookup)?,
                expression_to_sql(b, lookup)?,
            ))
        }
        Expression::Arithmetic(op, a, b) => {
            let op = match op {
                ArithmeticOperator::Add => BinOp::Add,
                ArithmeticOperator::Sub => BinOp::Sub,
                ArithmeticOperator::Mul => BinOp::Mul,
                ArithmeticOperator::Div => BinOp::Div,
            };
            Ok(Expr::binary(
                op,
                expression_to_sql(a, lookup)?,
                expression_to_sql(b, lookup)?,
            ))
        }
        Expression::Regex { .. } => Err("FILTER REGEX has no SQL translation".into()),
        Expression::Bound(_) => Err("FILTER BOUND has no SQL translation".into()),
    }
}

/// Lowers a constant RDF term to a SQL value (IRIs travel as their text,
/// matching how mapping templates mint them).
fn term_to_value(term: &Term) -> Value {
    match term {
        Term::Iri(iri) => Value::text(iri.as_str()),
        Term::BNode(id) => Value::text(format!("_:b{id}")),
        Term::Literal(lit) => {
            if let Some(b) = lit.as_bool() {
                Value::Bool(b)
            } else if let Some(i) = lit.as_i64() {
                Value::Int(i)
            } else if let Some(f) = lit.as_f64() {
                Value::Float(f)
            } else {
                Value::text(lit.lexical())
            }
        }
    }
}

/// Variables of a BGP in first-seen order — the CQ's answer signature.
fn bgp_variables(atoms: &[Atom]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for atom in atoms {
        for term in atom.terms() {
            if let QueryTerm::Var(v) = term {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
        }
    }
    out
}

/// Lifts a SQL value back into an RDF term. Mapping templates mint IRIs as
/// text, so text that looks like an IRI becomes one (the same convention
/// the unfolding oracle tests use); everything else stays a typed literal.
pub fn value_to_term(value: &Value) -> Option<Term> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(Term::Literal(Literal::integer(*i))),
        Value::Float(f) => Some(Term::Literal(Literal::double(*f))),
        Value::Bool(b) => Some(Term::Literal(Literal::boolean(*b))),
        Value::Timestamp(t) => Some(Term::Literal(Literal::datetime_millis(*t))),
        Value::Text(s) => {
            if s.contains("://") || s.starts_with("urn:") {
                Some(Term::iri(s.as_ref()))
            } else {
                Some(Term::Literal(Literal::string(s.as_ref())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_mapping::{MappingAssertion, TermMap};
    use optique_ontology::{Axiom, BasicConcept};
    use optique_rdf::{Datatype, Iri, Namespaces};
    use optique_relational::{table::table_of, ColumnType};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn ns() -> Namespaces {
        let mut ns = Namespaces::with_w3c_defaults();
        ns.bind("x", "http://x/");
        ns
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[
                    ("tid", ColumnType::Int),
                    ("model", ColumnType::Text),
                    ("kind", ColumnType::Text),
                ],
                vec![
                    vec![Value::Int(1), Value::text("SGT-400"), Value::text("gas")],
                    vec![Value::Int(2), Value::text("SGT-800"), Value::text("gas")],
                    vec![Value::Int(3), Value::text("SST-600"), Value::text("steam")],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                vec![
                    vec![Value::Int(10), Value::Int(1)],
                    vec![Value::Int(11), Value::Int(1)],
                    vec![Value::Int(12), Value::Int(2)],
                ],
            )
            .unwrap(),
        );
        db
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(
            BasicConcept::atomic(iri("GasTurbine")),
            BasicConcept::atomic(iri("Turbine")),
        ));
        o.declare_data_property(iri("hasModel"));
        o
    }

    fn catalog() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(
            MappingAssertion::class(
                "gas",
                iri("GasTurbine"),
                "SELECT tid FROM turbines WHERE kind = 'gas'",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::class(
                "steam",
                iri("Turbine"),
                "SELECT tid FROM turbines WHERE kind = 'steam'",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "model",
                iri("hasModel"),
                "SELECT tid, model FROM turbines",
                TermMap::template("http://x/turbine/{tid}"),
                TermMap::column("model", Datatype::String),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "attached",
                iri("attachedTo"),
                "SELECT sid, tid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["sid".into(), "tid".into()]),
        )
        .unwrap();
        c
    }

    fn answer(text: &str) -> (SparqlResults, PipelineStats) {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let pipeline = StaticPipeline::new(&onto, &maps, &db);
        let query = crate::parse_sparql(text, &ns()).unwrap();
        pipeline.answer(&query).unwrap()
    }

    /// A loopback fragment executor: runs every fragment on the local
    /// database, after a full wire round trip of the fragment text —
    /// exactly what a worker pool does, minus the threads.
    struct Loopback {
        db: Database,
    }

    impl FragmentExecutor for Loopback {
        fn execute(&self, fragments: Vec<PlanFragment>) -> Result<Vec<Table>, String> {
            fragments
                .into_iter()
                .map(|f| {
                    let decoded = PlanFragment::decode(&f.encode()).map_err(|e| e.to_string())?;
                    optique_relational::exec::query(&decoded.sql, &self.db)
                        .map_err(|e| e.to_string())
                })
                .collect()
        }
    }

    #[test]
    fn rewriting_reaches_subclasses() {
        // Turbine(x): the direct mapping only covers steam turbines;
        // PerfectRef adds GasTurbine ⊑ Turbine, reaching all three.
        let (r, stats) = answer("SELECT ?t WHERE { ?t a x:Turbine }");
        assert_eq!(r.len(), 3);
        assert!(stats.ucq_disjuncts >= 2, "enrichment added a disjunct");
    }

    #[test]
    fn join_filter_order_limit() {
        let (r, _) = answer(
            "SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m . \
             FILTER(REGEX(?m, \"^SGT\")) } ORDER BY DESC(?m) LIMIT 1",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "m"),
            Some(Term::Literal(Literal::string("SGT-800")))
        );
    }

    #[test]
    fn optional_binds_where_present() {
        // Sensors are attached to turbines 1 and 2; turbine 3 has none.
        let (r, _) = answer(
            "SELECT ?t ?s WHERE { ?t a x:Turbine . \
             OPTIONAL { ?s x:attachedTo ?t } } ORDER BY ?t",
        );
        assert_eq!(r.len(), 4, "3 attachments + 1 bare turbine");
        let unbound = r.rows().iter().filter(|row| row[1].is_none()).count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn union_merges_branches() {
        let (r, _) =
            answer("SELECT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }");
        // 2 gas turbines + 3 attachment targets (turbines 1, 1, 2).
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn distinct_dedups() {
        let (r, _) = answer(
            "SELECT DISTINCT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }",
        );
        assert_eq!(r.len(), 2, "turbines 1 and 2");
    }

    #[test]
    fn aggregates_group_and_count() {
        let (r, _) = answer(
            "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s x:attachedTo ?t } \
             GROUP BY ?t ORDER BY DESC(?n)",
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "n"), Some(Term::Literal(Literal::integer(2))));
    }

    #[test]
    fn ask_true_and_false() {
        let (r, _) = answer("ASK { ?s x:attachedTo <http://x/turbine/1> }");
        assert_eq!(r.as_bool(), Some(true));
        let (r, _) = answer("ASK { ?s x:attachedTo <http://x/turbine/3> }");
        assert_eq!(r.as_bool(), Some(false));
    }

    #[test]
    fn unmapped_class_is_empty_not_an_error() {
        let (r, _) = answer("SELECT ?x WHERE { ?x a x:Unmapped }");
        assert!(r.is_empty());
    }

    #[test]
    fn stats_track_pipeline_stages() {
        let (_, stats) = answer("SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m }");
        assert_eq!(stats.bgps, 1);
        assert!(stats.sql_disjuncts >= 2);
        assert!(stats.rows > 0);
    }

    fn answer_with(
        text: &str,
        executor: Option<&dyn FragmentExecutor>,
        cache: Option<&BgpCache>,
    ) -> (SparqlResults, PipelineStats) {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let mut pipeline = StaticPipeline::new(&onto, &maps, &db);
        pipeline.executor = executor;
        pipeline.cache = cache;
        let query = crate::parse_sparql(text, &ns()).unwrap();
        pipeline.answer(&query).unwrap()
    }

    fn canonical(r: &SparqlResults) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = r
            .rows()
            .iter()
            .map(|row| row.iter().map(|t| format!("{t:?}")).collect())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn fragmented_execution_matches_single_node() {
        let queries = [
            "SELECT ?t WHERE { ?t a x:Turbine }",
            "SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m . \
             FILTER(REGEX(?m, \"^SGT\")) } ORDER BY ?m",
            "SELECT ?t ?s WHERE { ?t a x:Turbine . OPTIONAL { ?s x:attachedTo ?t } }",
            "SELECT DISTINCT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }",
            "ASK { ?s x:attachedTo <http://x/turbine/1> }",
        ];
        let loopback = Loopback { db: db() };
        for text in queries {
            let (single, _) = answer_with(text, None, None);
            let (fragmented, stats) = answer_with(text, Some(&loopback), None);
            assert_eq!(canonical(&single), canonical(&fragmented), "{text}");
            assert!(stats.fragments >= 1, "{text} shipped no fragments");
        }
    }

    #[test]
    fn cache_hits_on_repeated_bgp() {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let cache = BgpCache::new();
        let pipeline = StaticPipeline::new(&onto, &maps, &db).with_cache(&cache);
        // The same BGP appears in both UNION branches: first is a miss, the
        // second hits within the very same query.
        let text = "SELECT ?x WHERE { { ?x a x:Turbine } UNION { ?x a x:Turbine } }";
        let query = crate::parse_sparql(text, &ns()).unwrap();
        let (_, stats) = pipeline.answer(&query).unwrap();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        // Re-running the whole query now hits for every BGP.
        let (_, stats) = pipeline.answer(&query).unwrap();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn cached_results_stay_correct() {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let cache = BgpCache::new();
        let pipeline = StaticPipeline::new(&onto, &maps, &db).with_cache(&cache);
        let query = crate::parse_sparql("SELECT ?t WHERE { ?t a x:Turbine }", &ns()).unwrap();
        let (cold, _) = pipeline.answer(&query).unwrap();
        let (warm, _) = pipeline.answer(&query).unwrap();
        assert_eq!(canonical(&cold), canonical(&warm));
        assert_eq!(warm.len(), 3);
    }

    #[test]
    fn split_union_chain_round_trips() {
        let sql = "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v";
        let statement = optique_relational::parse_select(sql).unwrap();
        let parts = split_union_chain(statement);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.union_all.is_none()));
        assert!(parts[1].to_string().contains("FROM u"));
    }

    #[test]
    fn filter_expressions_translate_to_sql() {
        let lookup = |v: &str| -> Option<Expr> { (v == "v").then(|| Expr::col("u0.value")) };
        // ?v > 5 && !(?v = 9)
        let expr = Expression::And(
            Box::new(Expression::Compare(
                ComparisonOperator::Gt,
                Box::new(Expression::Var("v".into())),
                Box::new(Expression::Const(Term::Literal(Literal::integer(5)))),
            )),
            Box::new(Expression::Not(Box::new(Expression::Compare(
                ComparisonOperator::Eq,
                Box::new(Expression::Var("v".into())),
                Box::new(Expression::Const(Term::Literal(Literal::integer(9)))),
            )))),
        );
        let sql = expression_to_sql(&expr, &lookup).unwrap();
        assert_eq!(sql.to_string(), "((u0.value > 5) AND NOT ((u0.value = 9)))");
        // Unprojected variables and REGEX are rejected.
        assert!(expression_to_sql(&Expression::Var("w".into()), &lookup).is_err());
        assert!(expression_to_sql(
            &Expression::Regex {
                text: Box::new(Expression::Var("v".into())),
                pattern: "^x".into(),
                case_insensitive: false,
            },
            &lookup
        )
        .is_err());
    }
}
