//! The static OBDA pipeline: BGP → PerfectRef rewrite → mapping unfolding →
//! SQL execution → residual-algebra evaluation.
//!
//! Each basic graph pattern becomes one `optique_rewrite::ConjunctiveQuery`
//! whose answer variables are the BGP's variables. The CQ is enriched
//! against the deployment TBox (PerfectRef), unfolded through the mapping
//! catalog into one `UNION ALL` SQL statement, and executed on the
//! relational engine. Everything the SQL cannot express — joins across
//! `OPTIONAL`/`UNION` branches, `FILTER`s, modifiers, aggregates — runs
//! over [`SolutionSet`]s in [`crate::eval`].
//!
//! Execution of the unfolded SQL has two backends:
//!
//! * **single-node** (the default): the whole `UNION ALL` chain runs on the
//!   pipeline's [`Database`];
//! * **federated**: a [`FragmentExecutor`] receives one [`PlanFragment`]
//!   per unfolded disjunct ([`split_union_chain`]) and executes them on a
//!   worker pool (ExaStream, in `optique`'s wiring); the per-fragment
//!   tables merge back into one solution set in
//!   [`crate::eval::solutions_from_tables`]. Both backends produce the same
//!   certain-answer *set*, which the federation equivalence suite asserts.
//!
//! A [`BgpCache`] can be attached to memoize whole-BGP solution sets across
//! `OPTIONAL`/`UNION` branches and across queries.
//!
//! A statistics-driven **planner** (see [`crate::planner`]) sits between
//! the algebra and the BGP executions: consecutive inner-joinable group
//! elements are reordered smallest-estimated-cardinality-first (connected
//! operands preferred), and the bound-variable values of already-joined
//! solutions are pushed into sibling BGP executions as semi-join `IN`-list
//! restrictions. Both levers are advisory — [`PlannerSettings::disabled`]
//! reproduces the naive pipeline bit-for-bit, and the differential
//! plan-equivalence suite asserts both modes return identical answers.

use optique_mapping::{unfold_ucq, MappingCatalog, UnfoldSettings};
use optique_ontology::Ontology;
use optique_rdf::{Iri, Literal, Term};
use optique_relational::parser::SelectStatement;
use optique_relational::{
    expr::BinOp, expr::UnaryOp, Database, Expr, PlanFragment, SemiJoin, StatsCatalog, Table, Value,
};
use optique_rewrite::{rewrite, Atom, ConjunctiveQuery, QueryTerm, RewriteSettings};
use optique_telemetry::{SpanId, SpanRecord, Tracer};

use crate::algebra::{
    ArithmeticOperator, ComparisonOperator, Expression, GroupPattern, PatternElement, Projection,
    Query, SelectItem, SelectQuery,
};
use crate::cache::{BgpCache, TableVersions};
use crate::error::SparqlError;
use crate::eval::{aggregate, solutions_from_tables, SolutionSet};
use crate::planner::{greedy_order, CardinalityModel, JoinOperand, PlannerSettings, Restriction};
use crate::results::SparqlResults;

/// The gathered results of one fragment round, with enough provenance for
/// the pipeline's planner counters.
#[derive(Clone, Debug, Default)]
pub struct FragmentRound {
    /// One result table per fragment, in fragment order.
    pub tables: Vec<Table>,
    /// Fragments the executor could not ship and answered on the
    /// coordinator instead (0 for fully-shipped rounds).
    pub coordinator_fallbacks: usize,
    /// Fragments that executed sharded (scattered over a hash-partitioned
    /// table's per-worker shards).
    pub partitioned_fragments: usize,
    /// Fragments that fell back one rung on the ladder — answered by a
    /// single worker's replicas while the executor's catalog had
    /// partitioned tables (0 for fully-replicated executors, where placed
    /// execution is the design, not a fallback).
    pub replicated_fallbacks: usize,
    /// Scatter executions skipped because key routing proved the shard
    /// could hold no matching row.
    pub shards_pruned: usize,
    /// Fragment executions answered from a worker's prepared-plan cache
    /// (the parse was skipped).
    pub plan_cache_hits: u64,
    /// Fragment executions that parsed their statement this round.
    pub plan_cache_misses: u64,
    /// Pane probes answered from a worker's warm pane store (at most
    /// O(slide) incremental folding).
    pub pane_hits: u64,
    /// Pane probes that paid a full fold (first touch of a pane grid) or
    /// answered store-lessly (stale epoch, misaligned window bounds).
    pub pane_misses: u64,
    /// Worker-side trace spans for the round (batch-relative, see
    /// [`optique_telemetry::SpanRecord`]). A traced pipeline grafts them
    /// under its execution span so worker-side children stitch into the
    /// coordinator's tree; an untraced pipeline ignores them.
    pub spans: Vec<SpanRecord>,
}

/// A distributed backend for unfolded-SQL execution: takes one
/// [`PlanFragment`] per disjunct, returns one result table per fragment, in
/// order. Implementations ship fragments to workers however they like (the
/// platform's implementation rides ExaStream's gateway/scheduler/exchange)
/// but **must honor each fragment's semi-join restrictions** — executing
/// through [`PlanFragment::execute`] does so; executing the raw
/// [`PlanFragment::sql`] silently widens the answer a worker returns.
pub trait FragmentExecutor: Sync {
    /// Executes the fragments of one BGP round.
    fn execute(&self, fragments: Vec<PlanFragment>) -> Result<FragmentRound, String>;

    /// How many workers back this executor (observability only).
    fn workers(&self) -> usize {
        1
    }

    /// How many values a pushed semi-join list may carry, given the
    /// planner's per-executor budget `base`. Executors that can split a
    /// list across shards (partition-routed federations) may raise it —
    /// each shard then receives only its slice, so the per-worker list
    /// stays within `base` even though the whole list exceeds it.
    fn max_restriction_values(&self, base: usize) -> usize {
        base
    }
}

/// Everything query answering needs from a deployment.
pub struct StaticPipeline<'a> {
    /// The TBox used for enrichment.
    pub ontology: &'a Ontology,
    /// The mapping catalog over the static sources.
    pub mappings: &'a MappingCatalog,
    /// The data sources.
    pub db: &'a Database,
    /// Enrichment knobs.
    pub rewrite_settings: RewriteSettings,
    /// Unfolding knobs.
    pub unfold_settings: UnfoldSettings,
    /// Distributed execution backend; `None` runs single-node on [`Self::db`].
    pub executor: Option<&'a dyn FragmentExecutor>,
    /// Per-BGP solution-set cache; `None` disables caching.
    pub cache: Option<&'a BgpCache>,
    /// Cache generation this pipeline's database snapshot belongs to;
    /// stores are dropped if the cache has been invalidated since. Callers
    /// that snapshot a mutable database must capture this **before** the
    /// snapshot (see [`Self::with_cache_at`]).
    pub cache_generation: u64,
    /// Per-table write versions of this pipeline's database snapshot; when
    /// set, cache lookups and stores go through the *versioned* API
    /// ([`BgpCache::lookup_any_versioned`]) instead of the generation gate
    /// — entries survive writes to tables they never read, and survive
    /// merges outright (see [`Self::with_cache_versions`]).
    pub cache_versions: Option<&'a TableVersions>,
    /// Join-order / semi-join planner knobs.
    pub planner: PlannerSettings,
    /// Source statistics feeding the planner's cardinality model; `None`
    /// degrades estimates to mapping fan-out counts.
    pub table_stats: Option<&'a StatsCatalog>,
    /// Span recorder for per-stage timing; `None` (the default) skips all
    /// trace recording. Tracing never changes what a query answers — the
    /// telemetry differential suite asserts traced ≡ untraced.
    pub tracer: Option<&'a Tracer>,
    /// Parent span the pipeline's stage spans attach under (typically the
    /// platform's per-query root span).
    pub trace_parent: Option<SpanId>,
}

/// Per-query observability, surfaced on the platform dashboard.
///
/// Counters only: per-stage *timings* come from the telemetry spans a
/// traced pipeline records (see [`StaticPipeline::with_tracer`]) — one
/// timing source instead of two that can drift.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Basic graph patterns evaluated.
    pub bgps: usize,
    /// Total UCQ disjuncts after enrichment.
    pub ucq_disjuncts: usize,
    /// Total SQL disjuncts emitted by unfolding.
    pub sql_disjuncts: usize,
    /// Rows in the final result.
    pub rows: usize,
    /// BGPs answered from the [`BgpCache`].
    pub cache_hits: usize,
    /// BGPs that went through the full pipeline (cache attached but cold).
    pub cache_misses: usize,
    /// Plan fragments shipped to the distributed executor.
    pub fragments: usize,
    /// Fragments the executor answered on the coordinator instead of a
    /// worker (a silent-fallback "distributed" run shows up here).
    pub coordinator_fallbacks: usize,
    /// Join batches the planner executed in a non-textual order.
    pub join_reorders: usize,
    /// Bound-variable value lists pushed into BGP executions as semi-join
    /// `IN` restrictions (one count per restricted variable per BGP).
    pub semi_joins_pushed: usize,
    /// Planner-estimated BGP cardinalities, summed (0 with the planner
    /// disabled).
    pub estimated_rows: u64,
    /// Actual BGP solution rows, summed — compare with
    /// [`Self::estimated_rows`] to judge the cardinality model.
    pub actual_rows: u64,
    /// Rows returned by SQL execution (summed over fragments / statements)
    /// before the residual merge — semi-join pushdown shrinks this.
    pub fragment_rows: usize,
    /// Fragments executed sharded over a hash-partitioned table.
    pub partitioned_fragments: usize,
    /// Fragments answered by a single worker's replicas while the executor
    /// held partitioned tables (the middle rung of the sharded → replicated
    /// → coordinator ladder).
    pub replicated_fallbacks: usize,
    /// Scatter executions skipped by partition-key routing (shards that
    /// provably held no matching row).
    pub shards_pruned: usize,
    /// Fragment executions answered from a worker's prepared-plan cache.
    pub plan_cache_hits: u64,
    /// Fragment executions that parsed their statement.
    pub plan_cache_misses: u64,
}

impl<'a> StaticPipeline<'a> {
    /// A single-node, cache-less pipeline with default settings.
    pub fn new(ontology: &'a Ontology, mappings: &'a MappingCatalog, db: &'a Database) -> Self {
        StaticPipeline {
            ontology,
            mappings,
            db,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
            executor: None,
            cache: None,
            cache_generation: 0,
            cache_versions: None,
            planner: PlannerSettings::default(),
            table_stats: None,
            tracer: None,
            trace_parent: None,
        }
    }

    /// Routes unfolded SQL through a distributed executor.
    pub fn with_executor(mut self, executor: &'a dyn FragmentExecutor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Records per-stage spans into `tracer`, attaching them under
    /// `parent` (pass the caller's per-query root span, or `None` to make
    /// the pipeline's spans roots).
    pub fn with_tracer(mut self, tracer: &'a Tracer, parent: Option<SpanId>) -> Self {
        self.tracer = Some(tracer);
        self.trace_parent = parent;
        self
    }

    /// Sets the planner knobs ([`PlannerSettings::disabled`] reproduces the
    /// naive textual-order pipeline).
    pub fn with_planner(mut self, planner: PlannerSettings) -> Self {
        self.planner = planner;
        self
    }

    /// Attaches a statistics snapshot for the planner's cardinality model.
    pub fn with_table_stats(mut self, stats: &'a StatsCatalog) -> Self {
        self.table_stats = Some(stats);
        self
    }

    /// Attaches a per-BGP solution-set cache, capturing its current
    /// generation. Correct when the pipeline's database cannot change
    /// underneath it; if the database is a snapshot of mutable state, use
    /// [`Self::with_cache_at`] with a generation captured before the
    /// snapshot was taken.
    pub fn with_cache(self, cache: &'a BgpCache) -> Self {
        let generation = cache.generation();
        self.with_cache_at(cache, generation)
    }

    /// Attaches a per-BGP cache with an explicitly captured generation.
    /// Capturing the generation *before* snapshotting the database closes
    /// the race where a write lands between the two: either the snapshot is
    /// fresh (stores fine) or the store's generation is stale (dropped).
    pub fn with_cache_at(mut self, cache: &'a BgpCache, generation: u64) -> Self {
        self.cache = Some(cache);
        self.cache_generation = generation;
        self
    }

    /// Attaches a per-BGP cache in *versioned* mode: `versions` are the
    /// per-table write versions of this pipeline's database snapshot,
    /// captured atomically with it. Entries are stamped with the versions
    /// of the tables they read and answer exactly the readers whose
    /// snapshots agree — a write to one table hides only the entries that
    /// read it, and a novelty merge (which changes no table's contents)
    /// hides nothing.
    pub fn with_cache_versions(mut self, cache: &'a BgpCache, versions: &'a TableVersions) -> Self {
        self.cache = Some(cache);
        self.cache_versions = Some(versions);
        self
    }

    /// Answers a parsed query.
    pub fn answer(&self, query: &Query) -> Result<(SparqlResults, PipelineStats), SparqlError> {
        let mut stats = PipelineStats::default();
        let unrestricted = Restriction::empty();
        // One memoizing cardinality model per query: atom estimates and
        // source-SQL parses are shared across every batch and BGP.
        let model = CardinalityModel::new(self.ontology, self.mappings, self.table_stats);
        match query {
            Query::Ask(ask) => {
                let solutions = self.eval_group(&ask.pattern, &unrestricted, &model, &mut stats)?;
                let truth = !solutions.is_empty();
                stats.rows = usize::from(truth);
                Ok((SparqlResults::Boolean(truth), stats))
            }
            Query::Select(select) => {
                let solutions =
                    self.eval_group(&select.pattern, &unrestricted, &model, &mut stats)?;
                let result = self.finish_select(select, solutions)?;
                stats.rows = result.len();
                Ok((SparqlResults::Solutions(result), stats))
            }
        }
    }

    fn finish_select(
        &self,
        select: &SelectQuery,
        mut solutions: SolutionSet,
    ) -> Result<SolutionSet, SparqlError> {
        let has_aggregates = !select.group_by.is_empty()
            || matches!(&select.projection, Projection::Items(items)
                if items.iter().any(|i| matches!(i, SelectItem::Aggregate { .. })));

        if has_aggregates {
            let Projection::Items(items) = &select.projection else {
                return Err(SparqlError::execution(
                    "SELECT * cannot be combined with aggregates or GROUP BY",
                ));
            };
            let mut out = aggregate(&solutions, &select.group_by, items)?;
            out.order_by(&select.modifiers.order_by);
            if select.distinct {
                out.distinct();
            }
            out.slice(select.modifiers.offset, select.modifiers.limit);
            return Ok(out);
        }

        // Order over the full solution (ORDER BY may use unprojected vars),
        // then project, dedup, slice.
        solutions.order_by(&select.modifiers.order_by);
        let names: Vec<String> = match &select.projection {
            Projection::All => select.pattern.variables(),
            Projection::Items(items) => items.iter().map(|i| i.name().to_string()).collect(),
        };
        let mut out = solutions.project(&names);
        if select.distinct {
            out.distinct();
        }
        out.slice(select.modifiers.offset, select.modifiers.limit);
        Ok(out)
    }

    /// Evaluates a group pattern: consecutive inner-joinable elements
    /// (triples blocks, nested groups, `UNION`s) form a **batch** the
    /// planner may reorder; `OPTIONAL` is a batch barrier (a left join is
    /// not commutative with what precedes it); `FILTER`s scope over the
    /// whole group and run last. `restriction` carries the outer context's
    /// bound-variable values for semi-join pushdown.
    fn eval_group(
        &self,
        group: &GroupPattern,
        restriction: &Restriction,
        model: &CardinalityModel,
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        let mut current = SolutionSet::unit();
        let mut filters = Vec::new();
        let mut batch: Vec<&PatternElement> = Vec::new();
        for element in &group.elements {
            match element {
                PatternElement::Triples(_)
                | PatternElement::SubGroup(_)
                | PatternElement::Union(_)
                | PatternElement::Values(_) => batch.push(element),
                PatternElement::Optional(inner) => {
                    current = self.flush_batch(current, &mut batch, restriction, model, stats)?;
                    // The OPTIONAL's right side may only be restricted by
                    // the values of its own left side (`current`): an
                    // outer-context entry could prune a row that matches a
                    // left row on a variable `current` leaves unbound,
                    // flipping a match into an unbound survivor that joins
                    // anything upstream. And no restriction at all may
                    // enter a subtree with further OPTIONALs inside — see
                    // [`GroupPattern::contains_optional`].
                    let context = if self.planner.semi_join_pushdown && !inner.contains_optional() {
                        Restriction::from_solutions(&current, self.restriction_cap())
                    } else {
                        Restriction::empty()
                    };
                    let sub = self.eval_group(inner, &context, model, stats)?;
                    current = current.left_join(&sub);
                }
                PatternElement::Filter(expr) => filters.push(expr),
            }
        }
        current = self.flush_batch(current, &mut batch, restriction, model, stats)?;
        // FILTERs scope over the whole group.
        for expr in filters {
            current = current.filter(expr);
        }
        Ok(current)
    }

    /// Joins the batched operands into `current`, in planner order when
    /// reordering is enabled (smallest estimate first, connected-subgraph
    /// preference, `current`'s variables as the seed), textual order
    /// otherwise.
    fn flush_batch(
        &self,
        mut current: SolutionSet,
        batch: &mut Vec<&PatternElement>,
        restriction: &Restriction,
        model: &CardinalityModel,
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        if batch.is_empty() {
            return Ok(current);
        }
        let operands = std::mem::take(batch);
        let order: Vec<usize> = if self.planner.reorder_joins && operands.len() > 1 {
            let mut span = self.tracer.map(|t| t.span(self.trace_parent, "plan_batch"));
            let infos: Vec<JoinOperand> = operands
                .iter()
                .map(|element| JoinOperand {
                    vars: element_vars(element),
                    estimate: model.estimate_element(element),
                })
                .collect();
            let order = greedy_order(&current.vars, &infos);
            let reordered = order.iter().enumerate().any(|(pos, &idx)| pos != idx);
            if reordered {
                stats.join_reorders += 1;
            }
            if let Some(span) = span.as_mut() {
                span.set_attr("operands", operands.len());
                span.set_attr("reordered", reordered);
            }
            order
        } else {
            (0..operands.len()).collect()
        };
        for idx in order {
            if self.planner.reorder_joins && current.is_empty() {
                // Inner joins against an empty set stay empty; skip the
                // remaining operands (pure optimization — never taken in
                // naive mode, so the oracle compares against full
                // evaluation).
                break;
            }
            // Restrictions may only enter OPTIONAL-free operands: below a
            // left join, pruning flips matches into unbound survivors that
            // join anything upstream (adding answers). A plain BGP has no
            // left joins; groups/unions are checked transitively.
            let context = if element_is_optional_free(operands[idx]) {
                self.context_restriction(restriction, &current)
            } else {
                Restriction::empty()
            };
            let solutions = match operands[idx] {
                PatternElement::Triples(atoms) => self.eval_bgp(atoms, &context, model, stats)?,
                PatternElement::SubGroup(inner) => {
                    self.eval_group(inner, &context, model, stats)?
                }
                PatternElement::Union(branches) => {
                    let mut united = SolutionSet::empty();
                    for branch in branches {
                        united = united.union(self.eval_group(branch, &context, model, stats)?);
                    }
                    united
                }
                // Inline bindings are already materialized: they join like
                // any operand (and, reordered first by their tiny
                // estimate, their values push into sibling BGPs as
                // semi-join restrictions).
                PatternElement::Values(block) => SolutionSet {
                    vars: block.vars.clone(),
                    rows: block.rows.clone(),
                },
                _ => unreachable!("only joinable elements are batched"),
            };
            current = current.join(&solutions);
        }
        Ok(current)
    }

    /// The semi-join context for an operand evaluated after `current` has
    /// materialized: the outer restriction merged with `current`'s
    /// bound-value lists. Empty whenever pushdown is disabled.
    fn context_restriction(&self, outer: &Restriction, current: &SolutionSet) -> Restriction {
        if !self.planner.semi_join_pushdown {
            return Restriction::empty();
        }
        outer.merged(Restriction::from_solutions(current, self.restriction_cap()))
    }

    /// The per-variable cap on pushed restriction values: the planner's
    /// `max_in_list`, raised when the attached executor can slice a list
    /// across shards ([`FragmentExecutor::max_restriction_values`]).
    fn restriction_cap(&self) -> usize {
        match self.executor {
            Some(executor) => executor.max_restriction_values(self.planner.max_in_list),
            None => self.planner.max_in_list,
        }
    }

    /// One BGP through cache lookup → rewrite → unfold → SQL execution
    /// (single-node or federated), under an optional semi-join restriction
    /// from the already-materialized join context.
    fn eval_bgp(
        &self,
        atoms: &[Atom],
        restriction: &Restriction,
        model: &CardinalityModel,
        stats: &mut PipelineStats,
    ) -> Result<SolutionSet, SparqlError> {
        stats.bgps += 1;
        if atoms.is_empty() {
            return Ok(SolutionSet::unit());
        }
        let mut bgp_span = self.tracer.map(|t| t.span(self.trace_parent, "bgp"));
        if let Some(span) = bgp_span.as_mut() {
            span.set_attr("atoms", atoms.len());
        }
        let bgp_id = bgp_span.as_ref().map(|s| s.id());
        let vars = bgp_variables(atoms);
        let restriction = restriction.restrict_to(&vars);
        if self.planner.reorder_joins {
            // At least 1 per estimated BGP: `estimated_rows == 0` then
            // means exactly "planner off", which the dashboard's accuracy
            // column relies on (a genuine rounds-to-zero estimate renders
            // as a maximally-wrong ratio instead of "no estimate").
            stats.estimated_rows += (model.estimate_bgp(atoms).round() as u64).max(1);
        }

        let plain_key = self.cache.map(|_| BgpCache::key(atoms));
        let restricted_key = (!restriction.is_empty())
            .then(|| BgpCache::restricted_key(atoms, &restriction.fingerprint()));
        if let (Some(cache), Some(plain)) = (self.cache, plain_key.as_deref()) {
            // One logical lookup: the restriction-exact entry is preferred,
            // the unrestricted superset also answers (the join filters it);
            // the cache counts one hit or one miss either way.
            let keys: Vec<&str> = match restricted_key.as_deref() {
                Some(restricted) => vec![restricted, plain],
                None => vec![plain],
            };
            let mut lookup_span = self.tracer.map(|t| t.span(bgp_id, "cache_lookup"));
            // Probed at the generation captured with this pipeline's
            // database snapshot: if a relational write has invalidated the
            // cache since, every probe misses rather than pairing this
            // snapshot with entries computed over a different one.
            let cached = match self.cache_versions {
                Some(versions) => cache.lookup_any_versioned(&keys, versions),
                None => cache.lookup_any_at(&keys, self.cache_generation),
            };
            if let Some(span) = lookup_span.as_mut() {
                span.set_attr("outcome", if cached.is_some() { "hit" } else { "miss" });
            }
            drop(lookup_span);
            if let Some(cached) = cached {
                stats.cache_hits += 1;
                stats.actual_rows += cached.len() as u64;
                if let Some(span) = bgp_span.as_mut() {
                    span.set_attr("cache", "hit");
                    span.set_attr("rows", cached.len());
                }
                return Ok(cached);
            }
            stats.cache_misses += 1;
        }

        let cq = ConjunctiveQuery::new(vars.clone(), atoms.to_vec());

        let rewrite_span = self.tracer.map(|t| t.span(bgp_id, "rewrite"));
        let (ucq, _) = rewrite(&cq, self.ontology, &self.rewrite_settings)
            .map_err(|e| SparqlError::execution(format!("enrichment failed: {e}")))?;
        if let Some(mut span) = rewrite_span {
            span.set_attr("ucq_disjuncts", ucq.len());
            span.finish();
        }
        stats.ucq_disjuncts += ucq.len();

        let unfold_span = self.tracer.map(|t| t.span(bgp_id, "unfold"));
        let (sql, unfold_stats) = unfold_ucq(&ucq, self.mappings, &self.unfold_settings)
            .map_err(|e| SparqlError::execution(format!("unfolding failed: {e}")))?;
        if let Some(mut span) = unfold_span {
            span.set_attr("sql_disjuncts", unfold_stats.emitted);
            span.finish();
        }
        stats.sql_disjuncts += unfold_stats.emitted;

        let semi_joins: Vec<SemiJoin> = restriction
            .entries()
            .iter()
            .map(|(var, terms)| {
                SemiJoin::new(var.clone(), terms.iter().map(term_to_value).collect())
            })
            .collect();

        // What a cached result depends on: the base tables the unfolded SQL
        // reads. An unmapped BGP reads nothing (row inserts cannot make it
        // non-empty — mappings are immutable), so its dependency set is
        // empty, not unknown.
        let mut tables_read = Some(std::collections::BTreeSet::new());
        let solutions = match sql {
            // Some term has no mapping: the BGP is empty over the sources.
            None => SolutionSet {
                vars,
                rows: Vec::new(),
            },
            Some(statement) => {
                tables_read = optique_relational::referenced_tables(&statement);
                stats.semi_joins_pushed += semi_joins.len();
                let mut exec_span = self.tracer.map(|t| t.span(bgp_id, "exec"));
                let exec_id = exec_span.as_ref().map(|s| s.id());
                let tables = self.execute_statement(statement, &semi_joins, exec_id, stats)?;
                if let Some(span) = exec_span.as_mut() {
                    span.set_attr("rows", tables.iter().map(Table::len).sum::<usize>());
                }
                drop(exec_span);

                if vars.is_empty() {
                    // Constant-only BGP: satisfiable iff any row came back.
                    if tables.iter().any(|t| !t.is_empty()) {
                        SolutionSet::unit()
                    } else {
                        SolutionSet::empty()
                    }
                } else {
                    // Certain-answer semantics: a UCQ's answers are the *set*
                    // union of its disjuncts' answers, so duplicates across
                    // `UNION ALL` branches / fragments (one sensor reachable
                    // through several mappings) collapse in the merge.
                    solutions_from_tables(vars, tables)
                }
            }
        };
        stats.actual_rows += solutions.len() as u64;
        if let Some(span) = bgp_span.as_mut() {
            span.set_attr("rows", solutions.len());
        }

        if let Some(cache) = self.cache {
            // A restricted execution materializes a *subset* of the BGP's
            // solutions: it caches under the restriction-fingerprinted key,
            // never the plain one. `cache_generation` was captured before
            // the database snapshot: a write that landed since then makes
            // this store a no-op instead of repopulating the cache with
            // stale answers.
            if let Some(key) = restricted_key.or(plain_key) {
                match self.cache_versions {
                    Some(versions) => {
                        cache.store_versioned(key, solutions.clone(), versions, tables_read)
                    }
                    None => cache.store_with_tables(
                        key,
                        solutions.clone(),
                        self.cache_generation,
                        tables_read,
                    ),
                }
            }
        }
        Ok(solutions)
    }

    /// Runs one unfolded `UNION ALL` statement: on the distributed executor
    /// as per-disjunct fragments when one is attached, on the local engine
    /// otherwise. Semi-join restrictions ride on each fragment (federated)
    /// or wrap the statement structurally (single-node) — value lists are
    /// never spliced into SQL text. Returns the result tables to merge.
    fn execute_statement(
        &self,
        statement: SelectStatement,
        semi_joins: &[SemiJoin],
        parent: Option<SpanId>,
        stats: &mut PipelineStats,
    ) -> Result<Vec<Table>, SparqlError> {
        match self.executor {
            Some(executor) => {
                let fragments: Vec<PlanFragment> = split_union_chain(statement)
                    .into_iter()
                    .enumerate()
                    .map(|(i, stmt)| {
                        // Cost estimate: FROM item count (join width drives
                        // disjunct cost far more than anything else we can
                        // see statically).
                        let cost = (stmt.joins.len() + 1) as f64;
                        // Pin the round at the coordinator snapshot's
                        // novelty epoch: every worker resolves the same
                        // overlay, so one round never mixes pre- and
                        // post-append rows.
                        PlanFragment::new(i as u64, stmt.to_string(), cost)
                            .with_semi_joins(semi_joins.to_vec())
                            .at_epoch(self.db.novelty_epoch())
                    })
                    .collect();
                stats.fragments += fragments.len();
                // The round's worker spans are recorded relative to its own
                // start; capture that instant on the tracer's clock so the
                // graft lands them under the exec span at the right offset.
                let round_base = self.tracer.map(|t| t.now_us());
                let round = executor.execute(fragments).map_err(|e| {
                    SparqlError::execution(format!("federated execution failed: {e}"))
                })?;
                if let (Some(tracer), Some(base)) = (self.tracer, round_base) {
                    tracer.graft(parent, base, &round.spans);
                }
                stats.coordinator_fallbacks += round.coordinator_fallbacks;
                stats.partitioned_fragments += round.partitioned_fragments;
                stats.replicated_fallbacks += round.replicated_fallbacks;
                stats.shards_pruned += round.shards_pruned;
                stats.plan_cache_hits += round.plan_cache_hits;
                stats.plan_cache_misses += round.plan_cache_misses;
                stats.fragment_rows += round.tables.iter().map(Table::len).sum::<usize>();
                Ok(round.tables)
            }
            None => {
                let sql_span = self.tracer.map(|t| t.span(parent, "sql"));
                let restricted =
                    optique_relational::fragment::restrict_statement(statement, semi_joins);
                let table = optique_relational::plan::plan_select(&restricted, self.db)
                    .map(optique_relational::optimizer::optimize)
                    .and_then(|plan| optique_relational::exec::execute(&plan, self.db))
                    .map_err(|e| SparqlError::execution(format!("SQL execution failed: {e}")))?;
                if let Some(mut span) = sql_span {
                    span.set_attr("rows", table.len());
                    span.finish();
                }
                stats.fragment_rows += table.len();
                Ok(vec![table])
            }
        }
    }
}

/// True when a batched operand contains no `OPTIONAL` anywhere — the
/// precondition for pushing a semi-join restriction into it.
fn element_is_optional_free(element: &PatternElement) -> bool {
    match element {
        PatternElement::Triples(_) | PatternElement::Values(_) => true,
        PatternElement::SubGroup(inner) => !inner.contains_optional(),
        PatternElement::Union(branches) => branches.iter().all(|b| !b.contains_optional()),
        _ => false,
    }
}

/// The variables one inner-joinable element can bind.
fn element_vars(element: &PatternElement) -> Vec<String> {
    match element {
        PatternElement::Triples(atoms) => bgp_variables(atoms),
        PatternElement::SubGroup(inner) => inner.variables(),
        PatternElement::Union(branches) => {
            let mut out: Vec<String> = Vec::new();
            for branch in branches {
                for v in branch.variables() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out
        }
        PatternElement::Values(block) => block.vars.clone(),
        _ => Vec::new(),
    }
}

/// Splits an unfolded `UNION ALL` chain into its disjunct statements — the
/// inverse of the unfolder's chaining, and the unit of federated execution.
pub fn split_union_chain(statement: SelectStatement) -> Vec<SelectStatement> {
    let mut out = Vec::new();
    let mut cursor = Some(statement);
    while let Some(mut stmt) = cursor {
        cursor = stmt.union_all.take().map(|next| *next);
        out.push(stmt);
    }
    out
}

/// Translates a SPARQL `FILTER` expression into a relational [`Expr`] over
/// SQL columns. `lookup` maps a SPARQL variable to the SQL expression that
/// produces it (typically a projection of the unfolded statement). Only the
/// SQL-expressible fragment translates: comparisons, `&&`/`||`/`!`,
/// arithmetic, variables and constants. `REGEX`/`BOUND` (and anything else
/// engine-specific) is rejected — those stay in the residual algebra.
pub fn expression_to_sql(
    expr: &Expression,
    lookup: &dyn Fn(&str) -> Option<Expr>,
) -> Result<Expr, String> {
    match expr {
        Expression::Var(v) => {
            lookup(v).ok_or_else(|| format!("?{v} has no SQL column in this statement"))
        }
        Expression::Const(term) => Ok(Expr::Literal(term_to_value(term))),
        Expression::And(a, b) => Ok(Expr::binary(
            BinOp::And,
            expression_to_sql(a, lookup)?,
            expression_to_sql(b, lookup)?,
        )),
        Expression::Or(a, b) => Ok(Expr::binary(
            BinOp::Or,
            expression_to_sql(a, lookup)?,
            expression_to_sql(b, lookup)?,
        )),
        Expression::Not(a) => Ok(Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(expression_to_sql(a, lookup)?),
        }),
        Expression::Compare(op, a, b) => {
            let op = match op {
                ComparisonOperator::Eq => BinOp::Eq,
                ComparisonOperator::Ne => BinOp::Ne,
                ComparisonOperator::Lt => BinOp::Lt,
                ComparisonOperator::Le => BinOp::Le,
                ComparisonOperator::Gt => BinOp::Gt,
                ComparisonOperator::Ge => BinOp::Ge,
            };
            Ok(Expr::binary(
                op,
                expression_to_sql(a, lookup)?,
                expression_to_sql(b, lookup)?,
            ))
        }
        Expression::Arithmetic(op, a, b) => {
            let op = match op {
                ArithmeticOperator::Add => BinOp::Add,
                ArithmeticOperator::Sub => BinOp::Sub,
                ArithmeticOperator::Mul => BinOp::Mul,
                ArithmeticOperator::Div => BinOp::Div,
            };
            Ok(Expr::binary(
                op,
                expression_to_sql(a, lookup)?,
                expression_to_sql(b, lookup)?,
            ))
        }
        Expression::Regex { .. } => Err("FILTER REGEX has no SQL translation".into()),
        Expression::Bound(_) => Err("FILTER BOUND has no SQL translation".into()),
    }
}

/// Lowers a constant RDF term to a SQL value (IRIs travel as their text,
/// matching how mapping templates mint them).
fn term_to_value(term: &Term) -> Value {
    match term {
        Term::Iri(iri) => Value::text(iri.as_str()),
        Term::BNode(id) => Value::text(format!("_:b{id}")),
        Term::Literal(lit) => {
            if let Some(b) = lit.as_bool() {
                Value::Bool(b)
            } else if let Some(i) = lit.as_i64() {
                Value::Int(i)
            } else if let Some(f) = lit.as_f64() {
                Value::Float(f)
            } else {
                Value::text(lit.lexical())
            }
        }
    }
}

/// Variables of a BGP in first-seen order — the CQ's answer signature.
fn bgp_variables(atoms: &[Atom]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for atom in atoms {
        for term in atom.terms() {
            if let QueryTerm::Var(v) = term {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
        }
    }
    out
}

/// Lifts a SQL value back into an RDF term. Mapping templates mint IRIs as
/// text, so text that looks like an IRI becomes one (the same convention
/// the unfolding oracle tests use); everything else stays a typed literal.
pub fn value_to_term(value: &Value) -> Option<Term> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(Term::Literal(Literal::integer(*i))),
        Value::Float(f) => Some(Term::Literal(Literal::double(*f))),
        Value::Bool(b) => Some(Term::Literal(Literal::boolean(*b))),
        Value::Timestamp(t) => Some(Term::Literal(Literal::datetime_millis(*t))),
        Value::Text(s) => {
            // Interned text decodes zero-copy: the RDF term shares the
            // dictionary's allocation instead of copying per result cell.
            if s.contains("://") || s.starts_with("urn:") {
                Some(Term::Iri(Iri::from_shared(s.text_arc())))
            } else {
                Some(Term::Literal(Literal::string_shared(s.text_arc())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_mapping::{MappingAssertion, TermMap};
    use optique_ontology::{Axiom, BasicConcept};
    use optique_rdf::{Datatype, Iri, Namespaces};
    use optique_relational::{table::table_of, ColumnType};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn ns() -> Namespaces {
        let mut ns = Namespaces::with_w3c_defaults();
        ns.bind("x", "http://x/");
        ns
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[
                    ("tid", ColumnType::Int),
                    ("model", ColumnType::Text),
                    ("kind", ColumnType::Text),
                ],
                vec![
                    vec![Value::Int(1), Value::text("SGT-400"), Value::text("gas")],
                    vec![Value::Int(2), Value::text("SGT-800"), Value::text("gas")],
                    vec![Value::Int(3), Value::text("SST-600"), Value::text("steam")],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                vec![
                    vec![Value::Int(10), Value::Int(1)],
                    vec![Value::Int(11), Value::Int(1)],
                    vec![Value::Int(12), Value::Int(2)],
                ],
            )
            .unwrap(),
        );
        db
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(
            BasicConcept::atomic(iri("GasTurbine")),
            BasicConcept::atomic(iri("Turbine")),
        ));
        o.declare_data_property(iri("hasModel"));
        o
    }

    fn catalog() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(
            MappingAssertion::class(
                "gas",
                iri("GasTurbine"),
                "SELECT tid FROM turbines WHERE kind = 'gas'",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::class(
                "steam",
                iri("Turbine"),
                "SELECT tid FROM turbines WHERE kind = 'steam'",
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "model",
                iri("hasModel"),
                "SELECT tid, model FROM turbines",
                TermMap::template("http://x/turbine/{tid}"),
                TermMap::column("model", Datatype::String),
            )
            .with_key(vec!["tid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "attached",
                iri("attachedTo"),
                "SELECT sid, tid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
                TermMap::template("http://x/turbine/{tid}"),
            )
            .with_key(vec!["sid".into(), "tid".into()]),
        )
        .unwrap();
        c
    }

    fn answer(text: &str) -> (SparqlResults, PipelineStats) {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let pipeline = StaticPipeline::new(&onto, &maps, &db);
        let query = crate::parse_sparql(text, &ns()).unwrap();
        pipeline.answer(&query).unwrap()
    }

    /// A loopback fragment executor: runs every fragment on the local
    /// database, after a full wire round trip of the fragment text —
    /// exactly what a worker pool does, minus the threads.
    struct Loopback {
        db: Database,
    }

    impl FragmentExecutor for Loopback {
        fn execute(&self, fragments: Vec<PlanFragment>) -> Result<FragmentRound, String> {
            let tables = fragments
                .into_iter()
                .map(|f| {
                    let decoded = PlanFragment::decode(&f.encode()).map_err(|e| e.to_string())?;
                    decoded.execute(&self.db).map_err(|e| e.to_string())
                })
                .collect::<Result<Vec<Table>, String>>()?;
            Ok(FragmentRound {
                tables,
                ..FragmentRound::default()
            })
        }
    }

    #[test]
    fn rewriting_reaches_subclasses() {
        // Turbine(x): the direct mapping only covers steam turbines;
        // PerfectRef adds GasTurbine ⊑ Turbine, reaching all three.
        let (r, stats) = answer("SELECT ?t WHERE { ?t a x:Turbine }");
        assert_eq!(r.len(), 3);
        assert!(stats.ucq_disjuncts >= 2, "enrichment added a disjunct");
    }

    #[test]
    fn join_filter_order_limit() {
        let (r, _) = answer(
            "SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m . \
             FILTER(REGEX(?m, \"^SGT\")) } ORDER BY DESC(?m) LIMIT 1",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "m"),
            Some(Term::Literal(Literal::string("SGT-800")))
        );
    }

    #[test]
    fn optional_binds_where_present() {
        // Sensors are attached to turbines 1 and 2; turbine 3 has none.
        let (r, _) = answer(
            "SELECT ?t ?s WHERE { ?t a x:Turbine . \
             OPTIONAL { ?s x:attachedTo ?t } } ORDER BY ?t",
        );
        assert_eq!(r.len(), 4, "3 attachments + 1 bare turbine");
        let unbound = r.rows().iter().filter(|row| row[1].is_none()).count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn union_merges_branches() {
        let (r, _) =
            answer("SELECT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }");
        // 2 gas turbines + 3 attachment targets (turbines 1, 1, 2).
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn distinct_dedups() {
        let (r, _) = answer(
            "SELECT DISTINCT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }",
        );
        assert_eq!(r.len(), 2, "turbines 1 and 2");
    }

    #[test]
    fn aggregates_group_and_count() {
        let (r, _) = answer(
            "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s x:attachedTo ?t } \
             GROUP BY ?t ORDER BY DESC(?n)",
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "n"), Some(Term::Literal(Literal::integer(2))));
    }

    #[test]
    fn ask_true_and_false() {
        let (r, _) = answer("ASK { ?s x:attachedTo <http://x/turbine/1> }");
        assert_eq!(r.as_bool(), Some(true));
        let (r, _) = answer("ASK { ?s x:attachedTo <http://x/turbine/3> }");
        assert_eq!(r.as_bool(), Some(false));
    }

    #[test]
    fn unmapped_class_is_empty_not_an_error() {
        let (r, _) = answer("SELECT ?x WHERE { ?x a x:Unmapped }");
        assert!(r.is_empty());
    }

    #[test]
    fn stats_track_pipeline_stages() {
        let (_, stats) = answer("SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m }");
        assert_eq!(stats.bgps, 1);
        assert!(stats.sql_disjuncts >= 2);
        assert!(stats.rows > 0);
    }

    fn answer_with(
        text: &str,
        executor: Option<&dyn FragmentExecutor>,
        cache: Option<&BgpCache>,
    ) -> (SparqlResults, PipelineStats) {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let mut pipeline = StaticPipeline::new(&onto, &maps, &db);
        pipeline.executor = executor;
        pipeline.cache = cache;
        let query = crate::parse_sparql(text, &ns()).unwrap();
        pipeline.answer(&query).unwrap()
    }

    fn canonical(r: &SparqlResults) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = r
            .rows()
            .iter()
            .map(|row| row.iter().map(|t| format!("{t:?}")).collect())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn fragmented_execution_matches_single_node() {
        let queries = [
            "SELECT ?t WHERE { ?t a x:Turbine }",
            "SELECT ?t ?m WHERE { ?t a x:Turbine ; x:hasModel ?m . \
             FILTER(REGEX(?m, \"^SGT\")) } ORDER BY ?m",
            "SELECT ?t ?s WHERE { ?t a x:Turbine . OPTIONAL { ?s x:attachedTo ?t } }",
            "SELECT DISTINCT ?x WHERE { { ?x a x:GasTurbine } UNION { ?s x:attachedTo ?x } }",
            "ASK { ?s x:attachedTo <http://x/turbine/1> }",
        ];
        let loopback = Loopback { db: db() };
        for text in queries {
            let (single, _) = answer_with(text, None, None);
            let (fragmented, stats) = answer_with(text, Some(&loopback), None);
            assert_eq!(canonical(&single), canonical(&fragmented), "{text}");
            assert!(stats.fragments >= 1, "{text} shipped no fragments");
        }
    }

    #[test]
    fn cache_hits_on_repeated_bgp() {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let cache = BgpCache::new();
        let pipeline = StaticPipeline::new(&onto, &maps, &db).with_cache(&cache);
        // The same BGP appears in both UNION branches: first is a miss, the
        // second hits within the very same query.
        let text = "SELECT ?x WHERE { { ?x a x:Turbine } UNION { ?x a x:Turbine } }";
        let query = crate::parse_sparql(text, &ns()).unwrap();
        let (_, stats) = pipeline.answer(&query).unwrap();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        // Re-running the whole query now hits for every BGP.
        let (_, stats) = pipeline.answer(&query).unwrap();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn cached_results_stay_correct() {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let cache = BgpCache::new();
        let pipeline = StaticPipeline::new(&onto, &maps, &db).with_cache(&cache);
        let query = crate::parse_sparql("SELECT ?t WHERE { ?t a x:Turbine }", &ns()).unwrap();
        let (cold, _) = pipeline.answer(&query).unwrap();
        let (warm, _) = pipeline.answer(&query).unwrap();
        assert_eq!(canonical(&cold), canonical(&warm));
        assert_eq!(warm.len(), 3);
    }

    /// Novelty-overlay rows answer through both backends: single-node scans
    /// merge the overlay directly, and fragments pin the coordinator
    /// snapshot's epoch so a worker holding only the *base* catalog
    /// resolves the same overlay from the epoch registry.
    #[test]
    fn novelty_overlay_rows_reach_both_backends() {
        use optique_relational::NoveltyOverlay;
        let mut overlaid = db();
        let overlay = NoveltyOverlay::empty().with_rows(
            "turbines",
            vec![vec![
                Value::Int(4),
                Value::text("SGT-750"),
                Value::text("gas"),
            ]],
        );
        overlaid.set_novelty(Some(overlay));
        let onto = ontology();
        let maps = catalog();
        let query = crate::parse_sparql("SELECT ?t WHERE { ?t a x:Turbine }", &ns()).unwrap();

        let (single, _) = StaticPipeline::new(&onto, &maps, &overlaid)
            .answer(&query)
            .unwrap();
        assert_eq!(single.len(), 4, "overlay turbine joins the base three");

        // The worker's catalog has no overlay installed — the pinned epoch
        // on the wire is its only path to the appended row.
        let loopback = Loopback { db: db() };
        let (fragmented, stats) = StaticPipeline::new(&onto, &maps, &overlaid)
            .with_executor(&loopback)
            .answer(&query)
            .unwrap();
        assert!(stats.fragments >= 1);
        assert_eq!(canonical(&single), canonical(&fragmented));
    }

    /// Two adjacent groups force a residual join; with the planner on, the
    /// selective class scan runs first and its bindings restrict the
    /// sibling BGP's fragments.
    #[test]
    fn semi_join_pushdown_shrinks_fragment_rows() {
        let text = "SELECT ?t ?m WHERE { { ?t x:hasModel ?m } { ?t a x:GasTurbine } }";
        let loopback = Loopback { db: db() };

        let naive = {
            let db = db();
            let onto = ontology();
            let maps = catalog();
            let pipeline = StaticPipeline::new(&onto, &maps, &db)
                .with_executor(&loopback)
                .with_planner(PlannerSettings::disabled());
            let query = crate::parse_sparql(text, &ns()).unwrap();
            pipeline.answer(&query).unwrap()
        };
        let optimized = {
            let db = db();
            let onto = ontology();
            let maps = catalog();
            let stats = optique_relational::StatsCatalog::analyze(&db);
            let pipeline = StaticPipeline::new(&onto, &maps, &db)
                .with_executor(&loopback)
                .with_table_stats(&stats);
            let query = crate::parse_sparql(text, &ns()).unwrap();
            pipeline.answer(&query).unwrap()
        };

        assert_eq!(canonical(&naive.0), canonical(&optimized.0));
        assert_eq!(naive.1.semi_joins_pushed, 0);
        assert_eq!(naive.1.join_reorders, 0);
        assert_eq!(naive.1.estimated_rows, 0, "naive mode never estimates");
        assert!(
            optimized.1.join_reorders >= 1,
            "hasModel (3 rows) must yield to GasTurbine (2 rows): {:?}",
            optimized.1
        );
        assert!(
            optimized.1.semi_joins_pushed >= 1,
            "gas-turbine bindings must restrict the hasModel BGP: {:?}",
            optimized.1
        );
        assert!(
            optimized.1.fragment_rows < naive.1.fragment_rows,
            "pushdown must shrink what fragments return: {} !< {}",
            optimized.1.fragment_rows,
            naive.1.fragment_rows
        );
        assert!(optimized.1.estimated_rows > 0);
        assert!(optimized.1.actual_rows > 0);
    }

    /// Restricted executions cache under restriction-fingerprinted keys —
    /// a restricted subset must never answer an unrestricted lookup.
    #[test]
    fn restricted_results_do_not_poison_the_cache() {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let cache = BgpCache::new();
        let pipeline = StaticPipeline::new(&onto, &maps, &db).with_cache(&cache);
        // The join pushes the 2 gas-turbine bindings into `?t x:hasModel ?m`.
        let joined = crate::parse_sparql(
            "SELECT ?t ?m WHERE { { ?t a x:GasTurbine } { ?t x:hasModel ?m } }",
            &ns(),
        )
        .unwrap();
        let (_, s) = pipeline.answer(&joined).unwrap();
        assert!(s.semi_joins_pushed >= 1);
        // Alone, the same BGP must still return all 3 models, not the
        // cached restricted pair.
        let alone = crate::parse_sparql("SELECT ?t ?m WHERE { ?t x:hasModel ?m }", &ns()).unwrap();
        let (r, _) = pipeline.answer(&alone).unwrap();
        assert_eq!(r.len(), 3, "restricted cache entry leaked into plain use");
        // Re-running the join hits the restricted entry.
        let (_, warm) = pipeline.answer(&joined).unwrap();
        assert!(warm.cache_hits >= 2, "{warm:?}");
    }

    /// Regression: a restriction must never cross into a subtree holding an
    /// OPTIONAL. Pruning the nested OPTIONAL's BGP (t = turbine/3, outside
    /// the gas-turbine set) would flip its match into an unbound survivor
    /// that joins every gas turbine — 6 spurious rows where the naive plan
    /// returns 0.
    #[test]
    fn restriction_never_crosses_into_optional_subtrees() {
        let text = "SELECT ?t ?u ?m WHERE { { ?t a x:GasTurbine } \
                    { { ?u x:hasModel ?m } OPTIONAL { ?t x:hasModel \"SST-600\" } } }";
        let (naive, _) = {
            let db = db();
            let onto = ontology();
            let maps = catalog();
            let pipeline =
                StaticPipeline::new(&onto, &maps, &db).with_planner(PlannerSettings::disabled());
            let query = crate::parse_sparql(text, &ns()).unwrap();
            pipeline.answer(&query).unwrap()
        };
        let (planned, _) = answer(text);
        assert_eq!(
            canonical(&naive),
            canonical(&planned),
            "pushdown through an OPTIONAL subtree changed the answer"
        );
    }

    /// An empty operand short-circuits the rest of the batch when the
    /// planner is on — and both modes agree on the (empty) answer.
    #[test]
    fn empty_join_input_short_circuits() {
        let text = "SELECT ?t ?m WHERE { { ?t a x:Unmapped } { ?t x:hasModel ?m } }";
        let (naive, ns_stats) = {
            let db = db();
            let onto = ontology();
            let maps = catalog();
            let pipeline =
                StaticPipeline::new(&onto, &maps, &db).with_planner(PlannerSettings::disabled());
            let query = crate::parse_sparql(text, &ns()).unwrap();
            pipeline.answer(&query).unwrap()
        };
        let (optimized, opt_stats) = answer(text);
        assert!(naive.is_empty());
        assert!(optimized.is_empty());
        assert_eq!(ns_stats.bgps, 2, "naive evaluates both operands");
        assert!(
            opt_stats.bgps <= ns_stats.bgps,
            "planner may prune after the empty input"
        );
    }

    #[test]
    fn values_joins_inline_bindings() {
        // Full form with a two-variable block.
        let (r, _) = answer(
            "SELECT ?t ?m WHERE { ?t x:hasModel ?m . \
             VALUES (?t) { (<http://x/turbine/1>) (<http://x/turbine/3>) } }",
        );
        assert_eq!(r.len(), 2, "two anchored turbines keep their models");
        // Single-variable short form.
        let (r, _) =
            answer("SELECT ?t ?m WHERE { VALUES ?t { <http://x/turbine/2> } ?t x:hasModel ?m }");
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "m"),
            Some(Term::Literal(Literal::string("SGT-800")))
        );
        // UNDEF joins with anything.
        let (r, _) = answer(
            "SELECT ?t ?m WHERE { ?t x:hasModel ?m . \
             VALUES (?t ?m) { (<http://x/turbine/1> UNDEF) } }",
        );
        assert_eq!(r.len(), 1);
    }

    /// A VALUES block is an exact-cardinality operand: the planner orders
    /// it first and pushes its bindings into the sibling BGP as a
    /// semi-join restriction — the anchor the streaming oracle's generator
    /// uses for window joins.
    #[test]
    fn values_anchor_drives_semi_join_pushdown() {
        let db = db();
        let onto = ontology();
        let maps = catalog();
        let stats = optique_relational::StatsCatalog::analyze(&db);
        let pipeline = StaticPipeline::new(&onto, &maps, &db).with_table_stats(&stats);
        let query = crate::parse_sparql(
            "SELECT ?t ?m WHERE { { ?t x:hasModel ?m } \
             VALUES ?t { <http://x/turbine/1> } }",
            &ns(),
        )
        .unwrap();
        let (r, s) = pipeline.answer(&query).unwrap();
        assert_eq!(r.len(), 1);
        assert!(s.join_reorders >= 1, "VALUES (1 row) runs first: {s:?}");
        assert!(s.semi_joins_pushed >= 1, "anchor restricts the BGP: {s:?}");
    }

    #[test]
    fn values_parse_errors_are_positioned() {
        for bad in [
            "SELECT ?x WHERE { VALUES { 1 } }",
            "SELECT ?x WHERE { VALUES (?x) { (1 2) } }",
            "SELECT ?x WHERE { VALUES (?x) { (?y) } }",
            "SELECT ?x WHERE { VALUES () { } }",
        ] {
            assert!(crate::parse_sparql(bad, &ns()).is_err(), "{bad}");
        }
    }

    #[test]
    fn split_union_chain_round_trips() {
        let sql = "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v";
        let statement = optique_relational::parse_select(sql).unwrap();
        let parts = split_union_chain(statement);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.union_all.is_none()));
        assert!(parts[1].to_string().contains("FROM u"));
    }

    #[test]
    fn filter_expressions_translate_to_sql() {
        let lookup = |v: &str| -> Option<Expr> { (v == "v").then(|| Expr::col("u0.value")) };
        // ?v > 5 && !(?v = 9)
        let expr = Expression::And(
            Box::new(Expression::Compare(
                ComparisonOperator::Gt,
                Box::new(Expression::Var("v".into())),
                Box::new(Expression::Const(Term::Literal(Literal::integer(5)))),
            )),
            Box::new(Expression::Not(Box::new(Expression::Compare(
                ComparisonOperator::Eq,
                Box::new(Expression::Var("v".into())),
                Box::new(Expression::Const(Term::Literal(Literal::integer(9)))),
            )))),
        );
        let sql = expression_to_sql(&expr, &lookup).unwrap();
        assert_eq!(sql.to_string(), "((u0.value > 5) AND NOT ((u0.value = 9)))");
        // Unprojected variables and REGEX are rejected.
        assert!(expression_to_sql(&Expression::Var("w".into()), &lookup).is_err());
        assert!(expression_to_sql(
            &Expression::Regex {
                text: Box::new(Expression::Var("v".into())),
                pattern: "^x".into(),
                case_insensitive: false,
            },
            &lookup
        )
        .is_err());
    }
}
