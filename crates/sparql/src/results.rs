//! Query results: solution tables and booleans, with an ASCII rendering
//! for examples and the dashboard.

use optique_rdf::Term;

use crate::eval::SolutionSet;

/// The answer to a SPARQL query.
#[derive(Clone, Debug, PartialEq)]
pub enum SparqlResults {
    /// `SELECT` solutions.
    Solutions(SolutionSet),
    /// An `ASK` verdict.
    Boolean(bool),
}

impl SparqlResults {
    /// Number of solutions (0 or 1 for ASK).
    pub fn len(&self) -> usize {
        match self {
            SparqlResults::Solutions(s) => s.len(),
            SparqlResults::Boolean(b) => usize::from(*b),
        }
    }

    /// True when there are no solutions (or the ASK answer is false).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The projected variable names (empty for ASK).
    pub fn vars(&self) -> &[String] {
        match self {
            SparqlResults::Solutions(s) => &s.vars,
            SparqlResults::Boolean(_) => &[],
        }
    }

    /// The solution rows (empty for ASK).
    pub fn rows(&self) -> &[Vec<Option<Term>>] {
        match self {
            SparqlResults::Solutions(s) => &s.rows,
            SparqlResults::Boolean(_) => &[],
        }
    }

    /// The ASK verdict, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SparqlResults::Boolean(b) => Some(*b),
            SparqlResults::Solutions(_) => None,
        }
    }

    /// The bound value of `var` in row `row`.
    pub fn value(&self, row: usize, var: &str) -> Option<Term> {
        match self {
            SparqlResults::Solutions(s) => s.rows.get(row).and_then(|r| s.value(r, var)),
            SparqlResults::Boolean(_) => None,
        }
    }

    /// Renders up to `limit` rows as an ASCII table (or the ASK verdict).
    pub fn render(&self, limit: usize) -> String {
        match self {
            SparqlResults::Boolean(b) => format!("ASK → {b}\n"),
            SparqlResults::Solutions(s) => {
                let mut out = String::new();
                out.push_str(
                    &s.vars
                        .iter()
                        .map(|v| format!("?{v}"))
                        .collect::<Vec<_>>()
                        .join(" | "),
                );
                out.push('\n');
                for row in s.rows.iter().take(limit) {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|t| match t {
                            Some(term) => term.to_string(),
                            None => "—".to_string(),
                        })
                        .collect();
                    out.push_str(&cells.join(" | "));
                    out.push('\n');
                }
                if s.rows.len() > limit {
                    out.push_str(&format!("… {} more rows\n", s.rows.len() - limit));
                }
                out
            }
        }
    }
}
