//! Positioned SPARQL errors.

use std::fmt;

/// Where in the query text something went wrong (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Position {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub column: u32,
}

impl Position {
    /// The start of the text.
    pub fn start() -> Self {
        Position { line: 1, column: 1 }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// A SPARQL front-end failure: lexing, parsing, or pipeline execution.
#[derive(Clone, Debug, PartialEq)]
pub struct SparqlError {
    /// Which stage failed.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Source position for lex/parse errors.
    pub position: Option<Position>,
}

/// Stages a query can fail in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Tokenization failed.
    Lex,
    /// The token stream does not form a query in the supported subset.
    Parse,
    /// The query parsed but cannot be lowered (e.g. a variable predicate).
    Unsupported,
    /// Rewrite / unfold / execution failed.
    Execution,
}

impl SparqlError {
    /// A lex error at `position`.
    pub fn lex(message: impl Into<String>, position: Position) -> Self {
        SparqlError {
            kind: ErrorKind::Lex,
            message: message.into(),
            position: Some(position),
        }
    }

    /// A parse error at `position`.
    pub fn parse(message: impl Into<String>, position: Position) -> Self {
        SparqlError {
            kind: ErrorKind::Parse,
            message: message.into(),
            position: Some(position),
        }
    }

    /// A supported-subset violation at `position`.
    pub fn unsupported(message: impl Into<String>, position: Position) -> Self {
        SparqlError {
            kind: ErrorKind::Unsupported,
            message: message.into(),
            position: Some(position),
        }
    }

    /// A pipeline failure (no source position).
    pub fn execution(message: impl Into<String>) -> Self {
        SparqlError {
            kind: ErrorKind::Execution,
            message: message.into(),
            position: None,
        }
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Unsupported => "unsupported query form",
            ErrorKind::Execution => "execution error",
        };
        match self.position {
            Some(pos) => write!(f, "{stage} at {pos}: {}", self.message),
            None => write!(f, "{stage}: {}", self.message),
        }
    }
}

impl std::error::Error for SparqlError {}
