//! SPARQL tokenizer with line/column tracking.

use crate::error::{Position, SparqlError};

/// A token plus where it starts.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based source position of the first character.
    pub position: Position,
}

/// SPARQL token kinds (the subset the parser consumes).
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Bare word: keyword (`SELECT`), `a`, or aggregate name.
    Word(String),
    /// Prefixed name `prefix:local` (either part may be empty: `:MonInc`).
    PName(String),
    /// `?name` / `$name` variable.
    Var(String),
    /// `<…>` IRI reference.
    IriRef(String),
    /// String literal (datatype arrives as `^^` + PName/IriRef).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal/double literal.
    Float(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (when not an IRI ref)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `^^`
    Carets,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    column: u32,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenizes SPARQL text.
pub fn lex(text: &str) -> Result<Vec<Token>, SparqlError> {
    let mut cursor = Cursor::new(text);
    let mut tokens = Vec::new();

    loop {
        // Skip whitespace and `# …` comments.
        loop {
            match cursor.peek() {
                Some(c) if c.is_whitespace() => {
                    cursor.bump();
                }
                Some('#') => {
                    while let Some(c) = cursor.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let position = cursor.position();
        let Some(c) = cursor.peek() else { break };

        let kind = match c {
            '{' => {
                cursor.bump();
                TokenKind::LBrace
            }
            '}' => {
                cursor.bump();
                TokenKind::RBrace
            }
            '(' => {
                cursor.bump();
                TokenKind::LParen
            }
            ')' => {
                cursor.bump();
                TokenKind::RParen
            }
            ',' => {
                cursor.bump();
                TokenKind::Comma
            }
            ';' => {
                cursor.bump();
                TokenKind::Semicolon
            }
            '*' => {
                cursor.bump();
                TokenKind::Star
            }
            '/' => {
                cursor.bump();
                TokenKind::Slash
            }
            '+' => {
                cursor.bump();
                TokenKind::Plus
            }
            '=' => {
                cursor.bump();
                TokenKind::Eq
            }
            '^' => {
                cursor.bump();
                if cursor.peek() == Some('^') {
                    cursor.bump();
                    TokenKind::Carets
                } else {
                    return Err(SparqlError::lex("lone '^' (expected '^^')", position));
                }
            }
            '&' => {
                cursor.bump();
                if cursor.peek() == Some('&') {
                    cursor.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(SparqlError::lex("lone '&' (expected '&&')", position));
                }
            }
            '|' => {
                cursor.bump();
                if cursor.peek() == Some('|') {
                    cursor.bump();
                    TokenKind::OrOr
                } else {
                    return Err(SparqlError::lex("lone '|' (expected '||')", position));
                }
            }
            '!' => {
                cursor.bump();
                if cursor.peek() == Some('=') {
                    cursor.bump();
                    TokenKind::Ne
                } else {
                    TokenKind::Bang
                }
            }
            '>' => {
                cursor.bump();
                if cursor.peek() == Some('=') {
                    cursor.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '<' => {
                cursor.bump();
                // `<…>` IRI vs `<` / `<=` comparison: an IRI ref never
                // contains whitespace, and comparison operands start with
                // whitespace, a variable, a number, a negation, or a
                // parenthesized/quoted expression (`?x<5`, `?x<(…)`).
                match cursor.peek() {
                    Some('=') => {
                        cursor.bump();
                        TokenKind::Le
                    }
                    Some(c2)
                        if c2.is_whitespace()
                            || c2.is_ascii_digit()
                            || matches!(c2, '?' | '$' | '(' | '"' | '\'' | '-' | '+' | '!') =>
                    {
                        TokenKind::Lt
                    }
                    None => TokenKind::Lt,
                    _ => {
                        let mut iri = String::new();
                        loop {
                            match cursor.bump() {
                                Some('>') => break,
                                Some(c2) if c2.is_whitespace() => {
                                    return Err(SparqlError::lex(
                                        "whitespace inside IRI reference",
                                        position,
                                    ))
                                }
                                Some(c2) => iri.push(c2),
                                None => {
                                    return Err(SparqlError::lex(
                                        "unterminated IRI reference",
                                        position,
                                    ))
                                }
                            }
                        }
                        TokenKind::IriRef(iri)
                    }
                }
            }
            '?' | '$' => {
                cursor.bump();
                let mut name = String::new();
                while let Some(c2) = cursor.peek() {
                    if is_name_char(c2) {
                        name.push(c2);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(SparqlError::lex("empty variable name", position));
                }
                TokenKind::Var(name)
            }
            '"' | '\'' => {
                let quote = c;
                cursor.bump();
                let mut s = String::new();
                loop {
                    match cursor.bump() {
                        Some('\\') => match cursor.bump() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(other) => s.push(other.to_owned()),
                            None => return Err(SparqlError::lex("unterminated string", position)),
                        },
                        Some(c2) if c2 == quote => break,
                        Some(c2) => s.push(c2),
                        None => return Err(SparqlError::lex("unterminated string", position)),
                    }
                }
                TokenKind::Str(s)
            }
            '-' => {
                cursor.bump();
                TokenKind::Minus
            }
            c if c.is_ascii_digit() => lex_number(&mut cursor, position)?,
            '.' => {
                cursor.bump();
                TokenKind::Dot
            }
            c if c.is_alphabetic() || c == '_' || c == ':' => {
                let mut word = String::new();
                while let Some(c2) = cursor.peek() {
                    if is_name_char(c2) {
                        word.push(c2);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                // `prefix:local` / `:local` become prefixed names; a bare
                // word stays a word (keyword or `a`).
                if cursor.peek() == Some(':') {
                    cursor.bump();
                    let mut local = String::new();
                    while let Some(c2) = cursor.peek() {
                        if is_name_char(c2) || c2 == '/' {
                            local.push(c2);
                            cursor.bump();
                        } else {
                            break;
                        }
                    }
                    TokenKind::PName(format!("{word}:{local}"))
                } else if word.is_empty() {
                    return Err(SparqlError::lex(
                        format!("unexpected character {c:?}"),
                        position,
                    ));
                } else {
                    TokenKind::Word(word)
                }
            }
            other => {
                return Err(SparqlError::lex(
                    format!("unexpected character {other:?}"),
                    position,
                ))
            }
        };
        tokens.push(Token { kind, position });
    }
    Ok(tokens)
}

fn lex_number(cursor: &mut Cursor<'_>, position: Position) -> Result<TokenKind, SparqlError> {
    let mut text = String::new();
    let mut saw_dot = false;
    let mut saw_exp = false;
    while let Some(c) = cursor.peek() {
        match c {
            d if d.is_ascii_digit() => {
                text.push(d);
                cursor.bump();
            }
            '.' if !saw_dot && !saw_exp => {
                // Lookahead: `1.` followed by a non-digit terminates the
                // triple instead (e.g. `?x :p 1.` inside a BGP).
                let mut clone = cursor.chars.clone();
                clone.next();
                match clone.peek() {
                    Some(d) if d.is_ascii_digit() => {
                        saw_dot = true;
                        text.push('.');
                        cursor.bump();
                    }
                    _ => break,
                }
            }
            'e' | 'E' if !saw_exp => {
                saw_exp = true;
                text.push('e');
                cursor.bump();
                if matches!(cursor.peek(), Some('+') | Some('-')) {
                    text.push(cursor.bump().expect("peeked"));
                }
            }
            _ => break,
        }
    }
    if saw_dot || saw_exp {
        text.parse::<f64>()
            .map(TokenKind::Float)
            .map_err(|_| SparqlError::lex(format!("bad numeric literal {text:?}"), position))
    } else {
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| SparqlError::lex(format!("bad integer literal {text:?}"), position))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(text).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_query_tokens() {
        let toks = kinds("SELECT ?x WHERE { ?x a sie:Sensor . }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Var("x".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::LBrace,
                TokenKind::Var("x".into()),
                TokenKind::Word("a".into()),
                TokenKind::PName("sie:Sensor".into()),
                TokenKind::Dot,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn iri_vs_comparison() {
        assert_eq!(
            kinds("<http://x/p> ?a < ?b ?c <= 4"),
            vec![
                TokenKind::IriRef("http://x/p".into()),
                TokenKind::Var("a".into()),
                TokenKind::Lt,
                TokenKind::Var("b".into()),
                TokenKind::Var("c".into()),
                TokenKind::Le,
                TokenKind::Int(4),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds(r#"42 -7 3.5 1e3 "hi" 'there'"#),
            vec![
                TokenKind::Int(42),
                TokenKind::Minus,
                TokenKind::Int(7),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Str("hi".into()),
                TokenKind::Str("there".into()),
            ]
        );
    }

    #[test]
    fn trailing_dot_after_integer_stays_a_dot() {
        assert_eq!(
            kinds("?x sie:hasValue 4 . }"),
            vec![
                TokenKind::Var("x".into()),
                TokenKind::PName("sie:hasValue".into()),
                TokenKind::Int(4),
                TokenKind::Dot,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn comparison_without_spaces() {
        assert_eq!(
            kinds("?x<5 && ?y<(2+1)"),
            vec![
                TokenKind::Var("x".into()),
                TokenKind::Lt,
                TokenKind::Int(5),
                TokenKind::AndAnd,
                TokenKind::Var("y".into()),
                TokenKind::Lt,
                TokenKind::LParen,
                TokenKind::Int(2),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("&& || ! != = >= > ^^"),
            vec![
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ne,
                TokenKind::Eq,
                TokenKind::Ge,
                TokenKind::Gt,
                TokenKind::Carets,
            ]
        );
    }

    #[test]
    fn comments_skipped_and_positions_tracked() {
        let toks = lex("# header\nSELECT ?x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Word("SELECT".into()));
        assert_eq!(toks[0].position, Position { line: 2, column: 1 });
        assert_eq!(toks[1].position, Position { line: 2, column: 8 });
    }

    #[test]
    fn default_prefix_pname() {
        assert_eq!(kinds(":MonInc"), vec![TokenKind::PName(":MonInc".into())]);
    }

    #[test]
    fn error_positions() {
        let err = lex("SELECT @x").unwrap_err();
        assert_eq!(err.position, Some(Position { line: 1, column: 8 }));
        assert!(lex("\"unterminated").is_err());
        assert!(lex("<http://x /p>").is_err());
    }
}
