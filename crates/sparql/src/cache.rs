//! Per-BGP result caching for the static pipeline.
//!
//! Unfolding is the expensive half of static query answering: one basic
//! graph pattern fans out into a `UNION ALL` over every mapping combination
//! (Hovland et al.'s OBDA-constraints work measures exactly this
//! redundancy). The *same* BGP routinely recurs — across `OPTIONAL`/`UNION`
//! branches of one query, and across queries, since dashboards re-ask the
//! same patterns. The [`BgpCache`] memoizes the *solution set* of a BGP
//! (post-rewrite, post-unfold, post-execution, post-dedup), so a repeat
//! skips the whole rewrite → unfold → SQL pipeline.
//!
//! Invalidation on a relational write is **dependency-tracked**: every
//! entry records the base tables its unfolded SQL read
//! ([`BgpCache::store_with_tables`]), and [`BgpCache::invalidate_table`]
//! evicts only the entries that depend on the written table — a write to
//! `turbines` leaves cached sensor BGPs warm. Entries stored with unknown
//! provenance (no table set) are evicted by every write, and
//! [`BgpCache::invalidate`] keeps the whole-cache clear as the
//! conservative fallback (`OptiquePlatform` exposes a knob for it).
//! Hit/miss/invalidation counters feed the platform dashboard.
//!
//! **Concurrency contract.** The cache maintains one invariant: every
//! entry it holds is valid for the database snapshot(s) installed while
//! the current [`BgpCache::generation`] was in force — stores stamped
//! with an older generation are rejected, and invalidation (which bumps
//! the generation) only keeps entries it can prove stay valid. A reader
//! therefore captures the generation *together with* its database
//! snapshot (the platform bundles both in one atomically-swapped
//! `PlatformSnapshot`) and looks up through [`BgpCache::lookup_any_at`],
//! which answers only when the reader's generation is still current —
//! so a query holding a pre-write snapshot can never be served a
//! post-write entry, nor a post-write reader a pre-write entry.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use optique_rewrite::Atom;

use crate::eval::SolutionSet;

/// How many BGP solution sets the cache retains (FIFO eviction).
const CAPACITY: usize = 256;

/// A shared, thread-safe cache of BGP solution sets.
#[derive(Default)]
pub struct BgpCache {
    inner: Mutex<Entries>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    /// Bumped by every invalidation; stores stamped with an older
    /// generation are rejected, so a computation that began before a
    /// relational write cannot repopulate the cache with stale answers.
    /// (Deliberately one global counter even for per-table eviction: an
    /// in-flight store cannot prove which snapshot it read, so any write
    /// since its capture drops it — conservative, never stale.)
    generation: AtomicU64,
}

/// Monotonic per-table write versions, kept alongside the database snapshot
/// they describe. The novelty-overlay write path bumps the written table's
/// version on every append (and the global counter with it) **without**
/// clearing any cache: a versioned entry answers a reader exactly when the
/// reader's snapshot carries the same versions for every table the entry
/// read ([`BgpCache::lookup_any_versioned`]). A background merge folds
/// overlay rows into the base without changing what any table contains, so
/// it bumps *nothing* — versioned entries stay warm across merges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableVersions {
    tables: HashMap<String, u64>,
    global: u64,
}

impl TableVersions {
    /// All-zero versions (a fresh deployment).
    pub fn new() -> Self {
        TableVersions::default()
    }

    /// The version of `table` (0 until its first write).
    pub fn of(&self, table: &str) -> u64 {
        self.tables.get(table).copied().unwrap_or(0)
    }

    /// The global write counter (bumped by every write to any table).
    pub fn global(&self) -> u64 {
        self.global
    }

    /// These versions after one write to `table`.
    pub fn bumped(&self, table: &str) -> TableVersions {
        let mut next = self.clone();
        *next.tables.entry(table.to_string()).or_insert(0) += 1;
        next.global += 1;
        next
    }
}

/// The versions a versioned entry was computed at: one `(table, version)`
/// pair per dependency when provenance is known, or the global counter
/// alone when it is not (such an entry answers only readers that have seen
/// no write at all since the store).
struct Stamp {
    deps: Option<Vec<(String, u64)>>,
    global: u64,
}

struct Entry {
    solutions: SolutionSet,
    /// Base tables the entry's unfolded SQL read; `None` = unknown
    /// provenance, evicted by any write.
    tables: Option<BTreeSet<String>>,
    /// Dependency versions at store time; `None` for entries stored
    /// through the generation API, which never answer versioned lookups.
    stamp: Option<Stamp>,
}

#[derive(Default)]
struct Entries {
    map: HashMap<String, Entry>,
    order: VecDeque<String>,
}

impl BgpCache {
    /// An empty cache.
    pub fn new() -> Self {
        BgpCache::default()
    }

    /// The canonical cache key of a BGP: its exact atom sequence. (Atom
    /// order determines the solution set's variable order, so two textual
    /// permutations of one BGP cache separately — a correctness choice, not
    /// a limitation.)
    pub fn key(atoms: &[Atom]) -> String {
        format!("{atoms:?}")
    }

    /// The cache key of a BGP executed under a semi-join restriction: the
    /// restricted solution set is a *subset* of the plain BGP's, so it must
    /// never serve a plain lookup — the restriction fingerprint keeps the
    /// entries apart.
    pub fn restricted_key(atoms: &[Atom], fingerprint: &str) -> String {
        format!("{atoms:?}⋉{fingerprint}")
    }

    /// Looks up a BGP's cached solutions at the current generation,
    /// counting a hit or a miss. Only correct when the caller's database
    /// snapshot cannot be stale (single-writer tests, static fixtures);
    /// concurrent readers use [`Self::lookup_any_at`] with the generation
    /// captured alongside their snapshot.
    pub fn lookup(&self, key: &str) -> Option<SolutionSet> {
        self.lookup_any(&[key])
    }

    /// [`Self::lookup_any_at`] at the current generation.
    pub fn lookup_any(&self, keys: &[&str]) -> Option<SolutionSet> {
        let inner = self.inner.lock().expect("cache lock");
        let generation = self.generation.load(Ordering::Acquire);
        self.lookup_locked(&inner, keys, generation)
    }

    /// Looks up the first of `keys` that is cached — one *logical* lookup:
    /// exactly one hit (any key present) or one miss (none) is counted,
    /// however many keys are probed. The pipeline uses this to prefer a
    /// restriction-exact entry while still accepting the unrestricted
    /// superset, without double-counting.
    ///
    /// `generation` is the cache generation the caller captured together
    /// with its database snapshot. When an invalidation has run since —
    /// the caller's snapshot may predate a relational write — every probe
    /// misses: the entries now in the cache describe a *different*
    /// snapshot than the one the caller is answering over, in either
    /// direction (a pre-write reader must not see post-write solutions
    /// any more than a post-write reader may see pre-write ones).
    pub fn lookup_any_at(&self, keys: &[&str], generation: u64) -> Option<SolutionSet> {
        // The generation is compared under the same lock invalidation
        // bumps it under, so "current" and "present in the map" are one
        // atomic observation.
        let inner = self.inner.lock().expect("cache lock");
        self.lookup_locked(&inner, keys, generation)
    }

    fn lookup_locked(
        &self,
        inner: &Entries,
        keys: &[&str],
        generation: u64,
    ) -> Option<SolutionSet> {
        if self.generation.load(Ordering::Acquire) == generation {
            for key in keys {
                if let Some(entry) = inner.map.get(*key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.solutions.clone());
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// The current invalidation generation. Capture it *before* computing a
    /// solution set and pass it to [`Self::store`]; an invalidation in
    /// between makes the store a no-op.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Stores a BGP's solutions computed at `generation` with unknown
    /// table provenance — such entries are evicted by *every* relational
    /// write. Prefer [`Self::store_with_tables`] when the tables the
    /// solutions were read from are known.
    pub fn store(&self, key: String, solutions: SolutionSet, generation: u64) {
        self.store_with_tables(key, solutions, generation, None);
    }

    /// Stores a BGP's solutions computed at `generation`, recording the
    /// base tables the unfolded SQL read (`tables`) so a later
    /// [`Self::invalidate_table`] evicts only dependent entries. Evicts the
    /// oldest entry when full. Rejected (dropped) when the cache has been
    /// invalidated since `generation` was captured — the solutions describe
    /// a superseded database snapshot.
    pub fn store_with_tables(
        &self,
        key: String,
        solutions: SolutionSet,
        generation: u64,
        tables: Option<BTreeSet<String>>,
    ) {
        let mut inner = self.inner.lock().expect("cache lock");
        // Checked under the lock so no invalidation can interleave between
        // the check and the insert.
        if self.generation.load(Ordering::Acquire) != generation {
            return;
        }
        Self::insert_locked(
            &mut inner,
            key,
            Entry {
                solutions,
                tables,
                stamp: None,
            },
        );
    }

    fn insert_locked(inner: &mut Entries, key: String, entry: Entry) {
        if let Some(existing) = inner.map.get_mut(&key) {
            *existing = entry;
            return;
        }
        if inner.map.len() >= CAPACITY {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, entry);
    }

    /// Stores a BGP's solutions stamped with the versions (from the
    /// reader's snapshot) of every table the unfolded SQL read. Unlike
    /// [`Self::store_with_tables`] there is no generation gate: the stamp
    /// itself is the validity proof — a write that landed since the
    /// snapshot was taken bumped some dependency's version, so the entry
    /// simply stops matching newer readers (and never matches older ones
    /// it didn't already match).
    pub fn store_versioned(
        &self,
        key: String,
        solutions: SolutionSet,
        versions: &TableVersions,
        tables: Option<BTreeSet<String>>,
    ) {
        let stamp = Stamp {
            deps: tables
                .as_ref()
                .map(|deps| deps.iter().map(|t| (t.clone(), versions.of(t))).collect()),
            global: versions.global(),
        };
        let mut inner = self.inner.lock().expect("cache lock");
        Self::insert_locked(
            &mut inner,
            key,
            Entry {
                solutions,
                tables,
                stamp: Some(stamp),
            },
        );
    }

    /// Looks up the first of `keys` whose entry was stored at exactly the
    /// versions the reader's snapshot carries — one logical lookup, one
    /// hit or miss counted. An entry with known provenance matches when
    /// every dependency's version agrees; one with unknown provenance only
    /// when the global counter does. Entries stored through the
    /// generation API carry no stamp and never answer here.
    pub fn lookup_any_versioned(
        &self,
        keys: &[&str],
        versions: &TableVersions,
    ) -> Option<SolutionSet> {
        let inner = self.inner.lock().expect("cache lock");
        for key in keys {
            let Some(entry) = inner.map.get(*key) else {
                continue;
            };
            let Some(stamp) = &entry.stamp else { continue };
            let valid = match &stamp.deps {
                Some(deps) => deps.iter().all(|(t, v)| versions.of(t) == *v),
                None => stamp.global == versions.global(),
            };
            if valid {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.solutions.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Drops every entry (the conservative whole-cache invalidation),
    /// returning how many were evicted.
    pub fn invalidate(&self) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        let evicted = inner.map.len();
        inner.map.clear();
        inner.order.clear();
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Evicts only the entries that depend on `table` (read it in their
    /// unfolded SQL) or whose provenance is unknown; independent entries
    /// stay warm. Counts one invalidation and bumps the store generation —
    /// an in-flight computation cannot prove it read the pre-write
    /// snapshot, so its store is dropped regardless of which table it
    /// touched. Returns how many entries were evicted.
    pub fn invalidate_table(&self, table: &str) -> usize {
        let mut guard = self.inner.lock().expect("cache lock");
        let inner = &mut *guard;
        let before = inner.map.len();
        inner.map.retain(|_, entry| {
            entry
                .tables
                .as_ref()
                .is_some_and(|tables| !tables.contains(table))
        });
        let map = &inner.map;
        inner.order.retain(|k| map.contains_key(k));
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        before - inner.map.len()
    }

    /// Cumulative cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times the cache has been invalidated.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate in `[0, 1]`, `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }
}

impl std::fmt::Debug for BgpCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BgpCache({} entries, {} hits, {} misses)",
            self.len(),
            self.hits(),
            self.misses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_rdf::Term;

    fn solutions(n: i64) -> SolutionSet {
        SolutionSet {
            vars: vec!["x".into()],
            rows: (0..n)
                .map(|i| vec![Some(Term::iri(format!("http://x/{i}")))])
                .collect(),
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = BgpCache::new();
        assert!(cache.lookup("k").is_none());
        cache.store("k".into(), solutions(3), cache.generation());
        assert_eq!(cache.lookup("k").unwrap().len(), 3);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hit_rate(), Some(0.5));
    }

    #[test]
    fn invalidate_clears_and_counts() {
        let cache = BgpCache::new();
        cache.store("a".into(), solutions(1), cache.generation());
        cache.store("b".into(), solutions(2), cache.generation());
        assert_eq!(cache.invalidate(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.lookup("a").is_none());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = BgpCache::new();
        for i in 0..CAPACITY + 1 {
            cache.store(format!("k{i}"), solutions(1), cache.generation());
        }
        assert_eq!(cache.len(), CAPACITY);
        assert!(cache.lookup("k0").is_none(), "oldest entry evicted");
        assert!(cache.lookup("k1").is_some());
        assert!(cache.lookup(&format!("k{CAPACITY}")).is_some());
    }

    #[test]
    fn restore_overwrites_in_place() {
        let cache = BgpCache::new();
        cache.store("k".into(), solutions(1), cache.generation());
        cache.store("k".into(), solutions(5), cache.generation());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup("k").unwrap().len(), 5);
    }

    #[test]
    fn lookup_any_counts_once() {
        let cache = BgpCache::new();
        cache.store("plain".into(), solutions(3), cache.generation());
        // Fallback hit: restricted key absent, plain present → one hit.
        assert_eq!(cache.lookup_any(&["restricted", "plain"]).unwrap().len(), 3);
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        // Full miss over two keys still counts one miss.
        assert!(cache.lookup_any(&["a", "b"]).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn restricted_keys_never_collide_with_plain() {
        let plain = BgpCache::key(&[]);
        let restricted = BgpCache::restricted_key(&[], "fp");
        assert_ne!(plain, restricted);
        assert_ne!(
            BgpCache::restricted_key(&[], "a"),
            BgpCache::restricted_key(&[], "b")
        );
    }

    fn deps(tables: &[&str]) -> Option<std::collections::BTreeSet<String>> {
        Some(tables.iter().map(|t| t.to_string()).collect())
    }

    /// A write to one table evicts only the entries that read it; entries
    /// over other tables stay warm, and unknown-provenance entries always
    /// go.
    #[test]
    fn table_invalidation_evicts_only_dependents() {
        let cache = BgpCache::new();
        let generation = cache.generation();
        cache.store_with_tables(
            "sensors".into(),
            solutions(1),
            generation,
            deps(&["sensors"]),
        );
        cache.store_with_tables(
            "joined".into(),
            solutions(2),
            generation,
            deps(&["sensors", "turbines"]),
        );
        cache.store_with_tables(
            "turbines".into(),
            solutions(3),
            generation,
            deps(&["turbines"]),
        );
        cache.store("opaque".into(), solutions(4), generation);

        let evicted = cache.invalidate_table("sensors");
        assert_eq!(evicted, 3, "sensors, joined, and the unknown entry go");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("turbines").is_some(), "independent entry warm");
        assert!(cache.lookup("sensors").is_none());
        assert!(cache.lookup("joined").is_none());
        assert_eq!(cache.invalidations(), 1);
    }

    /// Per-table eviction still bumps the generation: an in-flight store
    /// captured before the write is dropped even for an unrelated table.
    #[test]
    fn table_invalidation_rejects_in_flight_stores() {
        let cache = BgpCache::new();
        let before = cache.generation();
        cache.invalidate_table("sensors");
        cache.store_with_tables("turbines".into(), solutions(1), before, deps(&["turbines"]));
        assert!(cache.is_empty(), "pre-write store dropped");
    }

    /// Eviction keeps the FIFO order coherent: surviving entries still
    /// evict oldest-first once capacity refills.
    #[test]
    fn table_invalidation_preserves_fifo_order() {
        let cache = BgpCache::new();
        let generation = cache.generation();
        cache.store_with_tables("a".into(), solutions(1), generation, deps(&["t_a"]));
        cache.store_with_tables("b".into(), solutions(1), generation, deps(&["t_b"]));
        cache.invalidate_table("t_a");
        let generation = cache.generation();
        for i in 0..CAPACITY - 1 {
            cache.store_with_tables(format!("k{i}"), solutions(1), generation, deps(&["t"]));
        }
        assert_eq!(cache.len(), CAPACITY);
        cache.store_with_tables("one-more".into(), solutions(1), generation, deps(&["t"]));
        assert!(cache.lookup("b").is_none(), "oldest survivor evicts first");
        assert!(cache.lookup("k0").is_some());
    }

    /// A reader whose snapshot predates an invalidation must miss on every
    /// probe — entries now in the cache describe a newer database snapshot
    /// than the one the reader is answering over.
    #[test]
    fn stale_generation_lookup_misses() {
        let cache = BgpCache::new();
        let before = cache.generation();
        cache.store_with_tables("sensors".into(), solutions(2), before, deps(&["sensors"]));
        assert!(cache.lookup_any_at(&["sensors"], before).is_some());

        // A write to an *unrelated* table keeps the entry — but a reader
        // still holding the pre-write generation can no longer use it: it
        // cannot prove which snapshot it paired the probe with.
        cache.invalidate_table("turbines");
        assert!(cache.lookup_any_at(&["sensors"], before).is_none());
        assert!(
            cache
                .lookup_any_at(&["sensors"], cache.generation())
                .is_some(),
            "a current-generation reader still hits the surviving entry"
        );
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }

    /// A versioned entry answers exactly the readers whose snapshots carry
    /// the versions it was stamped with — writes to a dependency hide it
    /// from newer readers, writes elsewhere don't.
    #[test]
    fn versioned_lookup_matches_on_dependency_versions() {
        let cache = BgpCache::new();
        let v0 = TableVersions::new();
        cache.store_versioned("sensors".into(), solutions(2), &v0, deps(&["sensors"]));

        assert!(cache.lookup_any_versioned(&["sensors"], &v0).is_some());
        // A write to an unrelated table leaves the entry answering both the
        // old and the new snapshot (its dependency's version is unchanged).
        let v1 = v0.bumped("turbines");
        assert!(cache.lookup_any_versioned(&["sensors"], &v1).is_some());
        // A write to the dependency hides it from post-write readers while
        // pre-write readers (still pinning v0/v1 snapshots) keep hitting.
        let v2 = v1.bumped("sensors");
        assert!(cache.lookup_any_versioned(&["sensors"], &v2).is_none());
        assert!(cache.lookup_any_versioned(&["sensors"], &v0).is_some());
        assert_eq!((cache.hits(), cache.misses()), (3, 1));
    }

    /// Unknown-provenance versioned entries pin the global counter: any
    /// write anywhere hides them.
    #[test]
    fn versioned_unknown_provenance_pins_global_counter() {
        let cache = BgpCache::new();
        let v0 = TableVersions::new();
        cache.store_versioned("opaque".into(), solutions(1), &v0, None);
        assert!(cache.lookup_any_versioned(&["opaque"], &v0).is_some());
        assert!(cache
            .lookup_any_versioned(&["opaque"], &v0.bumped("anything"))
            .is_none());
    }

    /// Generation-stored entries never answer versioned lookups (they
    /// carry no stamp), and versioned stores ignore the generation gate.
    #[test]
    fn versioned_and_generation_entries_stay_apart() {
        let cache = BgpCache::new();
        let v0 = TableVersions::new();
        cache.store("legacy".into(), solutions(1), cache.generation());
        assert!(cache.lookup_any_versioned(&["legacy"], &v0).is_none());
        // A generation bump (whole-cache invalidation) does not block a
        // versioned store — the stamp, not the generation, proves validity.
        cache.invalidate();
        cache.store_versioned("stamped".into(), solutions(2), &v0, deps(&["t"]));
        assert!(cache.lookup_any_versioned(&["stamped"], &v0).is_some());
    }

    /// A computation that began before an invalidation must not repopulate
    /// the cache with its (stale) result.
    #[test]
    fn stale_generation_store_is_rejected() {
        let cache = BgpCache::new();
        let before = cache.generation();
        cache.invalidate();
        cache.store("k".into(), solutions(3), before);
        assert!(cache.is_empty(), "stale store dropped");
        cache.store("k".into(), solutions(3), cache.generation());
        assert_eq!(cache.len(), 1, "fresh store lands");
    }
}
