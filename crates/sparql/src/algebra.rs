//! The SPARQL algebra (in the style of oxigraph's `spargebra`).
//!
//! A parsed query is a [`Query`]: a query form (`SELECT` / `ASK`) over a
//! [`GroupPattern`] — a sequence of pattern elements (triples blocks,
//! `OPTIONAL`, `UNION`, nested groups, `FILTER`s) — plus solution
//! modifiers. Basic graph patterns reuse the conjunctive-query atoms of
//! `optique_rewrite`, which makes the hand-off to PerfectRef rewriting a
//! plain move.

use std::fmt;

use optique_rdf::Term;
use optique_rewrite::{Atom, QueryTerm};

/// A parsed SPARQL query.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// `SELECT … WHERE { … }` with modifiers.
    Select(SelectQuery),
    /// `ASK { … }`.
    Ask(AskQuery),
}

impl Query {
    /// The query's WHERE pattern.
    pub fn pattern(&self) -> &GroupPattern {
        match self {
            Query::Select(q) => &q.pattern,
            Query::Ask(q) => &q.pattern,
        }
    }
}

/// A `SELECT` query.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectQuery {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection: named items, or `*` (all pattern variables).
    pub projection: Projection,
    /// The WHERE group pattern.
    pub pattern: GroupPattern,
    /// `GROUP BY` variables (non-empty implies aggregate projection).
    pub group_by: Vec<String>,
    /// ORDER / LIMIT / OFFSET.
    pub modifiers: SolutionModifier,
}

/// An `ASK` query.
#[derive(Clone, Debug, PartialEq)]
pub struct AskQuery {
    /// The pattern whose satisfiability is asked.
    pub pattern: GroupPattern,
}

/// The SELECT clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `SELECT *` — every visible pattern variable, in first-seen order.
    All,
    /// Explicit items (plain variables and/or aggregates).
    Items(Vec<SelectItem>),
}

/// One projected column.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `?v`.
    Var(String),
    /// `(AGG(…) AS ?alias)`.
    Aggregate {
        /// The aggregate function.
        func: AggregateFunction,
        /// `AGG(DISTINCT …)`?
        distinct: bool,
        /// The aggregated variable; `None` for `COUNT(*)`.
        var: Option<String>,
        /// The output column name.
        alias: String,
    },
}

impl SelectItem {
    /// The output column name of this item.
    pub fn name(&self) -> &str {
        match self {
            SelectItem::Var(v) => v,
            SelectItem::Aggregate { alias, .. } => alias,
        }
    }
}

/// Supported aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateFunction {
    /// Row / value count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum by term order.
    Min,
    /// Maximum by term order.
    Max,
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
        })
    }
}

/// A group graph pattern: the contents of one `{ … }`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupPattern {
    /// Elements in source order. FILTERs apply to the whole group.
    pub elements: Vec<PatternElement>,
}

/// One element of a group pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum PatternElement {
    /// A basic graph pattern (consecutive triples).
    Triples(Vec<Atom>),
    /// `OPTIONAL { … }` — left-joined against what precedes it.
    Optional(GroupPattern),
    /// `{ … } UNION { … } (UNION { … })*`.
    Union(Vec<GroupPattern>),
    /// A nested `{ … }` group.
    SubGroup(GroupPattern),
    /// `FILTER ( … )` — applied to the group's solutions.
    Filter(Expression),
    /// `VALUES (?v …) { (…) … }` — inline bindings, joined like any other
    /// operand.
    Values(ValuesBlock),
}

/// An inline `VALUES` data block: a small literal solution set. `UNDEF`
/// positions are unbound (they join with anything, like `OPTIONAL`-produced
/// unbound positions).
#[derive(Clone, Debug, PartialEq)]
pub struct ValuesBlock {
    /// The block's variables, in declaration order.
    pub vars: Vec<String>,
    /// One row per data tuple; `None` is `UNDEF`.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl GroupPattern {
    /// All variables mentioned anywhere in the pattern, in first-seen order.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        fn push(out: &mut Vec<String>, v: &str) {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
        for element in &self.elements {
            match element {
                PatternElement::Triples(atoms) => {
                    for atom in atoms {
                        for term in atom.terms() {
                            if let QueryTerm::Var(v) = term {
                                push(out, v);
                            }
                        }
                    }
                }
                PatternElement::Optional(g) | PatternElement::SubGroup(g) => g.collect_vars(out),
                PatternElement::Union(branches) => {
                    for branch in branches {
                        branch.collect_vars(out);
                    }
                }
                PatternElement::Filter(e) => {
                    for v in e.variables() {
                        push(out, &v);
                    }
                }
                PatternElement::Values(block) => {
                    for v in &block.vars {
                        push(out, v);
                    }
                }
            }
        }
    }

    /// True when the pattern contains an `OPTIONAL` anywhere (transitively
    /// through nested groups and `UNION` branches). The planner must not
    /// push semi-join restrictions into such a subtree: pruning rows below
    /// a left join can flip a match into a non-match, leaving variables
    /// unbound that then join with anything upstream — *adding* answers.
    pub fn contains_optional(&self) -> bool {
        self.elements.iter().any(|element| match element {
            PatternElement::Optional(_) => true,
            PatternElement::SubGroup(g) => g.contains_optional(),
            PatternElement::Union(branches) => branches.iter().any(|b| b.contains_optional()),
            PatternElement::Triples(_) | PatternElement::Filter(_) | PatternElement::Values(_) => {
                false
            }
        })
    }

    /// Lowers the pattern to a union of plain basic graph patterns, for
    /// callers that need *pure* conjunctive queries: nested groups flatten,
    /// `UNION` distributes, and `OPTIONAL`/`FILTER` are rejected with a
    /// description of what blocked the lowering.
    pub fn bgp_disjuncts(&self) -> Result<Vec<Vec<Atom>>, String> {
        let lowered = self.bgp_disjuncts_with_filters()?;
        if lowered.iter().any(|(_, filters)| !filters.is_empty()) {
            return Err("FILTER cannot be lowered to a conjunctive query".into());
        }
        Ok(lowered.into_iter().map(|(atoms, _)| atoms).collect())
    }

    /// Lowers the pattern to a union of `(BGP, filters)` pairs — the form
    /// STARQL's WHERE clause consumes: nested groups flatten and `UNION`
    /// distributes as in [`Self::bgp_disjuncts`], while `FILTER`s attach to
    /// the disjuncts they scope over (a filter inside a `UNION` branch
    /// constrains only that branch's disjuncts). `OPTIONAL` still blocks
    /// the lowering.
    pub fn bgp_disjuncts_with_filters(&self) -> Result<Vec<FilteredDisjunct>, String> {
        let mut disjuncts: Vec<FilteredDisjunct> = vec![(Vec::new(), Vec::new())];
        for element in &self.elements {
            match element {
                PatternElement::Triples(atoms) => {
                    for (d, _) in &mut disjuncts {
                        d.extend(atoms.iter().cloned());
                    }
                }
                PatternElement::SubGroup(g) => {
                    disjuncts = cross(disjuncts, g.bgp_disjuncts_with_filters()?);
                }
                PatternElement::Union(branches) => {
                    let mut united = Vec::new();
                    for branch in branches {
                        united.extend(branch.bgp_disjuncts_with_filters()?);
                    }
                    disjuncts = cross(disjuncts, united);
                }
                PatternElement::Optional(_) => {
                    return Err("OPTIONAL cannot be lowered to a conjunctive query".into())
                }
                PatternElement::Values(_) => {
                    return Err("VALUES cannot be lowered to a conjunctive query".into())
                }
                PatternElement::Filter(e) => {
                    for (_, filters) in &mut disjuncts {
                        filters.push(e.clone());
                    }
                }
            }
        }
        Ok(disjuncts)
    }
}

/// One disjunct of a lowered group pattern: a basic graph pattern plus the
/// `FILTER` expressions scoping over it.
pub type FilteredDisjunct = (Vec<Atom>, Vec<Expression>);

fn cross(left: Vec<FilteredDisjunct>, right: Vec<FilteredDisjunct>) -> Vec<FilteredDisjunct> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for (la, lf) in &left {
        for (ra, rf) in &right {
            let mut atoms = la.clone();
            atoms.extend(ra.iter().cloned());
            let mut filters = lf.clone();
            filters.extend(rf.iter().cloned());
            out.push((atoms, filters));
        }
    }
    out
}

/// A FILTER / ORDER BY expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant term.
    Const(Term),
    /// `a || b`.
    Or(Box<Expression>, Box<Expression>),
    /// `a && b`.
    And(Box<Expression>, Box<Expression>),
    /// `!a`.
    Not(Box<Expression>),
    /// Comparison.
    Compare(ComparisonOperator, Box<Expression>, Box<Expression>),
    /// Arithmetic.
    Arithmetic(ArithmeticOperator, Box<Expression>, Box<Expression>),
    /// `REGEX(expr, "pattern" [, "i"])` — the regex-lite dialect: plain
    /// substring match with optional `^` / `$` anchors and the `i` flag.
    Regex {
        /// The text expression.
        text: Box<Expression>,
        /// The pattern.
        pattern: String,
        /// Case-insensitive?
        case_insensitive: bool,
    },
    /// `BOUND(?v)`.
    Bound(String),
}

impl Expression {
    /// All variables referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expression::Var(v) | Expression::Bound(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expression::Const(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Compare(_, a, b)
            | Expression::Arithmetic(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expression::Not(a) => a.collect_vars(out),
            Expression::Regex { text, .. } => text.collect_vars(out),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComparisonOperator {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithmeticOperator {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// ORDER BY / LIMIT / OFFSET.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolutionModifier {
    /// Sort keys in priority order; `true` = descending.
    pub order_by: Vec<(Expression, bool)>,
    /// Row cap after ordering and OFFSET.
    pub limit: Option<usize>,
    /// Rows skipped after ordering.
    pub offset: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_rdf::Iri;

    fn atom(class: &str, var: &str) -> Atom {
        Atom::class(Iri::new(format!("http://x/{class}")), QueryTerm::var(var))
    }

    #[test]
    fn variables_first_seen_order() {
        let g = GroupPattern {
            elements: vec![
                PatternElement::Triples(vec![atom("A", "b"), atom("B", "a")]),
                PatternElement::Filter(Expression::Var("c".into())),
            ],
        };
        assert_eq!(g.variables(), vec!["b", "a", "c"]);
    }

    #[test]
    fn bgp_disjuncts_distribute_union() {
        let g = GroupPattern {
            elements: vec![
                PatternElement::Triples(vec![atom("A", "x")]),
                PatternElement::Union(vec![
                    GroupPattern {
                        elements: vec![PatternElement::Triples(vec![atom("B", "x")])],
                    },
                    GroupPattern {
                        elements: vec![PatternElement::Triples(vec![atom("C", "x")])],
                    },
                ]),
            ],
        };
        let ds = g.bgp_disjuncts().unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].len(), 2);
        assert_eq!(ds[1].len(), 2);
    }

    #[test]
    fn optional_blocks_lowering() {
        let g = GroupPattern {
            elements: vec![PatternElement::Optional(GroupPattern::default())],
        };
        assert!(g.bgp_disjuncts().unwrap_err().contains("OPTIONAL"));
    }
}
