//! Time-based sliding windows — the `timeSlidingWindow` operator.
//!
//! "timeSlidingWindow groups tuples that belong to the same time window and
//! associates them with a unique window id." Windows of range `r` close at
//! `start + k·slide` (k = 0, 1, …) and cover the half-open interval
//! `(close − r, close]` — the CQL snapshot convention, matching the STARQL
//! window `[NOW − r, NOW] → slide`.

use optique_relational::{Column, ColumnType, Schema, SqlError, Table, Value};

use crate::stream::Stream;

/// A window specification: range and slide, in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window width.
    pub range_ms: i64,
    /// Distance between consecutive window closes.
    pub slide_ms: i64,
}

impl WindowSpec {
    /// Builds a spec, validating positivity.
    pub fn new(range_ms: i64, slide_ms: i64) -> Result<Self, SqlError> {
        if range_ms <= 0 || slide_ms <= 0 {
            return Err(SqlError::Execution(format!(
                "window range and slide must be positive, got range={range_ms} slide={slide_ms}"
            )));
        }
        Ok(WindowSpec { range_ms, slide_ms })
    }

    /// The close time of window `k` with the first close at `start`.
    pub fn close_time(&self, start: i64, k: u64) -> i64 {
        start + (k as i64) * self.slide_ms
    }

    /// The `(open, close]` bounds of window `k`.
    pub fn bounds(&self, start: i64, k: u64) -> (i64, i64) {
        let close = self.close_time(start, k);
        (close - self.range_ms, close)
    }

    /// The inclusive id range of windows containing a tuple at `ts`
    /// (`None` when the tuple precedes every window).
    pub fn windows_containing(&self, start: i64, ts: i64) -> Option<(u64, u64)> {
        // Need close_k ∈ [ts, ts + range): k ≥ (ts − start)/slide and
        // close_k < ts + range.
        let lo_num = ts - start;
        let k_min = if lo_num <= 0 {
            0
        } else {
            div_ceil(lo_num, self.slide_ms)
        };
        let hi_num = ts + self.range_ms - start; // close_k < hi_num
        if hi_num <= 0 {
            return None;
        }
        let k_max = div_ceil(hi_num, self.slide_ms) - 1;
        if k_max < k_min {
            return None;
        }
        Some((k_min as u64, k_max as u64))
    }

    /// Number of windows each tuple lands in (when slide divides range).
    pub fn windows_per_tuple(&self) -> i64 {
        div_ceil(self.range_ms, self.slide_ms)
    }

    /// The id of the last window closing at or before `ts` (`None` if `ts`
    /// precedes the first close).
    pub fn last_closed(&self, start: i64, ts: i64) -> Option<u64> {
        if ts < start {
            return None;
        }
        Some(((ts - start) / self.slide_ms) as u64)
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a <= 0 {
        0
    } else {
        (a + b - 1) / b
    }
}

/// Applies `timeSlidingWindow` to a stream over the window-id range
/// `[first_window, last_window]`: returns a relation whose first column is
/// the window id, followed by the stream's columns; tuples are replicated
/// into every window containing them, ordered by window id.
pub fn time_sliding_window(
    stream: &Stream,
    spec: WindowSpec,
    start: i64,
    first_window: u64,
    last_window: u64,
) -> Result<Table, SqlError> {
    let mut columns = vec![Column::new("window_id", ColumnType::Int)];
    columns.extend(stream.table.schema.columns().iter().cloned());
    let schema = Schema::qualified(&stream.name, columns);
    let mut out = Table::empty(schema);
    for k in first_window..=last_window {
        let (open, close) = spec.bounds(start, k);
        for row in stream.slice(open, close) {
            let mut tagged = Vec::with_capacity(row.len() + 1);
            tagged.push(Value::Int(k as i64));
            tagged.extend(row.iter().cloned());
            out.push_row(tagged)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{Column, ColumnType, Schema, Table};

    fn stream_with_times(times: &[i64]) -> Stream {
        let schema = Schema::qualified(
            "s",
            vec![
                Column::new("ts", ColumnType::Timestamp),
                Column::new("v", ColumnType::Int),
            ],
        );
        let rows = times
            .iter()
            .enumerate()
            .map(|(i, &t)| vec![Value::Timestamp(t), Value::Int(i as i64)])
            .collect();
        Stream::new("s", Table::new(schema, rows).unwrap(), 0).unwrap()
    }

    #[test]
    fn spec_validation() {
        assert!(WindowSpec::new(0, 1).is_err());
        assert!(WindowSpec::new(10, -1).is_err());
        assert!(WindowSpec::new(10_000, 1_000).is_ok());
    }

    #[test]
    fn bounds_and_close_times() {
        let w = WindowSpec::new(10_000, 1_000).unwrap();
        assert_eq!(w.bounds(0, 0), (-10_000, 0));
        assert_eq!(w.bounds(0, 5), (-5_000, 5_000));
        assert_eq!(w.windows_per_tuple(), 10);
    }

    #[test]
    fn tuple_window_membership() {
        let w = WindowSpec::new(10_000, 1_000).unwrap();
        // Tuple at t=0 is in windows closing at 0..=9000 (close < 10000).
        assert_eq!(w.windows_containing(0, 0), Some((0, 9)));
        // Tuple at 2500 is in windows closing at 3000..=12000.
        assert_eq!(w.windows_containing(0, 2500), Some((3, 12)));
    }

    #[test]
    fn tumbling_window_membership() {
        let w = WindowSpec::new(1_000, 1_000).unwrap();
        // Tumbling: each tuple in exactly one window; (open, close] semantics
        // put a tuple exactly at a close time into that window.
        assert_eq!(w.windows_containing(0, 1_000), Some((1, 1)));
        assert_eq!(w.windows_containing(0, 999), Some((1, 1)));
        assert_eq!(w.windows_containing(0, 1_001), Some((2, 2)));
    }

    #[test]
    fn tuple_before_all_windows() {
        let w = WindowSpec::new(1_000, 1_000).unwrap();
        assert_eq!(w.windows_containing(100_000, 5_000), None);
    }

    #[test]
    fn every_tuple_lands_in_its_windows() {
        // Invariant: materialized window content agrees with per-tuple
        // membership computation.
        let w = WindowSpec::new(5_000, 2_000).unwrap();
        let s = stream_with_times(&[0, 1_000, 2_500, 4_000, 8_000, 9_999]);
        let table = time_sliding_window(&s, w, 0, 0, 8).unwrap();
        for row in &table.rows {
            let wid = row[0].as_i64().unwrap() as u64;
            let ts = row[1].as_i64().unwrap();
            let (lo, hi) = w.windows_containing(0, ts).unwrap();
            assert!(
                wid >= lo && wid <= hi,
                "tuple at {ts} misplaced in window {wid}"
            );
        }
        // And conversely: count matches the sum over windows of slice sizes.
        let mut expected = 0;
        for k in 0..=8u64 {
            let (open, close) = w.bounds(0, k);
            expected += s.slice(open, close).len();
        }
        assert_eq!(table.len(), expected);
    }

    #[test]
    fn window_output_sorted_by_wid() {
        let w = WindowSpec::new(2_000, 1_000).unwrap();
        let s = stream_with_times(&[0, 500, 1_500]);
        let table = time_sliding_window(&s, w, 0, 0, 3).unwrap();
        let wids: Vec<i64> = table.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = wids.clone();
        sorted.sort_unstable();
        assert_eq!(wids, sorted);
    }

    #[test]
    fn last_closed() {
        let w = WindowSpec::new(10_000, 1_000).unwrap();
        assert_eq!(w.last_closed(0, 0), Some(0));
        assert_eq!(w.last_closed(0, 2_999), Some(2));
        assert_eq!(w.last_closed(1_000, 500), None);
    }
}
