//! SQL(+) surface for the stream operators.
//!
//! Registers the paper's stream UDFs as table-valued functions on a
//! [`Database`], so unfolded SQL(+) text like
//!
//! ```sql
//! SELECT window_id, AVG(value)
//! FROM timeslidingwindow('S_Msmt', 1, 10000, 1000, 0, 0, 9) AS w
//! GROUP BY window_id
//! ```
//!
//! executes directly on the relational engine. Argument order for
//! `timeslidingwindow`: stream table name, timestamp column index, range ms,
//! slide ms, window start, first window id, last window id.

use std::sync::Arc;

use optique_relational::{Database, SqlError, Value};

use crate::stream::Stream;
use crate::window::{time_sliding_window, WindowSpec};

/// Registers `timeslidingwindow` on the database.
pub fn register_stream_functions(db: &mut Database) {
    db.register_table_function(
        "timeslidingwindow",
        Arc::new(|args: &[Value], db: &Database| {
            if args.len() != 7 {
                return Err(SqlError::Type(
                    "timeslidingwindow(stream, ts_col, range_ms, slide_ms, start, first_w, last_w)"
                        .into(),
                ));
            }
            let name = args[0]
                .as_str()
                .ok_or_else(|| SqlError::Type("stream name must be text".into()))?;
            let ts_col = args[1]
                .as_i64()
                .filter(|&v| v >= 0)
                .ok_or_else(|| SqlError::Type("ts_col must be a non-negative integer".into()))?
                as usize;
            let range = int_arg(&args[2], "range_ms")?;
            let slide = int_arg(&args[3], "slide_ms")?;
            let start = int_arg(&args[4], "start")?;
            let first = int_arg(&args[5], "first_w")? as u64;
            let last = int_arg(&args[6], "last_w")? as u64;
            let table = db.table(name)?;
            let stream = Stream::new(name, (**table).clone(), ts_col)?;
            let spec = WindowSpec::new(range, slide)?;
            time_sliding_window(&stream, spec, start, first, last)
        }),
    );
}

fn int_arg(v: &Value, what: &str) -> Result<i64, SqlError> {
    v.as_i64()
        .ok_or_else(|| SqlError::Type(format!("{what} must be an integer, got {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::exec::query;
    use optique_relational::{Column, ColumnType, Schema, Table};

    fn db() -> Database {
        let mut db = Database::new();
        let schema = Schema::qualified(
            "S_Msmt",
            vec![
                Column::new("ts", ColumnType::Timestamp),
                Column::new("sensor_id", ColumnType::Int),
                Column::new("value", ColumnType::Float),
            ],
        );
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::Timestamp(i * 500),
                    Value::Int(i % 2),
                    Value::Float(70.0 + i as f64),
                ]
            })
            .collect();
        db.put_table("S_Msmt", Table::new(schema, rows).unwrap());
        register_stream_functions(&mut db);
        db
    }

    #[test]
    fn window_aggregation_via_sql() {
        let t = query(
            "SELECT window_id, COUNT(*) AS n FROM \
             timeslidingwindow('S_Msmt', 0, 2000, 1000, 0, 0, 5) AS w \
             GROUP BY window_id ORDER BY window_id",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 6);
        // Window 0 covers (-2000, 0]: exactly the tuple at ts=0.
        assert_eq!(t.rows[0][1], Value::Int(1));
        // Window 2 covers (0, 2000]: ts 500, 1000, 1500, 2000 → 4 tuples.
        assert_eq!(t.rows[2][1], Value::Int(4));
    }

    #[test]
    fn per_sensor_window_stats() {
        let t = query(
            "SELECT window_id, sensor_id, MAX(value) AS mx FROM \
             timeslidingwindow('S_Msmt', 0, 2000, 2000, 0, 1, 2) AS w \
             GROUP BY window_id, sensor_id ORDER BY window_id, sensor_id",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 4, "two windows × two sensors");
    }

    #[test]
    fn bad_arity_is_an_error() {
        let err = query("SELECT * FROM timeslidingwindow('S_Msmt', 0) AS w", &db()).unwrap_err();
        assert!(matches!(err, SqlError::Type(_)));
    }

    #[test]
    fn unknown_stream_is_an_error() {
        let err = query(
            "SELECT * FROM timeslidingwindow('NoSuch', 0, 1000, 1000, 0, 0, 0) AS w",
            &db(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::UnknownTable(_)));
    }
}
