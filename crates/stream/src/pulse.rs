//! The STARQL `USING PULSE` clock.
//!
//! A pulse declaration — `USING PULSE WITH START = …, FREQUENCY = …` —
//! defines the ticks at which a continuous query produces output. Ticks are
//! aligned with window closes: at tick `t`, the query evaluates over the
//! last window closing at or before `t`.

use optique_relational::SqlError;

/// A pulse: first tick and period, in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pulse {
    /// First tick instant.
    pub start_ms: i64,
    /// Period between ticks.
    pub frequency_ms: i64,
}

impl Pulse {
    /// Builds a pulse, validating the period.
    pub fn new(start_ms: i64, frequency_ms: i64) -> Result<Self, SqlError> {
        if frequency_ms <= 0 {
            return Err(SqlError::Execution(format!(
                "pulse frequency must be positive, got {frequency_ms}"
            )));
        }
        Ok(Pulse {
            start_ms,
            frequency_ms,
        })
    }

    /// The instant of tick `i`.
    pub fn tick_time(&self, i: u64) -> i64 {
        self.start_ms + (i as i64) * self.frequency_ms
    }

    /// Iterator over all ticks in `[from, to]` (inclusive bounds clamped to
    /// the pulse grid).
    pub fn ticks_between(&self, from: i64, to: i64) -> impl Iterator<Item = i64> + '_ {
        let first = if from <= self.start_ms {
            0
        } else {
            // Smallest i with tick_time(i) >= from.
            ((from - self.start_ms) + self.frequency_ms - 1) / self.frequency_ms
        };
        (first as u64..)
            .map(|i| self.tick_time(i))
            .take_while(move |&t| t <= to)
    }

    /// Number of ticks in `[from, to]`.
    pub fn tick_count(&self, from: i64, to: i64) -> usize {
        self.ticks_between(from, to).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Pulse::new(0, 0).is_err());
        assert!(Pulse::new(0, 1_000).is_ok());
    }

    #[test]
    fn tick_grid() {
        let p = Pulse::new(600_000, 1_000).unwrap();
        assert_eq!(p.tick_time(0), 600_000);
        assert_eq!(p.tick_time(3), 603_000);
    }

    #[test]
    fn ticks_between_clamps_to_grid() {
        let p = Pulse::new(0, 1_000).unwrap();
        let ticks: Vec<i64> = p.ticks_between(1_500, 4_000).collect();
        assert_eq!(ticks, vec![2_000, 3_000, 4_000]);
    }

    #[test]
    fn ticks_before_start_begin_at_start() {
        let p = Pulse::new(5_000, 1_000).unwrap();
        let ticks: Vec<i64> = p.ticks_between(0, 6_000).collect();
        assert_eq!(ticks, vec![5_000, 6_000]);
    }

    #[test]
    fn tick_count() {
        let p = Pulse::new(0, 1_000).unwrap();
        assert_eq!(p.tick_count(0, 9_999), 10);
    }
}
