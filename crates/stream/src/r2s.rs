//! Relation-to-stream operators of CQL: `IStream`, `DStream`, `RStream`.
//!
//! CQL queries compute, at every tick, a relation from the current window
//! contents; these operators turn the tick-indexed sequence of relations
//! back into a stream: `RStream` emits each whole relation, `IStream` emits
//! insertions w.r.t. the previous tick, `DStream` emits deletions.
//!
//! The operators are generic over the tuple type: the relational layer
//! diffs `Vec<Value>` rows (the default), while the STARQL engine diffs the
//! RDF triples a tick constructs — one differ per registered query turns
//! its per-tick graph sequence into a delta stream.

use std::collections::BTreeMap;

use optique_relational::Value;

/// Multiset difference `a − b` over tuples.
fn multiset_diff<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut counts: BTreeMap<&T, isize> = BTreeMap::new();
    for row in b {
        *counts.entry(row).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for row in a {
        let slot = counts.entry(row).or_insert(0);
        if *slot > 0 {
            *slot -= 1;
        } else {
            out.push(row.clone());
        }
    }
    out
}

/// `RStream`: the relation at this tick, unchanged.
pub fn rstream<T: Clone>(current: &[T]) -> Vec<T> {
    current.to_vec()
}

/// `IStream`: tuples present now but not at the previous tick (multiset).
pub fn istream<T: Ord + Clone>(previous: &[T], current: &[T]) -> Vec<T> {
    multiset_diff(current, previous)
}

/// `DStream`: tuples present at the previous tick but not now (multiset).
pub fn dstream<T: Ord + Clone>(previous: &[T], current: &[T]) -> Vec<T> {
    multiset_diff(previous, current)
}

/// Stateful wrapper that tracks the previous tick for repeated application.
#[derive(Debug, Clone)]
pub struct StreamDiffer<T = Vec<Value>> {
    previous: Vec<T>,
}

impl<T> Default for StreamDiffer<T> {
    fn default() -> Self {
        StreamDiffer {
            previous: Vec::new(),
        }
    }
}

impl<T: Ord + Clone> StreamDiffer<T> {
    /// Fresh differ with an empty previous relation.
    pub fn new() -> Self {
        StreamDiffer::default()
    }

    /// Advances one tick, returning `(inserted, deleted)`.
    pub fn tick(&mut self, current: Vec<T>) -> (Vec<T>, Vec<T>) {
        let ins = istream(&self.previous, &current);
        let del = dstream(&self.previous, &current);
        self.previous = current;
        (ins, del)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Vec<Vec<Value>> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    #[test]
    fn istream_emits_new_rows() {
        assert_eq!(istream(&r(&[1, 2]), &r(&[2, 3])), r(&[3]));
    }

    #[test]
    fn dstream_emits_dropped_rows() {
        assert_eq!(dstream(&r(&[1, 2]), &r(&[2, 3])), r(&[1]));
    }

    #[test]
    fn multiset_semantics() {
        // Two copies now, one before → one insertion.
        assert_eq!(istream(&r(&[5]), &r(&[5, 5])), r(&[5]));
        // One copy now, two before → one deletion.
        assert_eq!(dstream(&r(&[5, 5]), &r(&[5])), r(&[5]));
    }

    #[test]
    fn rstream_is_identity() {
        assert_eq!(rstream(&r(&[1, 2])), r(&[1, 2]));
    }

    #[test]
    fn differ_tracks_state() {
        let mut d = StreamDiffer::new();
        let (ins, del) = d.tick(r(&[1]));
        assert_eq!((ins, del), (r(&[1]), vec![]));
        let (ins, del) = d.tick(r(&[1, 2]));
        assert_eq!((ins, del), (r(&[2]), vec![]));
        let (ins, del) = d.tick(r(&[2]));
        assert_eq!((ins, del), (vec![], r(&[1])));
    }

    #[test]
    fn empty_relations() {
        assert!(istream(&r(&[]), &r(&[])).is_empty());
        assert!(dstream(&r(&[]), &r(&[])).is_empty());
    }

    #[test]
    fn differ_is_generic_over_tuple_type() {
        // The STARQL engine diffs plain strings-of-triples shapes; any Ord
        // tuple works.
        let mut d: StreamDiffer<&'static str> = StreamDiffer::new();
        assert_eq!(d.tick(vec!["a", "b"]), (vec!["a", "b"], vec![]));
        assert_eq!(d.tick(vec!["b", "c"]), (vec!["c"], vec!["a"]));
    }
}
