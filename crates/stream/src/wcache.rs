//! The `wCache` shared window cache.
//!
//! "wCache acts as an index for answering efficiently equality constraints on
//! the time column when processing infinite streams. … WCache will then
//! produce results to multiple queries accessing different streams."
//!
//! Concretely: many concurrent diagnostic tasks window the *same* measurement
//! streams with the *same* spec (the 1,024-task showcase registers variations
//! of a handful of templates). Without sharing, each query re-slices and
//! re-tags the stream per window; with `WCache`, the first query to need
//! `(stream, window)` materializes it and every other query gets the
//! `Arc`-shared batch. Hit statistics feed the E8 bench.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use optique_relational::Value;

/// Key identifying one materialized window of one stream.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WindowKey {
    /// Stream name.
    pub stream: String,
    /// Window id under that stream's registered window spec.
    pub window_id: u64,
    /// Content variant: `""` for the full window; a restriction
    /// fingerprint for windows materialized under a subject-key semi-join
    /// (a restricted window is a *subset* of the full one, so it must never
    /// answer a full-window lookup).
    pub variant: String,
}

/// A shared, thread-safe window cache with hit/miss accounting.
#[derive(Default)]
pub struct WCache {
    entries: RwLock<HashMap<WindowKey, Arc<Vec<Vec<Value>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WCache {
    /// An empty cache.
    pub fn new() -> Self {
        WCache::default()
    }

    /// Fetches the rows of `(stream, window_id)` (the full-window variant),
    /// materializing them with `build` on first access. Concurrent callers
    /// may race to build; the first insert wins and later builds are
    /// discarded (builds are pure).
    pub fn get_or_build(
        &self,
        stream: &str,
        window_id: u64,
        build: impl FnOnce() -> Vec<Vec<Value>>,
    ) -> Arc<Vec<Vec<Value>>> {
        if let Some(hit) = self.lookup(stream, window_id, "") {
            return hit;
        }
        self.insert(stream, window_id, "", build())
    }

    /// Looks up a cached window variant, counting a hit or a miss. The
    /// two-step `lookup` / [`Self::insert`] form exists for builders that
    /// can fail (a fragment round over a federation): a closure-based
    /// `get_or_build` cannot return the build error.
    pub fn lookup(
        &self,
        stream: &str,
        window_id: u64,
        variant: &str,
    ) -> Option<Arc<Vec<Vec<Value>>>> {
        let key = WindowKey {
            stream: stream.to_string(),
            window_id,
            variant: variant.to_string(),
        };
        match self.entries.read().expect("wcache poisoned").get(&key) {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(hit))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a materialized window variant, returning the shared batch
    /// (the first insert wins a race; later inserts are discarded — builds
    /// are pure, so every racer built the same rows).
    pub fn insert(
        &self,
        stream: &str,
        window_id: u64,
        variant: &str,
        rows: Vec<Vec<Value>>,
    ) -> Arc<Vec<Vec<Value>>> {
        let key = WindowKey {
            stream: stream.to_string(),
            window_id,
            variant: variant.to_string(),
        };
        let built = Arc::new(rows);
        let mut map = self.entries.write().expect("wcache poisoned");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Evicts every window of `stream` with id strictly below `watermark` —
    /// called as the pulse advances past their last possible use.
    pub fn evict_below(&self, stream: &str, watermark: u64) {
        let mut map = self.entries.write().expect("wcache poisoned");
        map.retain(|k, _| k.stream != stream || k.window_id >= watermark);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached windows.
    pub fn len(&self) -> usize {
        self.entries.read().expect("wcache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for WCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WCache({} windows, {} hits, {} misses)",
            self.len(),
            self.hits(),
            self.misses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Int(i)]).collect()
    }

    #[test]
    fn build_once_share_after() {
        let cache = WCache::new();
        let mut builds = 0;
        let a = cache.get_or_build("S", 1, || {
            builds += 1;
            rows(3)
        });
        let b = cache.get_or_build("S", 1, || {
            builds += 1;
            rows(3)
        });
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_windows_distinct_entries() {
        let cache = WCache::new();
        cache.get_or_build("S", 1, || rows(1));
        cache.get_or_build("S", 2, || rows(2));
        cache.get_or_build("T", 1, || rows(3));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn eviction_respects_stream_and_watermark() {
        let cache = WCache::new();
        for k in 0..5 {
            cache.get_or_build("S", k, || rows(1));
        }
        cache.get_or_build("T", 0, || rows(1));
        cache.evict_below("S", 3);
        assert_eq!(cache.len(), 3, "S:3, S:4 and T:0 remain");
        // Re-fetching evicted window is a miss again.
        let before = cache.misses();
        cache.get_or_build("S", 0, || rows(1));
        assert_eq!(cache.misses(), before + 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(WCache::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for k in 0..50u64 {
                        let got = cache.get_or_build("S", k, || rows(k as i64 % 7));
                        assert_eq!(got.len(), (k % 7) as usize, "thread {t} window {k}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.hits() + cache.misses(), 400);
        assert!(cache.misses() >= 50);
    }
}
