//! CQL-style data-stream substrate — the "SQL(+)" streaming operators.
//!
//! ExaStream extends its relational core with "the essential operators for
//! stream handling", conforming to the CQL semantics of Arasu/Babu/Widom
//! [paper ref 1]. This crate provides those operators over the engine in
//! `optique-relational`:
//!
//! * [`Stream`] — a registered stream: a timestamp-ordered relation plus the
//!   designated time column (archived batches of it live as ordinary tables,
//!   which is also how the demo "plays" recorded Siemens data),
//! * [`WindowSpec`] + [`time_sliding_window`] — the paper's
//!   `timeSlidingWindow` UDF: stream-to-relation conversion tagging every
//!   tuple with the ids of the sliding windows containing it,
//! * [`WCache`] — the paper's `wCache` UDF: a shared window-id-keyed cache
//!   "answering efficiently equality constraints on the time column" for
//!   many concurrent queries,
//! * [`r2s`] — the relation-to-stream operators (`IStream`, `DStream`,
//!   `RStream`),
//! * [`Pulse`] — the STARQL `USING PULSE` clock that aligns window closes
//!   with output ticks,
//! * [`register_stream_functions`] — exposes the operators as SQL(+)
//!   table-valued functions on a [`Database`](optique_relational::Database).

pub mod pulse;
pub mod r2s;
pub mod registry;
pub mod stream;
pub mod wcache;
pub mod window;

pub use pulse::Pulse;
pub use r2s::{dstream, istream, rstream, StreamDiffer};
pub use registry::register_stream_functions;
pub use stream::Stream;
pub use wcache::WCache;
pub use window::{time_sliding_window, WindowSpec};
