//! Registered streams: timestamp-ordered relations.

use optique_relational::{SqlError, Table, Value};

/// A stream registration: the backing relation (ordered by its time column)
/// plus the position of that column.
///
/// In batch/replay mode — how the demo emulates real-time streams by
/// "playing" archived data — the whole history is present and windows are
/// computed over slices of it. Live ingestion appends in timestamp order.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Stream name (also the backing table's catalog name).
    pub name: String,
    /// The data, sorted ascending by the time column.
    pub table: Table,
    /// Index of the time column in the schema.
    pub timestamp_col: usize,
}

impl Stream {
    /// Wraps a table as a stream, sorting by the time column and validating
    /// that every timestamp is a non-NULL instant/integer.
    pub fn new(
        name: impl Into<String>,
        mut table: Table,
        timestamp_col: usize,
    ) -> Result<Self, SqlError> {
        if timestamp_col >= table.schema.len() {
            return Err(SqlError::Binding(format!(
                "timestamp column {timestamp_col} out of range for stream schema"
            )));
        }
        for row in &table.rows {
            if row[timestamp_col].as_i64().is_none() {
                return Err(SqlError::Type(format!(
                    "stream timestamp must be a non-NULL instant, got {}",
                    row[timestamp_col]
                )));
            }
        }
        table
            .rows
            .sort_by(|a, b| a[timestamp_col].total_cmp(&b[timestamp_col]));
        Ok(Stream {
            name: name.into(),
            table,
            timestamp_col,
        })
    }

    /// Timestamp of a row.
    pub fn ts(&self, row: &[Value]) -> i64 {
        row[self.timestamp_col]
            .as_i64()
            .expect("validated at construction")
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the stream holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Earliest and latest timestamps, when non-empty.
    pub fn time_bounds(&self) -> Option<(i64, i64)> {
        let first = self.table.rows.first()?;
        let last = self.table.rows.last()?;
        Some((self.ts(first), self.ts(last)))
    }

    /// Appends a tuple; it must not move time backwards (streams are
    /// append-ordered).
    pub fn append(&mut self, row: Vec<Value>) -> Result<(), SqlError> {
        let ts = row
            .get(self.timestamp_col)
            .and_then(Value::as_i64)
            .ok_or_else(|| SqlError::Type("stream tuple needs a timestamp".into()))?;
        if let Some((_, last)) = self.time_bounds() {
            if ts < last {
                return Err(SqlError::Execution(format!(
                    "out-of-order append: {ts} < watermark {last}"
                )));
            }
        }
        self.table.push_row(row)
    }

    /// The half-open slice of rows with timestamps in `(from, to]` — the
    /// content of a window closing at `to` with range `to - from`. Binary
    /// search on both ends keeps replay scans logarithmic.
    pub fn slice(&self, from_exclusive: i64, to_inclusive: i64) -> &[Vec<Value>] {
        let rows = &self.table.rows;
        let lo = rows.partition_point(|r| self.ts(r) <= from_exclusive);
        let hi = rows.partition_point(|r| self.ts(r) <= to_inclusive);
        &rows[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{Column, ColumnType, Schema};

    fn measurements() -> Table {
        let schema = Schema::qualified(
            "msmt",
            vec![
                Column::new("ts", ColumnType::Timestamp),
                Column::new("sensor_id", ColumnType::Int),
                Column::new("value", ColumnType::Float),
            ],
        );
        let rows = vec![
            vec![Value::Timestamp(3000), Value::Int(1), Value::Float(72.0)],
            vec![Value::Timestamp(1000), Value::Int(1), Value::Float(70.0)],
            vec![Value::Timestamp(2000), Value::Int(1), Value::Float(71.0)],
        ];
        Table::new(schema, rows).unwrap()
    }

    #[test]
    fn construction_sorts_by_time() {
        let s = Stream::new("S_Msmt", measurements(), 0).unwrap();
        let times: Vec<i64> = s.table.rows.iter().map(|r| s.ts(r)).collect();
        assert_eq!(times, vec![1000, 2000, 3000]);
    }

    #[test]
    fn null_timestamp_rejected() {
        let mut t = measurements();
        t.rows
            .push(vec![Value::Null, Value::Int(2), Value::Float(1.0)]);
        assert!(Stream::new("s", t, 0).is_err());
    }

    #[test]
    fn slice_is_half_open() {
        let s = Stream::new("S_Msmt", measurements(), 0).unwrap();
        // (1000, 3000] excludes the tuple at exactly 1000.
        let w = s.slice(1000, 3000);
        assert_eq!(w.len(), 2);
        // (0, 1000] includes it.
        let w = s.slice(0, 1000);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn append_enforces_watermark() {
        let mut s = Stream::new("S_Msmt", measurements(), 0).unwrap();
        s.append(vec![
            Value::Timestamp(3000),
            Value::Int(2),
            Value::Float(1.0),
        ])
        .expect("equal to watermark is fine");
        let err = s
            .append(vec![
                Value::Timestamp(100),
                Value::Int(2),
                Value::Float(1.0),
            ])
            .unwrap_err();
        assert!(matches!(err, SqlError::Execution(_)));
    }

    #[test]
    fn time_bounds() {
        let s = Stream::new("S_Msmt", measurements(), 0).unwrap();
        assert_eq!(s.time_bounds(), Some((1000, 3000)));
    }

    #[test]
    fn bad_timestamp_column_rejected() {
        assert!(Stream::new("s", measurements(), 9).is_err());
    }
}
