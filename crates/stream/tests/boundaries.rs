//! Boundary behavior of the stream substrate: empty windows, slides wider
//! than the range (gap windows), out-of-order pulses, window-cache
//! variants, and relation-to-stream diffs over degenerate inputs.

use std::sync::Arc;

use optique_relational::{Column, ColumnType, Schema, Table, Value};
use optique_stream::r2s::StreamDiffer;
use optique_stream::wcache::WCache;
use optique_stream::{time_sliding_window, Pulse, Stream, WindowSpec};

fn stream_with_times(times: &[i64]) -> Stream {
    let schema = Schema::qualified(
        "s",
        vec![
            Column::new("ts", ColumnType::Timestamp),
            Column::new("v", ColumnType::Int),
        ],
    );
    let rows = times
        .iter()
        .enumerate()
        .map(|(i, &t)| vec![Value::Timestamp(t), Value::Int(i as i64)])
        .collect();
    Stream::new("s", Table::new(schema, rows).unwrap(), 0).unwrap()
}

// ---- empty windows ------------------------------------------------------

#[test]
fn empty_stream_yields_empty_windows() {
    let s = stream_with_times(&[]);
    let w = WindowSpec::new(5_000, 1_000).unwrap();
    let table = time_sliding_window(&s, w, 0, 0, 10).unwrap();
    assert!(table.is_empty());
    assert_eq!(s.time_bounds(), None);
    assert!(s.slice(i64::MIN + 1, i64::MAX).is_empty());
}

#[test]
fn window_past_the_data_is_empty() {
    let s = stream_with_times(&[1_000, 2_000]);
    let w = WindowSpec::new(1_000, 1_000).unwrap();
    // Window 10 covers (9000, 10000]: nothing there.
    let table = time_sliding_window(&s, w, 0, 10, 10).unwrap();
    assert!(table.is_empty());
    // A window entirely before the data is just as empty.
    assert!(s.slice(-10_000, -5_000).is_empty());
}

#[test]
fn window_boundaries_are_half_open() {
    let s = stream_with_times(&[1_000, 2_000, 3_000]);
    // (1000, 2000]: exactly the middle tuple.
    assert_eq!(s.slice(1_000, 2_000).len(), 1);
    // (2000, 2000]: degenerate interval, empty.
    assert!(s.slice(2_000, 2_000).is_empty());
}

// ---- slide > range (gap windows) ----------------------------------------

#[test]
fn slide_wider_than_range_leaves_gaps() {
    // Range 1 s, slide 3 s: windows cover (2s,3s], (5s,6s], … — tuples in
    // the gaps belong to no window at all.
    let w = WindowSpec::new(1_000, 3_000).unwrap();
    assert_eq!(w.windows_containing(0, 2_500), Some((1, 1)));
    assert_eq!(
        w.windows_containing(0, 4_000),
        None,
        "a tuple in the gap is in no window"
    );
    let s = stream_with_times(&[500, 2_500, 4_000, 5_500]);
    let table = time_sliding_window(&s, w, 0, 0, 4).unwrap();
    // Only the tuples at 2500 (window 1) and 5500 (window 2) materialize.
    assert_eq!(table.len(), 2);
    let wids: Vec<i64> = table.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(wids, vec![1, 2]);
    // Per-tuple membership count is 1 for covered tuples (ceil(1/3) = 1).
    assert_eq!(w.windows_per_tuple(), 1);
}

// ---- out-of-order pulses ------------------------------------------------

#[test]
fn ticks_before_the_pulse_grid_close_nothing() {
    let w = WindowSpec::new(2_000, 1_000).unwrap();
    assert_eq!(w.last_closed(600_000, 599_999), None);
    assert_eq!(w.last_closed(600_000, 600_000), Some(0));
}

#[test]
fn out_of_order_ticks_are_idempotent_over_the_cache() {
    // A monitoring loop may re-tick an earlier instant (replay, retry):
    // the same window id resolves and the cache serves the same rows.
    let w = WindowSpec::new(2_000, 1_000).unwrap();
    let s = stream_with_times(&[600_500, 601_500, 602_500]);
    let cache = WCache::new();
    let materialize = |tick: i64| -> Arc<Vec<Vec<Value>>> {
        let id = w.last_closed(600_000, tick).unwrap();
        let (open, close) = w.bounds(600_000, id);
        cache.get_or_build("s", id, || s.slice(open, close).to_vec())
    };
    let forward = materialize(602_000);
    let _ = materialize(603_000);
    let replay = materialize(602_000); // out-of-order: earlier tick again
    assert!(Arc::ptr_eq(&forward, &replay), "replay hits the cache");
    assert_eq!(cache.misses(), 2, "two distinct windows built");
    assert!(cache.hits() >= 1);
}

#[test]
fn pulse_grid_clamps_and_orders_ticks() {
    let p = Pulse::new(600_000, 1_000).unwrap();
    // Asking for ticks over an inverted range yields nothing.
    assert_eq!(p.tick_count(610_000, 605_000), 0);
    // Ticks between bounds stay on the grid and ascend.
    let ticks: Vec<i64> = p.ticks_between(599_500, 602_200).collect();
    assert_eq!(ticks, vec![600_000, 601_000, 602_000]);
}

#[test]
fn out_of_order_append_is_rejected_but_equal_is_fine() {
    let mut s = stream_with_times(&[1_000, 2_000]);
    assert!(s
        .append(vec![Value::Timestamp(2_000), Value::Int(9)])
        .is_ok());
    assert!(s
        .append(vec![Value::Timestamp(1_500), Value::Int(9)])
        .is_err());
}

// ---- window-cache variants ----------------------------------------------

#[test]
fn wcache_variants_keep_restricted_windows_apart() {
    let cache = WCache::new();
    let full = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
    let restricted = vec![vec![Value::Int(1)]];
    cache.insert("s", 7, "", full.clone());
    cache.insert("s", 7, "⋉[Int(1)]", restricted.clone());
    assert_eq!(cache.len(), 2, "variants are distinct entries");
    assert_eq!(*cache.lookup("s", 7, "").unwrap(), full);
    assert_eq!(*cache.lookup("s", 7, "⋉[Int(1)]").unwrap(), restricted);
    assert!(cache.lookup("s", 7, "⋉[Int(2)]").is_none());
    // Eviction by watermark drops every variant of the window.
    cache.evict_below("s", 8);
    assert!(cache.is_empty());
}

#[test]
fn wcache_insert_race_keeps_first() {
    let cache = WCache::new();
    let first = cache.insert("s", 1, "", vec![vec![Value::Int(1)]]);
    let second = cache.insert("s", 1, "", vec![vec![Value::Int(1)]]);
    assert!(
        Arc::ptr_eq(&first, &second),
        "first insert wins, later share"
    );
}

// ---- r2s over degenerate inputs -----------------------------------------

#[test]
fn differ_handles_empty_and_identical_ticks() {
    let mut d = StreamDiffer::new();
    let (ins, del) = d.tick(vec![]);
    assert!(ins.is_empty() && del.is_empty());
    let row = vec![vec![Value::Int(1)]];
    let _ = d.tick(row.clone());
    let (ins, del) = d.tick(row);
    assert!(ins.is_empty(), "identical relation inserts nothing");
    assert!(del.is_empty());
}

#[test]
fn first_tick_is_all_insertions_and_no_deletions() {
    // IStream's previous relation starts empty: the very first non-empty
    // tick inserts everything and deletes nothing — there is no phantom
    // deletion of a "pre-stream" state.
    let mut d = StreamDiffer::new();
    let rel = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
    let (ins, del) = d.tick(rel.clone());
    assert_eq!(ins, rel, "first tick: every tuple is new");
    assert!(del.is_empty(), "nothing existed to delete");
}

#[test]
fn empty_delta_ticks_emit_nothing_until_the_relation_changes() {
    // A stable relation produces a silent IStream/DStream for any number
    // of ticks; the next genuine change surfaces exactly the delta.
    let mut d = StreamDiffer::new();
    let rel = vec![vec![Value::Int(7)]];
    let _ = d.tick(rel.clone());
    for _ in 0..5 {
        let (ins, del) = d.tick(rel.clone());
        assert!(ins.is_empty() && del.is_empty(), "quiet tick stays quiet");
    }
    let (ins, del) = d.tick(vec![vec![Value::Int(8)]]);
    assert_eq!(ins, vec![vec![Value::Int(8)]]);
    assert_eq!(del, vec![vec![Value::Int(7)]]);
}

#[test]
fn relation_emptying_emits_full_dstream() {
    // The relation dropping to empty is a pure DStream tick — and staying
    // empty afterwards is a quiet tick, not a repeated deletion.
    let mut d = StreamDiffer::new();
    let rel = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
    let _ = d.tick(rel.clone());
    let (ins, del) = d.tick(vec![]);
    assert!(ins.is_empty());
    assert_eq!(del, rel, "every tuple deletes exactly once");
    let (ins, del) = d.tick(vec![]);
    assert!(ins.is_empty() && del.is_empty(), "no repeated deletions");
}

#[test]
fn differ_diffs_duplicate_rows_as_multisets() {
    // Duplicate rows are counted, not collapsed: going 2×a → 3×a inserts
    // one copy; 3×a → 1×a deletes two copies; and a swap of equal-count
    // duplicates is a no-op.
    let a = || vec![Value::Int(1)];
    let mut d = StreamDiffer::new();
    let _ = d.tick(vec![a(), a()]);
    let (ins, del) = d.tick(vec![a(), a(), a()]);
    assert_eq!(ins.len(), 1, "one extra copy inserts once");
    assert!(del.is_empty());
    let (ins, del) = d.tick(vec![a()]);
    assert!(ins.is_empty());
    assert_eq!(del.len(), 2, "two lost copies delete twice");
    let (ins, del) = d.tick(vec![a()]);
    assert!(ins.is_empty() && del.is_empty());
}

#[test]
fn gap_windows_produce_delta_bursts_between_empty_ticks() {
    // Slide 3 s over range 1 s: consecutive window contents alternate
    // between covered tuples and gap emptiness, so IStream/DStream fire in
    // bursts — insert on entering a covered window, delete on leaving it.
    let w = WindowSpec::new(1_000, 3_000).unwrap();
    let s = stream_with_times(&[2_500, 5_500]);
    let mut d: StreamDiffer<Vec<Value>> = StreamDiffer::new();
    let mut log = Vec::new();
    for id in 0..3u64 {
        let (open, close) = w.bounds(0, id);
        let (ins, del) = d.tick(s.slice(open, close).to_vec());
        log.push((ins.len(), del.len()));
    }
    // Window 0 (-1000,0] empty; window 1 (2000,3000] holds ts 2500;
    // window 2 (5000,6000] swaps it for ts 5500.
    assert_eq!(log, vec![(0, 0), (1, 0), (1, 1)]);
}
