//! Property tests: every tuple lands in exactly the windows covering its
//! timestamp, for arbitrary window specs.

use optique_relational::{Column, ColumnType, Schema, Table, Value};
use optique_stream::{time_sliding_window, Stream, WindowSpec};
use proptest::prelude::*;

proptest! {
    /// Materialized window content ≡ per-tuple membership computation.
    #[test]
    fn window_partitioning_invariant(
        range in 1i64..20_000,
        slide in 1i64..20_000,
        start in -5_000i64..5_000,
        times in proptest::collection::vec(0i64..30_000, 0..60),
    ) {
        let spec = WindowSpec::new(range, slide).unwrap();
        let schema = Schema::qualified(
            "s",
            vec![Column::new("ts", ColumnType::Timestamp), Column::new("v", ColumnType::Int)],
        );
        let rows: Vec<Vec<Value>> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| vec![Value::Timestamp(t), Value::Int(i as i64)])
            .collect();
        let stream = Stream::new("s", Table::new(schema, rows).unwrap(), 0).unwrap();

        let last_window = 40u64;
        let table = time_sliding_window(&stream, spec, start, 0, last_window).unwrap();

        // (a) every emitted (wid, tuple) is justified by membership;
        for row in &table.rows {
            let wid = row[0].as_i64().unwrap() as u64;
            let ts = row[1].as_i64().unwrap();
            let (lo, hi) = spec.windows_containing(start, ts)
                .expect("emitted tuple must belong somewhere");
            prop_assert!(wid >= lo && wid <= hi);
        }
        // (b) and every justified membership within range is emitted.
        let mut expected = 0usize;
        for &ts in &times {
            if let Some((lo, hi)) = spec.windows_containing(start, ts) {
                let hi = hi.min(last_window);
                if hi >= lo {
                    expected += (hi - lo + 1) as usize;
                }
            }
        }
        prop_assert_eq!(table.len(), expected);
    }

    /// Slices are consistent with window bounds.
    #[test]
    fn slice_matches_bounds(
        range in 1i64..10_000,
        slide in 1i64..10_000,
        k in 0u64..30,
        times in proptest::collection::vec(0i64..20_000, 1..40),
    ) {
        let spec = WindowSpec::new(range, slide).unwrap();
        let schema = Schema::qualified("s", vec![Column::new("ts", ColumnType::Timestamp)]);
        let rows: Vec<Vec<Value>> = times.iter().map(|&t| vec![Value::Timestamp(t)]).collect();
        let stream = Stream::new("s", Table::new(schema, rows).unwrap(), 0).unwrap();
        let (open, close) = spec.bounds(0, k);
        let in_slice = stream.slice(open, close).len();
        let by_filter = times.iter().filter(|&&t| t > open && t <= close).count();
        prop_assert_eq!(in_slice, by_filter);
    }
}
