//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (whose `Sender` has been `Sync + Clone` since Rust 1.72, covering the
//! sharing patterns this workspace uses).

pub mod channel {
    //! Unbounded MPSC channels with crossbeam's constructor name.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        handle.join().unwrap();
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
