//! Offline stand-in for the `rand` crate.
//!
//! Provides the API subset the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and uniform sampling through
//! [`RngExt::random_range`] over half-open and inclusive ranges of the
//! common numeric types. The generator is xoshiro256++ seeded by splitmix64
//! — deterministic for a given seed across platforms, which the Siemens
//! data generators and property tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next pseudorandom word.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform range sampling, provided for every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// A uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + Sized> RngExt for G {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// 53-bit mantissa uniform in `[0, 1)`.
fn unit_f64<G: RngCore>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` for `span ≥ 1`, bias-free via Lemire-style
/// rejection (span is tiny in practice, so rejections are rare).
fn below<G: RngCore>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span >= 1);
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) as f32 * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<i64> = (0..8).map(|_| a.random_range(0..1_000_000i64)).collect();
        let ys: Vec<i64> = (0..8).map(|_| b.random_range(0..1_000_000i64)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let inc = rng.random_range(1..=3u32);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} out of tolerance"
            );
        }
    }
}
