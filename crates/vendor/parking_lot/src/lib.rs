//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly (a poisoned lock —
//! a panic while held — is recovered rather than propagated, matching
//! parking_lot's behaviour of not poisoning at all).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panic while held");
    }
}
