//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws one value directly from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts, up to a bounded number of attempts.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy behind [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- numeric ranges ---------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, i8, i16, i32, i64, usize);

// u64 spans can exceed u64::MAX as a count; fall back to full words + masking.
impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// ---- regex-lite string strategies -------------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
            .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}"))
    }
}

// ---- tuples ------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

// ---- oneof -------------------------------------------------------------

/// Boxes a strategy for heterogeneous [`OneOf`] lists.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}
