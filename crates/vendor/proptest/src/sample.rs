//! Collection-index sampling (`any::<sample::Index>()`).

/// An index into a collection whose length is only known at use time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Projects onto `[0, len)`. Panics when `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}
