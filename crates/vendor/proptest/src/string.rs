//! Regex-lite string generation.
//!
//! Supports the pattern subset the workspace's strategies use: literal
//! characters, character classes `[a-z0-9_]` (ranges and singletons, no
//! negation), groups `( … )`, and the quantifiers `{m}`, `{m,n}`, `?`, `*`,
//! `+` (star/plus bounded at 8 repetitions).

use crate::rng::TestRng;

const UNBOUNDED_CAP: usize = 8;

#[derive(Clone, Debug)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<(Node, Repeat)>),
}

#[derive(Clone, Copy, Debug)]
struct Repeat {
    min: usize,
    max: usize,
}

const ONCE: Repeat = Repeat { min: 1, max: 1 };

/// Generates a string matching `pattern`, or an error describing why the
/// pattern is outside the supported subset.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> Result<String, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let (nodes, consumed) = parse_sequence(&chars, 0)?;
    if consumed != chars.len() {
        return Err(format!("unexpected character at position {consumed}"));
    }
    let mut out = String::new();
    for (node, repeat) in &nodes {
        emit(node, *repeat, rng, &mut out);
    }
    Ok(out)
}

fn parse_sequence(chars: &[char], mut pos: usize) -> Result<(Vec<(Node, Repeat)>, usize), String> {
    let mut nodes = Vec::new();
    while pos < chars.len() {
        let node = match chars[pos] {
            ')' => break,
            '[' => {
                let (class, next) = parse_class(chars, pos + 1)?;
                pos = next;
                class
            }
            '(' => {
                let (inner, next) = parse_sequence(chars, pos + 1)?;
                if next >= chars.len() || chars[next] != ')' {
                    return Err("unclosed group".into());
                }
                pos = next + 1;
                Node::Group(inner)
            }
            '\\' => {
                pos += 1;
                let c = *chars.get(pos).ok_or("dangling escape")?;
                pos += 1;
                Node::Literal(c)
            }
            c => {
                pos += 1;
                Node::Literal(c)
            }
        };
        let repeat = if pos < chars.len() {
            match chars[pos] {
                '{' => {
                    let (r, next) = parse_braces(chars, pos + 1)?;
                    pos = next;
                    r
                }
                '?' => {
                    pos += 1;
                    Repeat { min: 0, max: 1 }
                }
                '*' => {
                    pos += 1;
                    Repeat {
                        min: 0,
                        max: UNBOUNDED_CAP,
                    }
                }
                '+' => {
                    pos += 1;
                    Repeat {
                        min: 1,
                        max: UNBOUNDED_CAP,
                    }
                }
                _ => ONCE,
            }
        } else {
            ONCE
        };
        nodes.push((node, repeat));
    }
    Ok((nodes, pos))
}

fn parse_class(chars: &[char], mut pos: usize) -> Result<(Node, usize), String> {
    let mut ranges = Vec::new();
    while pos < chars.len() && chars[pos] != ']' {
        let lo = chars[pos];
        if pos + 2 < chars.len() && chars[pos + 1] == '-' && chars[pos + 2] != ']' {
            let hi = chars[pos + 2];
            if hi < lo {
                return Err(format!("inverted class range {lo}-{hi}"));
            }
            ranges.push((lo, hi));
            pos += 3;
        } else {
            ranges.push((lo, lo));
            pos += 1;
        }
    }
    if pos >= chars.len() {
        return Err("unclosed character class".into());
    }
    if ranges.is_empty() {
        return Err("empty character class".into());
    }
    Ok((Node::Class(ranges), pos + 1))
}

fn parse_braces(chars: &[char], mut pos: usize) -> Result<(Repeat, usize), String> {
    let mut min = String::new();
    while pos < chars.len() && chars[pos].is_ascii_digit() {
        min.push(chars[pos]);
        pos += 1;
    }
    let min: usize = min.parse().map_err(|_| "bad repetition count")?;
    let max = if pos < chars.len() && chars[pos] == ',' {
        pos += 1;
        let mut max = String::new();
        while pos < chars.len() && chars[pos].is_ascii_digit() {
            max.push(chars[pos]);
            pos += 1;
        }
        max.parse().map_err(|_| "bad repetition bound")?
    } else {
        min
    };
    if pos >= chars.len() || chars[pos] != '}' {
        return Err("unclosed repetition".into());
    }
    if max < min {
        return Err("inverted repetition bounds".into());
    }
    Ok((Repeat { min, max }, pos + 1))
}

fn emit(node: &Node, repeat: Repeat, rng: &mut TestRng, out: &mut String) {
    let count = repeat.min + rng.below((repeat.max - repeat.min + 1) as u64) as usize;
    for _ in 0..count {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let pick = rng.below(ranges.len() as u64) as usize;
                let (lo, hi) = ranges[pick];
                let span = hi as u32 - lo as u32 + 1;
                let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                    .expect("class ranges stay inside valid scalar values");
                out.push(c);
            }
            Node::Group(inner) => {
                for (n, r) in inner {
                    emit(n, *r, rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        generate_matching(pattern, &mut TestRng::new(seed)).unwrap()
    }

    #[test]
    fn class_with_counts() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,8}", seed);
            assert!(!s.is_empty() && s.len() <= 8, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_class() {
        for seed in 0..50 {
            let s = gen("[ -~]{0,24}", seed);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn groups_with_repetition() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,8}(/[a-z0-9]{1,6}){0,2}", seed);
            let segments: Vec<&str> = s.split('/').collect();
            assert!((1..=3).contains(&segments.len()), "{s:?}");
            assert!(!segments[0].is_empty());
        }
    }

    #[test]
    fn exact_count_and_literals() {
        assert_eq!(gen("abc", 1), "abc");
        assert_eq!(gen("[a]{3}", 1), "aaa");
    }

    #[test]
    fn rejects_bad_patterns() {
        let mut rng = TestRng::new(0);
        assert!(generate_matching("[a-z", &mut rng).is_err());
        assert!(generate_matching("(ab", &mut rng).is_err());
        assert!(generate_matching("a{2,1}", &mut rng).is_err());
    }
}
