//! Case scheduling and failure reporting for [`proptest!`](crate::proptest).

use crate::rng::TestRng;

/// Per-block configuration (`#![proptest_config(…)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suites quick while
        // still exploring a useful slice of each input space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (counts as neither pass nor fail).
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Shorthand for proptest bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs the cases of one property test deterministically.
pub struct TestRunner {
    config: ProptestConfig,
    seed_base: u64,
}

impl TestRunner {
    /// A runner whose case RNGs derive from the test name, so every test
    /// explores a distinct but reproducible input stream.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            seed_base: seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for case `case`.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::new(
            self.seed_base
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9)),
        )
    }

    /// Records one case outcome; failures panic with the case number so the
    /// deterministic seed can be replayed.
    pub fn record(&self, case: u32, outcome: TestCaseResult) {
        match outcome {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property failed at case {case}/{}: {msg}",
                    self.config.cases
                )
            }
        }
    }
}
