//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// An inclusive length window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Generates `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(strategy, len_range)` — a vector strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
