//! The deterministic per-case generator.

/// A splitmix64-based RNG; cheap, seedable, good enough for test-case
/// generation (not for statistics).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next pseudorandom 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be ≥ 1.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        // Modulo bias is ≤ bound/2^64 — irrelevant at test-suite scale.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
