//! Offline stand-in for `proptest`.
//!
//! Implements the declarative surface this workspace's property tests use —
//! the [`proptest!`] macro, range / regex-string / tuple / `prop_oneof!` /
//! collection strategies, `any::<T>()`, [`sample::Index`] and the
//! `prop_assert*` macros — over a deterministic per-case RNG (no shrinking:
//! a failing case reports its case number and message instead of a
//! minimized input, which is enough signal for this repo's suites).

pub mod collection;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($cfg:expr);
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $( let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    runner.record(case, outcome);
                }
            }
        )*
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![ $( $crate::strategy::boxed($strategy) ),+ ])
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Asserts inequality with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, f in -1.0f64..1.0, n in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_and_tuple_strategies(
            xs in crate::collection::vec(0i64..10, 2..6),
            pair in (0u64..5, 10u64..15),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
        }

        #[test]
        fn oneof_map_and_strings(
            s in "[a-z]{1,8}",
            grouped in "[a-z]{1,3}(/[a-z0-9]{1,2}){0,2}",
            v in prop_oneof![Just(1i64), (5i64..7).prop_map(|x| x * 10)],
        ) {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(!grouped.is_empty());
            prop_assert!(v == 1 || v == 50 || v == 60);
        }

        #[test]
        fn index_samples_in_range(
            ix in any::<crate::sample::Index>(),
            flag in any::<bool>(),
            w in any::<u64>(),
        ) {
            prop_assert!(ix.index(7) < 7);
            let _ = (flag, w);
        }

        #[test]
        fn early_return_ok_is_a_pass(x in 0i64..10) {
            if x % 2 == 0 {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4), "det");
        let a: Vec<i64> = (0..4)
            .map(|c| (0i64..100).generate(&mut runner.rng_for_case(c)))
            .collect();
        let b: Vec<i64> = (0..4)
            .map(|c| (0i64..100).generate(&mut runner.rng_for_case(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case 0")]
    fn failing_case_reports_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
