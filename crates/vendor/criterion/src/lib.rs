//! Offline stand-in for `criterion`.
//!
//! Implements the macro + builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, ids,
//! throughput, `black_box`) over a simple median-of-samples wall-clock
//! harness. It is intentionally lightweight: a handful of timed iterations
//! per benchmark so `cargo bench` finishes in seconds while still printing
//! comparable per-iteration timings. Sample counts can be raised with the
//! `OPTIQUE_BENCH_SAMPLES` environment variable.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per process).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: default_samples(),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, default_samples(), None, &mut f);
        self
    }
}

fn default_samples() -> usize {
    std::env::var("OPTIQUE_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion enforces ≥10; the shim happily runs fewer, but keeps a
        // floor of 1.
        self.sample_size = n.clamp(1, 1000).min(default_samples());
        self
    }

    /// Accepted for API compatibility; the shim's sample count already
    /// bounds wall-clock time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration workload for elements/sec reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches `f` with a parameterized id and an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benches `f` under a plain name.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Workload declarations for throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `sample_count` executions of `routine` (one warm-up first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.per_sample {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        per_sample: sample_size.max(1),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("{label:<56} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let mut line = format!("{label:<56} median {}", fmt_duration(median));
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  ({:.0} B/s)", per_sec(n)));
            }
        }
    }
    eprintln!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function composed of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| 9 * 9));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
