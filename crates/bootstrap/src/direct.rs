//! The direct-mapping bootstrapper (BootOX's *logical* bootstrapper).
//!
//! Per table `T(pk, c₁ … cₙ)`:
//! * `T` becomes class `ns:ClassCase(T)` with mapping `SELECT pk FROM T`,
//! * each non-key column `cᵢ` becomes a data property with mapping
//!   `SELECT pk, cᵢ FROM T`,
//! * each single-column FK to `S` becomes an object property with mapping
//!   `SELECT pk, fk FROM T`, plus domain/range axioms,
//! * a table whose PK *is* an FK models an ISA: a `SubClassOf` axiom is
//!   emitted instead of an object property.
//!
//! Multi-column keys cannot instantiate single-slot IRI templates; affected
//! artifacts are listed in [`BootstrapOutput::skipped`] rather than silently
//! dropped.

use std::time::Instant;

use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::{Axiom, BasicConcept, Ontology};
use optique_rdf::{Datatype, Iri};
use optique_relational::ColumnType;

use crate::schema::{class_case, property_case, RelationalSchema};

/// Bootstrapper configuration.
#[derive(Clone, Debug)]
pub struct BootstrapSettings {
    /// Namespace for ontology vocabulary (classes, properties).
    pub vocab_ns: String,
    /// Namespace for instance IRIs minted by templates.
    pub data_ns: String,
    /// Emit mandatory-participation axioms (`C ⊑ ∃p`) for non-nullable FK
    /// columns.
    pub mandatory_participation: bool,
}

impl Default for BootstrapSettings {
    fn default() -> Self {
        BootstrapSettings {
            vocab_ns: "http://optique.example/vocab#".into(),
            data_ns: "http://optique.example/data/".into(),
            mandatory_participation: true,
        }
    }
}

/// Everything the bootstrapper produced.
#[derive(Debug)]
pub struct BootstrapOutput {
    /// The extracted ontology.
    pub ontology: Ontology,
    /// The extracted mapping catalog.
    pub mappings: MappingCatalog,
    /// Artifacts skipped with reasons (multi-column keys etc.).
    pub skipped: Vec<String>,
    /// Wall-clock duration (the E6 measurement).
    pub elapsed: std::time::Duration,
}

impl BootstrapOutput {
    /// Number of classes bootstrapped.
    pub fn class_count(&self) -> usize {
        self.ontology.classes().count()
    }
}

/// Runs the direct mapping over a schema.
pub fn bootstrap_direct(
    schema: &RelationalSchema,
    settings: &BootstrapSettings,
) -> Result<BootstrapOutput, String> {
    schema.validate()?;
    let start = Instant::now();
    let mut ontology = Ontology::new();
    let mut mappings = MappingCatalog::new();
    let mut skipped = Vec::new();

    for table in &schema.tables {
        let class_iri = Iri::new(format!("{}{}", settings.vocab_ns, class_case(&table.name)));
        ontology.declare_class(class_iri.clone());

        let [pk] = table.primary_key.as_slice() else {
            skipped.push(format!(
                "table {}: {} primary-key columns (need exactly 1 for IRI templates)",
                table.name,
                table.primary_key.len()
            ));
            continue;
        };
        let subject_template = format!("{}{}/{{{}}}", settings.data_ns, table.name, pk);

        // Class mapping.
        mappings.add(
            MappingAssertion::class(
                format!("direct:{}", table.name),
                class_iri.clone(),
                format!("SELECT {pk} FROM {}", table.name),
                TermMap::template(&subject_template),
            )
            .with_key(vec![pk.clone()]),
        )?;

        // ISA pattern: PK column is also an FK.
        let isa_fk = table
            .foreign_keys
            .iter()
            .find(|fk| fk.columns.len() == 1 && &fk.columns[0] == pk);
        if let Some(fk) = isa_fk {
            let super_class = Iri::new(format!(
                "{}{}",
                settings.vocab_ns,
                class_case(&fk.ref_table)
            ));
            ontology.add_axiom(Axiom::subclass(
                BasicConcept::Atomic(class_iri.clone()),
                BasicConcept::Atomic(super_class),
            ));
        }

        for column in &table.columns {
            if column.name == *pk {
                continue;
            }
            if table.is_fk_column(&column.name) {
                continue; // handled below as object properties
            }
            // Data property.
            let prop_iri = Iri::new(format!(
                "{}{}{}",
                settings.vocab_ns,
                property_case(&table.name),
                class_case(&column.name)
            ));
            ontology.declare_data_property(prop_iri.clone());
            ontology.add_axiom(Axiom::SubClass {
                sub: BasicConcept::exists(prop_iri.clone()),
                sup: BasicConcept::Atomic(class_iri.clone()),
            });
            mappings.add(
                MappingAssertion::property(
                    format!("direct:{}.{}", table.name, column.name),
                    prop_iri,
                    format!("SELECT {pk}, {} FROM {}", column.name, table.name),
                    TermMap::template(&subject_template),
                    TermMap::column(column.name.clone(), datatype_of(column.ty)),
                )
                .with_key(vec![pk.clone()]),
            )?;
        }

        for fk in &table.foreign_keys {
            let [fk_col] = fk.columns.as_slice() else {
                skipped.push(format!(
                    "table {}: composite foreign key {:?}",
                    table.name, fk.columns
                ));
                continue;
            };
            if fk_col == pk {
                continue; // the ISA case above
            }
            let Some(target) = schema.table(&fk.ref_table) else {
                continue;
            };
            let [target_pk] = target.primary_key.as_slice() else {
                skipped.push(format!(
                    "table {}: FK into {} whose key is not a single column",
                    table.name, fk.ref_table
                ));
                continue;
            };
            if fk.ref_columns != vec![target_pk.clone()] {
                skipped.push(format!(
                    "table {}: FK into non-PK columns of {}",
                    table.name, fk.ref_table
                ));
                continue;
            }
            let prop_name = fk_col
                .strip_suffix("_id")
                .map(property_case)
                .unwrap_or_else(|| format!("has{}", class_case(&fk.ref_table)));
            let prop_iri = Iri::new(format!("{}{}", settings.vocab_ns, prop_name));
            let target_class = Iri::new(format!(
                "{}{}",
                settings.vocab_ns,
                class_case(&fk.ref_table)
            ));
            let target_template = format!("{}{}/{{{}}}", settings.data_ns, fk.ref_table, fk_col);
            ontology.declare_object_property(prop_iri.clone());
            ontology.add_axiom(Axiom::domain(
                prop_iri.clone(),
                BasicConcept::Atomic(class_iri.clone()),
            ));
            ontology.add_axiom(Axiom::range(
                prop_iri.clone(),
                BasicConcept::Atomic(target_class),
            ));
            if settings.mandatory_participation && table.column(fk_col).is_some_and(|c| !c.nullable)
            {
                ontology.add_axiom(Axiom::SubClass {
                    sub: BasicConcept::Atomic(class_iri.clone()),
                    sup: BasicConcept::exists(prop_iri.clone()),
                });
            }
            mappings.add(
                MappingAssertion::property(
                    format!("direct:{}.{}", table.name, fk_col),
                    prop_iri,
                    format!("SELECT {pk}, {fk_col} FROM {}", table.name),
                    TermMap::template(&subject_template),
                    TermMap::template(&target_template),
                )
                .with_key(vec![pk.clone()]),
            )?;
        }
    }

    Ok(BootstrapOutput {
        ontology,
        mappings,
        skipped,
        elapsed: start.elapsed(),
    })
}

fn datatype_of(ty: ColumnType) -> Datatype {
    match ty {
        ColumnType::Int => Datatype::Integer,
        ColumnType::Float => Datatype::Double,
        ColumnType::Text | ColumnType::Any => Datatype::String,
        ColumnType::Bool => Datatype::Boolean,
        ColumnType::Timestamp => Datatype::DateTime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelTable;

    fn schema() -> RelationalSchema {
        RelationalSchema::new()
            .with_table(
                RelTable::new(
                    "countries",
                    vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
                )
                .with_pk(&["id"]),
            )
            .with_table(
                RelTable::new(
                    "turbines",
                    vec![
                        ("tid", ColumnType::Int),
                        ("model", ColumnType::Text),
                        ("country_id", ColumnType::Int),
                    ],
                )
                .with_pk(&["tid"])
                .with_fk("country_id", "countries", "id"),
            )
            .with_table(
                RelTable::new(
                    "gas_turbines",
                    vec![("tid", ColumnType::Int), ("fuel", ColumnType::Text)],
                )
                .with_pk(&["tid"])
                .with_fk("tid", "turbines", "tid"),
            )
    }

    #[test]
    fn classes_and_mappings_for_each_table() {
        let out = bootstrap_direct(&schema(), &BootstrapSettings::default()).unwrap();
        let classes: Vec<String> = out
            .ontology
            .classes()
            .map(|c| c.local_name().to_string())
            .collect();
        assert!(classes.contains(&"Turbine".to_string()));
        assert!(classes.contains(&"Country".to_string()));
        assert!(classes.contains(&"GasTurbine".to_string()));
        // One class mapping per table at minimum.
        assert!(out.mappings.len() >= 3);
        assert!(out.skipped.is_empty(), "{:?}", out.skipped);
    }

    #[test]
    fn fk_becomes_object_property_with_domain_range() {
        let out = bootstrap_direct(&schema(), &BootstrapSettings::default()).unwrap();
        let prop = out
            .ontology
            .object_properties()
            .find(|p| p.local_name() == "country")
            .expect("country_id → country property");
        // Domain Turbine, range Country.
        let domain_holds = out
            .ontology
            .sup_concepts_closure(&BasicConcept::exists(prop.clone()))
            .iter()
            .any(|c| c.as_atomic().is_some_and(|i| i.local_name() == "Turbine"));
        assert!(domain_holds);
    }

    #[test]
    fn isa_pk_fk_becomes_subclass() {
        let out = bootstrap_direct(&schema(), &BootstrapSettings::default()).unwrap();
        let gas = BasicConcept::atomic(Iri::new("http://optique.example/vocab#GasTurbine"));
        let sups = out.ontology.sup_concepts_closure(&gas);
        assert!(sups
            .iter()
            .any(|c| c.as_atomic().is_some_and(|i| i.local_name() == "Turbine")));
    }

    #[test]
    fn data_properties_typed() {
        let out = bootstrap_direct(&schema(), &BootstrapSettings::default()).unwrap();
        assert!(out
            .ontology
            .data_properties()
            .any(|p| p.local_name() == "turbineModel"));
    }

    #[test]
    fn multi_column_pk_skipped_with_reason() {
        let s = RelationalSchema::new().with_table(
            RelTable::new(
                "readings",
                vec![("a", ColumnType::Int), ("b", ColumnType::Int)],
            )
            .with_pk(&["a", "b"]),
        );
        let out = bootstrap_direct(&s, &BootstrapSettings::default()).unwrap();
        assert_eq!(out.skipped.len(), 1);
        assert!(out.skipped[0].contains("readings"));
    }

    /// End-to-end: bootstrapped assets answer queries over real data.
    #[test]
    fn bootstrapped_assets_are_queryable() {
        use optique_relational::{table::table_of, Database, Value};
        use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm};

        let mut db = Database::new();
        db.put_table(
            "countries",
            table_of(
                "countries",
                &[("id", ColumnType::Int), ("name", ColumnType::Text)],
                vec![vec![Value::Int(1), Value::text("Germany")]],
            )
            .unwrap(),
        );
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[
                    ("tid", ColumnType::Int),
                    ("model", ColumnType::Text),
                    ("country_id", ColumnType::Int),
                ],
                vec![
                    vec![Value::Int(7), Value::text("SGT-400"), Value::Int(1)],
                    vec![Value::Int(8), Value::text("SGT-800"), Value::Int(1)],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "gas_turbines",
            table_of(
                "gas_turbines",
                &[("tid", ColumnType::Int), ("fuel", ColumnType::Text)],
                vec![],
            )
            .unwrap(),
        );

        let out = bootstrap_direct(&schema(), &BootstrapSettings::default()).unwrap();
        let q = ConjunctiveQuery::new(
            vec!["t".into()],
            vec![Atom::class(
                Iri::new("http://optique.example/vocab#Turbine"),
                QueryTerm::var("t"),
            )],
        );
        let (sql, _) = optique_mapping::unfold_cq(&q, &out.mappings, &Default::default()).unwrap();
        let table = optique_relational::exec::query(&sql.unwrap().to_string(), &db).unwrap();
        assert_eq!(table.len(), 2);
    }
}
