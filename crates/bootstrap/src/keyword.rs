//! Keyword-driven discovery of complex mappings.
//!
//! "For more complex mappings, BOOTOX requires users to provide a set of
//! examples of entities from the class … where each example is a set of
//! keywords, e.g., `{albatros, gas, 2008}`. Then the system turns these
//! keywords into SQL queries by exploiting graph based techniques similar
//! to [8] (DISCOVER) for keyword-based query answering over DBs."
//!
//! The implementation follows DISCOVER's shape: each keyword matches
//! tables/columns (by name) and rows (by value); matched tables are nodes
//! in the schema's FK join graph; a minimal connecting subtree (BFS-grown
//! Steiner-tree approximation) becomes a join query proposal whose
//! projection is the PK of a user-chosen (or heuristically chosen) center
//! table.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use optique_relational::{Database, Value};

use crate::schema::RelationalSchema;

/// A proposed mapping source discovered from keywords.
#[derive(Clone, Debug, PartialEq)]
pub struct KeywordCandidate {
    /// The table whose PK will mint instance IRIs.
    pub center_table: String,
    /// The generated SQL source.
    pub sql: String,
    /// Which keyword matched where (`keyword → table.column`), for the
    /// interactive UI's explanation panel.
    pub matches: BTreeMap<String, String>,
    /// Relevance score (matched keywords / total keywords).
    pub score: f64,
}

/// Finds join-query candidates covering as many keywords as possible.
/// Returns candidates sorted by descending score, best first.
pub fn discover_by_keywords(
    schema: &RelationalSchema,
    db: &Database,
    keywords: &[&str],
) -> Vec<KeywordCandidate> {
    if keywords.is_empty() {
        return Vec::new();
    }
    // 1. Match keywords against table names, column names and cell values.
    //    keyword → set of (table, column-for-explanation).
    let mut hits: HashMap<&str, BTreeSet<(String, String)>> = HashMap::new();
    for table in &schema.tables {
        let Ok(data) = db.table(&table.name) else {
            continue;
        };
        for kw in keywords {
            let kw_lower = kw.to_ascii_lowercase();
            if table.name.to_ascii_lowercase().contains(&kw_lower) {
                hits.entry(kw)
                    .or_default()
                    .insert((table.name.clone(), "<name>".into()));
            }
            for (c_idx, column) in table.columns.iter().enumerate() {
                if column.name.to_ascii_lowercase().contains(&kw_lower) {
                    hits.entry(kw)
                        .or_default()
                        .insert((table.name.clone(), column.name.clone()));
                    continue;
                }
                let Some(idx) = data.schema.index_of(&column.name) else {
                    continue;
                };
                let _ = c_idx;
                let value_hit = data.rows.iter().any(|row| match &row[idx] {
                    Value::Text(s) => s.to_ascii_lowercase().contains(&kw_lower),
                    other if !other.is_null() => other.to_string().contains(kw),
                    _ => false,
                });
                if value_hit {
                    hits.entry(kw)
                        .or_default()
                        .insert((table.name.clone(), column.name.clone()));
                }
            }
        }
    }
    if hits.is_empty() {
        return Vec::new();
    }

    // 2. FK adjacency over tables (undirected).
    let mut adjacency: HashMap<&str, Vec<(&str, String)>> = HashMap::new();
    for table in &schema.tables {
        for fk in &table.foreign_keys {
            if let (Some(t), [col], [rc]) = (
                schema.table(&fk.ref_table),
                fk.columns.as_slice(),
                fk.ref_columns.as_slice(),
            ) {
                let cond = format!("{}.{} = {}.{}", table.name, col, t.name, rc);
                adjacency
                    .entry(&table.name)
                    .or_default()
                    .push((&t.name, cond.clone()));
                adjacency
                    .entry(&t.name)
                    .or_default()
                    .push((&table.name, cond));
            }
        }
    }

    // 3. For each matched table as a potential center, grow a BFS tree until
    //    it touches a table for every matched keyword; emit a candidate.
    let matched_tables: BTreeSet<&str> = hits
        .values()
        .flat_map(|s| s.iter().map(|(t, _)| t.as_str()))
        .collect();

    let mut candidates = Vec::new();
    for center in &matched_tables {
        let Some(center_table) = schema.table(center) else {
            continue;
        };
        let [pk] = center_table.primary_key.as_slice() else {
            continue;
        };

        // BFS from the center, recording join edges.
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut joins: Vec<(String, String)> = Vec::new(); // (table, condition)
        let mut queue = VecDeque::new();
        visited.insert(center);
        queue.push_back(*center);
        while let Some(current) = queue.pop_front() {
            for (next, cond) in adjacency.get(current).into_iter().flatten() {
                if visited.insert(next) {
                    joins.push(((*next).to_string(), cond.clone()));
                    queue.push_back(next);
                }
            }
        }

        // Which keywords are covered by the connected component?
        let mut matches: BTreeMap<String, String> = BTreeMap::new();
        let mut covered = 0usize;
        for kw in keywords {
            if let Some(kw_hits) = hits.get(kw) {
                if let Some((t, c)) = kw_hits.iter().find(|(t, _)| visited.contains(t.as_str())) {
                    matches.insert((*kw).to_string(), format!("{t}.{c}"));
                    covered += 1;
                }
            }
        }
        if covered == 0 {
            continue;
        }

        // Keep only the joins leading to matched tables (prune leaf tables
        // that never serve a keyword) — repeatedly drop unmatched leaves.
        let needed: BTreeSet<&str> = matches
            .values()
            .map(|v| v.split('.').next().expect("table.column"))
            .collect();
        let mut kept = joins.clone();
        loop {
            let mut degree: HashMap<String, usize> = HashMap::new();
            for (t, _) in &kept {
                *degree.entry(t.clone()).or_insert(0) += 1;
            }
            let before = kept.len();
            kept.retain(|(t, _)| needed.contains(t.as_str()) || degree[t] > 1);
            if kept.len() == before {
                break;
            }
        }

        let mut sql = format!("SELECT {center}.{pk} FROM {center}");
        for (t, cond) in &kept {
            sql.push_str(&format!(" JOIN {t} ON {cond}"));
        }
        candidates.push(KeywordCandidate {
            center_table: (*center).to_string(),
            sql,
            matches,
            score: covered as f64 / keywords.len() as f64,
        });
    }
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.sql.len().cmp(&b.sql.len()))
            .then_with(|| a.center_table.cmp(&b.center_table))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelTable;
    use optique_relational::{table::table_of, ColumnType};

    fn fixture() -> (RelationalSchema, Database) {
        let schema = RelationalSchema::new()
            .with_table(
                RelTable::new(
                    "turbines",
                    vec![
                        ("tid", ColumnType::Int),
                        ("name", ColumnType::Text),
                        ("fuel", ColumnType::Text),
                        ("built", ColumnType::Int),
                    ],
                )
                .with_pk(&["tid"]),
            )
            .with_table(
                RelTable::new(
                    "sensors",
                    vec![("sid", ColumnType::Int), ("turbine_id", ColumnType::Int)],
                )
                .with_pk(&["sid"])
                .with_fk("turbine_id", "turbines", "tid"),
            );
        let mut db = Database::new();
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[
                    ("tid", ColumnType::Int),
                    ("name", ColumnType::Text),
                    ("fuel", ColumnType::Text),
                    ("built", ColumnType::Int),
                ],
                vec![
                    vec![
                        Value::Int(1),
                        Value::text("Albatros"),
                        Value::text("gas"),
                        Value::Int(2008),
                    ],
                    vec![
                        Value::Int(2),
                        Value::text("Kestrel"),
                        Value::text("steam"),
                        Value::Int(1999),
                    ],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("turbine_id", ColumnType::Int)],
                vec![vec![Value::Int(10), Value::Int(1)]],
            )
            .unwrap(),
        );
        (schema, db)
    }

    #[test]
    fn paper_example_keywords_find_turbines() {
        let (schema, db) = fixture();
        let candidates = discover_by_keywords(&schema, &db, &["albatros", "gas", "2008"]);
        assert!(!candidates.is_empty());
        let best = &candidates[0];
        assert_eq!(best.center_table, "turbines");
        assert_eq!(best.score, 1.0);
        assert!(best.sql.starts_with("SELECT turbines.tid FROM turbines"));
        // All keywords explained.
        assert_eq!(best.matches.len(), 3);
    }

    #[test]
    fn candidate_sql_executes() {
        let (schema, db) = fixture();
        let candidates = discover_by_keywords(&schema, &db, &["gas"]);
        let best = &candidates[0];
        let t = optique_relational::exec::query(&best.sql, &db).unwrap();
        assert_eq!(t.len(), 2, "projection over turbines PK");
    }

    #[test]
    fn cross_table_keywords_produce_join() {
        let (schema, db) = fixture();
        let candidates = discover_by_keywords(&schema, &db, &["sensor", "gas"]);
        let joined = candidates.iter().find(|c| c.sql.contains("JOIN"));
        assert!(joined.is_some(), "{candidates:#?}");
        let t = optique_relational::exec::query(&joined.unwrap().sql, &db).unwrap();
        assert!(!t.is_empty());
    }

    #[test]
    fn no_keywords_no_candidates() {
        let (schema, db) = fixture();
        assert!(discover_by_keywords(&schema, &db, &[]).is_empty());
        assert!(discover_by_keywords(&schema, &db, &["zzz_nothing"]).is_empty());
    }

    #[test]
    fn scores_rank_candidates() {
        let (schema, db) = fixture();
        let candidates = discover_by_keywords(&schema, &db, &["albatros", "zzz_nothing"]);
        assert!(!candidates.is_empty());
        assert!(candidates[0].score <= 0.5 + 1e-9);
    }
}
