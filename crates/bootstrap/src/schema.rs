//! The relational-schema model BootOX bootstraps from.

use optique_relational::ColumnType;

/// A column in a source table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelColumn {
    /// Column name.
    pub name: String,
    /// Static type.
    pub ty: ColumnType,
    /// Whether NULLs are expected (drives mandatory-participation axioms).
    pub nullable: bool,
}

/// A foreign key: `columns` of this table reference `ref_columns` of
/// `ref_table`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns.
    pub ref_columns: Vec<String>,
}

/// A source table with key metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelTable {
    /// Table name as known to the catalog.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<RelColumn>,
    /// Primary-key columns (possibly empty when unknown).
    pub primary_key: Vec<String>,
    /// Declared (or discovered) foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl RelTable {
    /// A builder-style table with no keys.
    pub fn new(name: impl Into<String>, columns: Vec<(&str, ColumnType)>) -> Self {
        RelTable {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(n, t)| RelColumn {
                    name: n.to_string(),
                    ty: t,
                    nullable: true,
                })
                .collect(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Sets the primary key.
    pub fn with_pk(mut self, columns: &[&str]) -> Self {
        self.primary_key = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Adds a single-column foreign key.
    pub fn with_fk(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: vec![column.to_string()],
            ref_table: ref_table.to_string(),
            ref_columns: vec![ref_column.to_string()],
        });
        self
    }

    /// Whether `column` participates in any foreign key.
    pub fn is_fk_column(&self, column: &str) -> bool {
        self.foreign_keys
            .iter()
            .any(|fk| fk.columns.iter().any(|c| c == column))
    }

    /// Column lookup.
    pub fn column(&self, name: &str) -> Option<&RelColumn> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A whole source schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelationalSchema {
    /// Tables, in declaration order.
    pub tables: Vec<RelTable>,
}

impl RelationalSchema {
    /// An empty schema.
    pub fn new() -> Self {
        RelationalSchema::default()
    }

    /// Adds a table (builder style).
    pub fn with_table(mut self, table: RelTable) -> Self {
        self.tables.push(table);
        self
    }

    /// Table lookup.
    pub fn table(&self, name: &str) -> Option<&RelTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut RelTable> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Validates referential metadata: FK targets exist, key columns exist.
    pub fn validate(&self) -> Result<(), String> {
        for table in &self.tables {
            for pk in &table.primary_key {
                if table.column(pk).is_none() {
                    return Err(format!("table {}: PK column {pk} missing", table.name));
                }
            }
            for fk in &table.foreign_keys {
                let Some(target) = self.table(&fk.ref_table) else {
                    return Err(format!(
                        "table {}: FK references unknown table {}",
                        table.name, fk.ref_table
                    ));
                };
                for c in &fk.columns {
                    if table.column(c).is_none() {
                        return Err(format!("table {}: FK column {c} missing", table.name));
                    }
                }
                for c in &fk.ref_columns {
                    if target.column(c).is_none() {
                        return Err(format!(
                            "table {}: FK target column {}.{c} missing",
                            table.name, fk.ref_table
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Converts a snake_case (or lowercase) name to UpperCamelCase, dropping a
/// plural-`s` from the final token — `gas_turbines` → `GasTurbine`. The
/// singularization heuristic matches BootOX's "meaningful names" goal and
/// stays deterministic for tests.
pub fn class_case(name: &str) -> String {
    let mut out = String::new();
    let tokens: Vec<&str> = name
        .split(['_', '-', ' '])
        .filter(|t| !t.is_empty())
        .collect();
    for (i, token) in tokens.iter().enumerate() {
        let token = if i + 1 == tokens.len() {
            singular(token)
        } else {
            (*token).to_string()
        };
        let mut chars = token.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

/// lowerCamelCase for property names.
pub fn property_case(name: &str) -> String {
    let upper = class_case(name);
    let mut chars = upper.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => upper,
    }
}

fn singular(token: &str) -> String {
    if token.len() > 3 && token.ends_with("ies") {
        format!("{}y", &token[..token.len() - 3])
    } else if token.len() > 3 && token.ends_with('s') && !token.ends_with("ss") {
        token[..token.len() - 1].to_string()
    } else {
        token.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelationalSchema {
        RelationalSchema::new()
            .with_table(
                RelTable::new(
                    "countries",
                    vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
                )
                .with_pk(&["id"]),
            )
            .with_table(
                RelTable::new(
                    "turbines",
                    vec![
                        ("tid", ColumnType::Int),
                        ("model", ColumnType::Text),
                        ("country_id", ColumnType::Int),
                    ],
                )
                .with_pk(&["tid"])
                .with_fk("country_id", "countries", "id"),
            )
    }

    #[test]
    fn validation_passes_for_sane_schema() {
        sample().validate().unwrap();
    }

    #[test]
    fn validation_catches_missing_fk_target() {
        let s = RelationalSchema::new()
            .with_table(RelTable::new("a", vec![("x", ColumnType::Int)]).with_fk("x", "nope", "y"));
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_catches_missing_pk_column() {
        let s = RelationalSchema::new()
            .with_table(RelTable::new("a", vec![("x", ColumnType::Int)]).with_pk(&["nope"]));
        assert!(s.validate().is_err());
    }

    #[test]
    fn fk_column_detection() {
        let s = sample();
        let t = s.table("turbines").unwrap();
        assert!(t.is_fk_column("country_id"));
        assert!(!t.is_fk_column("model"));
    }

    #[test]
    fn naming_heuristics() {
        assert_eq!(class_case("turbines"), "Turbine");
        assert_eq!(class_case("gas_turbines"), "GasTurbine");
        assert_eq!(class_case("countries"), "Country");
        assert_eq!(class_case("service_history"), "ServiceHistory");
        assert_eq!(property_case("country_id"), "countryId");
        assert_eq!(class_case("glass"), "Glass", "double-s nouns stay");
    }
}
