//! BOOTOX — bootstrapping ontologies and mappings from relational sources
//! (challenge C1, paper ref [9]).
//!
//! "Our BOOTOX component allows to extract W3C standardised OWL 2 ontologies
//! and R2RML mappings from relational streaming and static data. …
//! BOOTOX can map two tables like Turbine and Country into classes by
//! projecting them on primary keys, and the attribute locatedIn of Turbine
//! into an object property between these two classes if there is either an
//! explicit or implicit foreign key between Turbine and Country."
//!
//! * [`schema`] — the relational-schema model (tables, columns, PKs, FKs),
//!   with introspection over an `optique-relational` database,
//! * [`direct`] — the direct-mapping bootstrapper: tables → classes,
//!   non-key columns → data properties, FKs → object properties, ISA-shaped
//!   PKs → subclass axioms; emits the ontology *and* the mapping catalog,
//! * [`discovery`] — implicit-FK discovery by data-inclusion analysis,
//! * [`keyword`] — keyword-driven discovery of complex mappings: keywords
//!   match tables/columns/values, a join tree over the FK graph connects the
//!   matches, and the tree becomes a candidate SQL source (the paper's
//!   `{albatros, gas, 2008}` example),
//! * [`alignment`] — importing third-party ontologies: lexical matching
//!   proposes bridge axioms, a conservativity check rejects alignments that
//!   entail "undesired logical consequences".

pub mod alignment;
pub mod direct;
pub mod discovery;
pub mod keyword;
pub mod schema;

pub use alignment::{align, AlignmentResult};
pub use direct::{bootstrap_direct, BootstrapOutput, BootstrapSettings};
pub use discovery::discover_foreign_keys;
pub use keyword::{discover_by_keywords, KeywordCandidate};
pub use schema::{ForeignKey, RelColumn, RelTable, RelationalSchema};
