//! Implicit foreign-key discovery by data-inclusion analysis.
//!
//! The paper: an object property is bootstrapped "if there is either an
//! explicit or **implicit** foreign key". A column pair `(A.c → B.pk)` is
//! proposed when every non-NULL value of `A.c` occurs in `B.pk`, `B.pk` is
//! (observed) unique, the types agree, and enough evidence exists (a
//! minimum number of distinct matched values — sheer emptiness proves
//! nothing).

use std::collections::HashSet;

use optique_relational::{Database, Value};

use crate::schema::{ForeignKey, RelationalSchema};

/// Discovery thresholds.
#[derive(Clone, Copy, Debug)]
pub struct DiscoverySettings {
    /// Minimum distinct non-NULL values in the referencing column.
    pub min_distinct: usize,
    /// Required inclusion fraction (1.0 = strict containment).
    pub min_inclusion: f64,
}

impl Default for DiscoverySettings {
    fn default() -> Self {
        DiscoverySettings {
            min_distinct: 3,
            min_inclusion: 1.0,
        }
    }
}

/// Scans the database for implicit FKs between schema tables. Declared FKs
/// are not re-proposed. Results are deterministic (table/column order).
pub fn discover_foreign_keys(
    schema: &RelationalSchema,
    db: &Database,
    settings: &DiscoverySettings,
) -> Vec<(String, ForeignKey)> {
    let mut proposals = Vec::new();
    for target in &schema.tables {
        let [target_pk] = target.primary_key.as_slice() else {
            continue;
        };
        let Ok(target_table) = db.table(&target.name) else {
            continue;
        };
        let Some(pk_idx) = target_table.schema.index_of(target_pk) else {
            continue;
        };
        let mut pk_values: HashSet<&Value> = HashSet::new();
        let mut pk_unique = true;
        for row in &target_table.rows {
            if row[pk_idx].is_null() {
                continue;
            }
            if !pk_values.insert(&row[pk_idx]) {
                pk_unique = false;
                break;
            }
        }
        if !pk_unique || pk_values.is_empty() {
            continue;
        }

        for source in &schema.tables {
            if source.name == target.name {
                continue;
            }
            let Ok(source_table) = db.table(&source.name) else {
                continue;
            };
            for column in &source.columns {
                // Skip declared FKs and type mismatches.
                if source.is_fk_column(&column.name) {
                    continue;
                }
                if target.column(target_pk).map(|c| c.ty) != Some(column.ty) {
                    continue;
                }
                let Some(col_idx) = source_table.schema.index_of(&column.name) else {
                    continue;
                };
                let mut distinct: HashSet<&Value> = HashSet::new();
                for row in &source_table.rows {
                    if !row[col_idx].is_null() {
                        distinct.insert(&row[col_idx]);
                    }
                }
                if distinct.len() < settings.min_distinct {
                    continue;
                }
                let included = distinct.iter().filter(|v| pk_values.contains(**v)).count();
                let fraction = included as f64 / distinct.len() as f64;
                if fraction >= settings.min_inclusion {
                    proposals.push((
                        source.name.clone(),
                        ForeignKey {
                            columns: vec![column.name.clone()],
                            ref_table: target.name.clone(),
                            ref_columns: vec![target_pk.clone()],
                        },
                    ));
                }
            }
        }
    }
    proposals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelTable;
    use optique_relational::{table::table_of, ColumnType};

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "countries",
            table_of(
                "countries",
                &[("id", ColumnType::Int), ("name", ColumnType::Text)],
                (1..=5)
                    .map(|i| vec![Value::Int(i), Value::text(format!("c{i}"))])
                    .collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int), ("loc", ColumnType::Int)],
                (0..10)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 5 + 1)])
                    .collect(),
            )
            .unwrap(),
        );
        db
    }

    fn schema() -> RelationalSchema {
        RelationalSchema::new()
            .with_table(
                RelTable::new(
                    "countries",
                    vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
                )
                .with_pk(&["id"]),
            )
            .with_table(
                RelTable::new(
                    "turbines",
                    vec![("tid", ColumnType::Int), ("loc", ColumnType::Int)],
                )
                .with_pk(&["tid"]),
            )
    }

    #[test]
    fn discovers_inclusion_dependency() {
        let proposals = discover_foreign_keys(&schema(), &db(), &DiscoverySettings::default());
        assert!(proposals.iter().any(|(t, fk)| t == "turbines"
            && fk.columns == vec!["loc".to_string()]
            && fk.ref_table == "countries"));
    }

    #[test]
    fn non_included_column_not_proposed() {
        let mut db = db();
        // Add a turbine pointing to a non-existent country.
        let mut t = (**db.table("turbines").unwrap()).clone();
        t.rows.push(vec![Value::Int(99), Value::Int(42)]);
        db.put_table("turbines", t);
        let proposals = discover_foreign_keys(&schema(), &db, &DiscoverySettings::default());
        assert!(!proposals.iter().any(|(t, _)| t == "turbines"));
    }

    #[test]
    fn partial_inclusion_threshold() {
        let mut db = db();
        let mut t = (**db.table("turbines").unwrap()).clone();
        t.rows.push(vec![Value::Int(99), Value::Int(42)]);
        db.put_table("turbines", t);
        // 5 of 6 distinct values included ≈ 0.83.
        let relaxed = DiscoverySettings {
            min_inclusion: 0.8,
            ..Default::default()
        };
        let proposals = discover_foreign_keys(&schema(), &db, &relaxed);
        assert!(proposals.iter().any(|(t, _)| t == "turbines"));
    }

    #[test]
    fn too_little_evidence_not_proposed() {
        let mut db = Database::new();
        db.put_table(
            "countries",
            table_of(
                "countries",
                &[("id", ColumnType::Int)],
                vec![vec![Value::Int(1)]],
            )
            .unwrap(),
        );
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int), ("loc", ColumnType::Int)],
                vec![vec![Value::Int(1), Value::Int(1)]],
            )
            .unwrap(),
        );
        let proposals = discover_foreign_keys(&schema(), &db, &DiscoverySettings::default());
        assert!(proposals.is_empty(), "one matching value is not evidence");
    }

    #[test]
    fn non_unique_target_rejected() {
        let mut db = db();
        let mut c = (**db.table("countries").unwrap()).clone();
        c.rows.push(vec![Value::Int(1), Value::text("dup")]);
        db.put_table("countries", c);
        let proposals = discover_foreign_keys(&schema(), &db, &DiscoverySettings::default());
        // A duplicated countries.id disqualifies countries as an FK target
        // (the reverse direction, countries.id ⊆ turbines.tid, may still be
        // proposed — it is a genuine inclusion in this data).
        assert!(!proposals.iter().any(|(_, fk)| fk.ref_table == "countries"));
    }
}
