//! Ontology alignment and safe importing.
//!
//! "BOOTOX also allows to incorporate third party OWL 2 ontologies in an
//! existing OPTIQUE's deployment using ontology alignment techniques" —
//! with the Year-2 addition that alignment "checks for undesired logical
//! consequences".
//!
//! Matching is lexical: class/property local names are normalized
//! (case/underscore-insensitive) and compared by exact match or token
//! overlap. Each match proposes a bridge axiom (`imported ⊑ local` and
//! `local ⊑ imported`). The **conservativity check** then rejects bridges
//! that make the merged ontology entail new subsumptions *between two
//! imported terms* — the classical conservative-extension test for
//! undesired consequences — or that make any class unsatisfiable.

use std::collections::BTreeSet;

use optique_ontology::{Axiom, BasicConcept, Ontology};
use optique_rdf::Iri;

/// A proposed (and vetted) alignment.
#[derive(Debug)]
pub struct AlignmentResult {
    /// The merged ontology (local + imported + accepted bridges).
    pub merged: Ontology,
    /// Accepted bridge axioms.
    pub accepted: Vec<Axiom>,
    /// Rejected bridges with the reason.
    pub rejected: Vec<(Axiom, String)>,
    /// Matched pairs `(imported, local)` before vetting.
    pub matches: Vec<(Iri, Iri)>,
}

/// Normalizes a vocabulary name for lexical comparison.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

/// Aligns `imported` against `local`, producing a merged ontology with
/// vetted equivalence bridges between lexically-matching classes.
pub fn align(local: &Ontology, imported: &Ontology) -> AlignmentResult {
    // 1. Lexical class matching.
    let mut matches: Vec<(Iri, Iri)> = Vec::new();
    for i_class in imported.classes() {
        let i_norm = normalize(i_class.local_name());
        for l_class in local.classes() {
            if i_class == l_class {
                continue;
            }
            if i_norm == normalize(l_class.local_name()) {
                matches.push((i_class.clone(), l_class.clone()));
            }
        }
    }

    // 2. The baseline merge: local + imported axioms (no bridges yet).
    let mut merged = local.clone();
    for ax in imported.axioms() {
        merged.add_axiom(ax.clone());
    }
    for c in imported.classes() {
        merged.declare_class(c.clone());
    }
    for p in imported.object_properties() {
        merged.declare_object_property(p.clone());
    }
    for p in imported.data_properties() {
        merged.declare_data_property(p.clone());
    }

    // Baseline subsumptions among imported terms (the yardstick for the
    // conservativity check).
    let baseline = imported_taxonomy(&merged, imported);

    // 3. Vet each bridge pair: add both directions, check for new
    //    imported-term subsumptions or unsatisfiable classes.
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for (i_class, l_class) in &matches {
        let bridge_a = Axiom::subclass(
            BasicConcept::Atomic(i_class.clone()),
            BasicConcept::Atomic(l_class.clone()),
        );
        let bridge_b = Axiom::subclass(
            BasicConcept::Atomic(l_class.clone()),
            BasicConcept::Atomic(i_class.clone()),
        );
        let mut trial = merged.clone();
        trial.add_axiom(bridge_a.clone());
        trial.add_axiom(bridge_b.clone());

        let unsat = trial.unsatisfiable_classes();
        if !unsat.is_empty() {
            let reason = format!(
                "bridge makes {} unsatisfiable",
                unsat
                    .iter()
                    .map(|c| c.local_name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            rejected.push((bridge_a, reason));
            continue;
        }
        let after = imported_taxonomy(&trial, imported);
        let new_entailments: Vec<String> = after
            .difference(&baseline)
            .map(|(a, b)| format!("{} ⊑ {}", a.local_name(), b.local_name()))
            .collect();
        if !new_entailments.is_empty() {
            rejected.push((
                bridge_a,
                format!("non-conservative: entails {}", new_entailments.join("; ")),
            ));
            continue;
        }
        merged.add_axiom(bridge_a.clone());
        merged.add_axiom(bridge_b.clone());
        accepted.push(bridge_a);
        accepted.push(bridge_b);
    }

    AlignmentResult {
        merged,
        accepted,
        rejected,
        matches,
    }
}

/// Subsumption pairs among the imported ontology's own classes, as entailed
/// by `onto`.
fn imported_taxonomy(onto: &Ontology, imported: &Ontology) -> BTreeSet<(Iri, Iri)> {
    let imported_classes: BTreeSet<&Iri> = imported.classes().collect();
    let mut out = BTreeSet::new();
    for class in &imported_classes {
        let sups = onto.sup_concepts_closure(&BasicConcept::Atomic((*class).clone()));
        for sup in sups {
            if let Some(sup_iri) = sup.as_atomic() {
                if sup_iri != *class && imported_classes.contains(sup_iri) {
                    out.insert(((*class).clone(), sup_iri.clone()));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_iri(s: &str) -> Iri {
        Iri::new(format!("http://local/vocab#{s}"))
    }

    fn ext_iri(s: &str) -> Iri {
        Iri::new(format!("http://external/onto#{s}"))
    }

    fn local() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(
            BasicConcept::atomic(local_iri("GasTurbine")),
            BasicConcept::atomic(local_iri("Turbine")),
        ));
        o
    }

    #[test]
    fn lexical_match_bridges_equal_names() {
        let mut imported = Ontology::new();
        imported.declare_class(ext_iri("turbine")); // matches local "Turbine"
        let result = align(&local(), &imported);
        assert_eq!(result.matches.len(), 1);
        assert_eq!(result.accepted.len(), 2, "both bridge directions accepted");
        // Merged ontology entails ext:turbine ⊒ local:GasTurbine.
        let sups = result
            .merged
            .sup_concepts_closure(&BasicConcept::atomic(local_iri("GasTurbine")));
        assert!(sups.contains(&BasicConcept::atomic(ext_iri("turbine"))));
    }

    #[test]
    fn non_conservative_bridge_rejected() {
        // Imported: A and B unrelated. Local: Aa ⊑ Bb (after normalization
        // A↦Aa, B↦Bb match lexically? they don't). Build the classic case:
        // imported A, B with no subsumption; local has classes "A" and "B"
        // with A ⊑ B. Bridges A≡A', B≡B' would entail imported A' ⊑ B'.
        let mut imported = Ontology::new();
        imported.declare_class(ext_iri("A"));
        imported.declare_class(ext_iri("B"));
        let mut local = Ontology::new();
        local.add_axiom(Axiom::subclass(
            BasicConcept::atomic(local_iri("A")),
            BasicConcept::atomic(local_iri("B")),
        ));
        let result = align(&local, &imported);
        // One of the two bridges must be rejected as non-conservative.
        assert!(
            !result.rejected.is_empty(),
            "accepted: {:?}, rejected: {:?}",
            result.accepted,
            result.rejected
        );
        let reasons: Vec<&str> = result.rejected.iter().map(|(_, r)| r.as_str()).collect();
        assert!(
            reasons.iter().any(|r| r.contains("non-conservative")),
            "{reasons:?}"
        );
    }

    #[test]
    fn unsatisfiability_inducing_bridge_rejected() {
        // Local: Spare disjoint Turbine; SpareTurbine ⊑ Spare. Imported
        // class "SpareTurbine" matching local SpareTurbine is fine, but
        // imported "spare_turbine" that also subsumes imported Turbine'…
        // Simpler: imported has C ⊑ D where C matches local Spare and D
        // matches local Turbine; bridging both makes C unsatisfiable.
        let mut local = Ontology::new();
        local.add_axiom(Axiom::DisjointClasses(
            BasicConcept::atomic(local_iri("Spare")),
            BasicConcept::atomic(local_iri("Turbine")),
        ));
        let mut imported = Ontology::new();
        imported.add_axiom(Axiom::subclass(
            BasicConcept::atomic(ext_iri("spare")),
            BasicConcept::atomic(ext_iri("turbine")),
        ));
        let result = align(&local, &imported);
        assert!(
            result
                .rejected
                .iter()
                .any(|(_, reason)| reason.contains("unsatisfiable")
                    || reason.contains("non-conservative")),
            "rejected: {:?}",
            result.rejected
        );
    }

    #[test]
    fn no_matches_merges_cleanly() {
        let mut imported = Ontology::new();
        imported.declare_class(ext_iri("CompletelyDifferent"));
        let result = align(&local(), &imported);
        assert!(result.matches.is_empty());
        assert!(result.accepted.is_empty());
        assert!(result
            .merged
            .classes()
            .any(|c| c.local_name() == "CompletelyDifferent"));
    }

    #[test]
    fn normalization_is_case_and_underscore_insensitive() {
        assert_eq!(normalize("Gas_Turbine"), normalize("gasturbine"));
        assert_ne!(normalize("Sensor"), normalize("Assembly"));
    }
}
