//! Throughput and latency accounting.
//!
//! Every number reported in EXPERIMENTS.md — tuples/sec for the node sweep,
//! aggregate throughput under 1,024 tasks, extrapolated bytes/day against
//! the paper's 10 TB/day claim — comes out of these counters. Since the
//! telemetry crate landed, the meter is a thin throughput-rate view over
//! [`MetricsRegistry`] counters, so throughput and latency live in one
//! registry and export together.

use std::sync::Arc;
use std::time::{Duration, Instant};

use optique_telemetry::{Counter, MetricsRegistry};

/// A thread-safe tuples/bytes throughput meter: two registry counters plus
/// a wall clock. [`ThroughputMeter::start`] keeps the original standalone
/// interface (backed by a private registry); [`ThroughputMeter::in_registry`]
/// shares the caller's registry, making the totals visible to its JSON and
/// Prometheus exports under `<prefix>.tuples` / `<prefix>.bytes`.
#[derive(Debug)]
pub struct ThroughputMeter {
    start: Instant,
    tuples: Arc<Counter>,
    bytes: Arc<Counter>,
}

impl ThroughputMeter {
    /// Starts the clock over a private registry.
    pub fn start() -> Self {
        ThroughputMeter::in_registry(&MetricsRegistry::new(), "throughput")
    }

    /// Starts the clock over counters registered in `registry` as
    /// `<prefix>.tuples` and `<prefix>.bytes`.
    pub fn in_registry(registry: &MetricsRegistry, prefix: &str) -> Self {
        ThroughputMeter {
            start: Instant::now(),
            tuples: registry.counter(&format!("{prefix}.tuples")),
            bytes: registry.counter(&format!("{prefix}.bytes")),
        }
    }

    /// Records processed tuples (and optionally their encoded size).
    pub fn record(&self, tuples: u64, bytes: u64) {
        self.tuples.add(tuples);
        self.bytes.add(bytes);
    }

    /// Total tuples recorded.
    pub fn tuples(&self) -> u64 {
        self.tuples.get()
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Elapsed wall-clock time.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Tuples per second over the elapsed window.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.tuples() as f64 / secs
        }
    }

    /// Extrapolated bytes/day at the observed rate (the paper's "10 TB/day"
    /// axis).
    pub fn bytes_per_day(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes() as f64 / secs * 86_400.0
        }
    }
}

/// Latency distribution over recorded samples (not thread-safe; collect per
/// thread and merge).
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples_us: Vec<u64>,
}

impl LatencyStats {
    /// Empty stats.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_micros() as u64);
    }

    /// Merges another instance (per-thread collection).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_us.len()
    }

    /// The p-th percentile (0 < p ≤ 100) in microseconds, `None` when empty.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        if self.samples_us.is_empty() {
            return None;
        }
        Some(self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64)
    }
}

/// Formats a tuples/sec figure the way the report binaries print it.
pub fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} Mtuples/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1} Ktuples/s", rate / 1e3)
    } else {
        format!("{rate:.0} tuples/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_across_threads() {
        let meter = ThroughputMeter::start();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        meter.record(10, 80);
                    }
                });
            }
        });
        assert_eq!(meter.tuples(), 40_000);
        assert_eq!(meter.bytes(), 320_000);
        assert!(meter.tuples_per_sec() > 0.0);
    }

    #[test]
    fn meter_in_registry_exports_counters() {
        let registry = MetricsRegistry::new();
        let meter = ThroughputMeter::in_registry(&registry, "stream");
        meter.record(100, 800);
        meter.record(20, 160);
        assert_eq!(meter.tuples(), 120);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stream.tuples"), Some(120));
        assert_eq!(snap.counter("stream.bytes"), Some(960));
    }

    #[test]
    fn percentiles() {
        let mut stats = LatencyStats::new();
        for ms in 1..=100u64 {
            stats.record(Duration::from_micros(ms));
        }
        assert_eq!(stats.percentile_us(50.0), Some(50));
        assert_eq!(stats.percentile_us(95.0), Some(95));
        assert_eq!(stats.percentile_us(100.0), Some(100));
        assert_eq!(stats.count(), 100);
    }

    #[test]
    fn empty_stats_are_none() {
        let stats = LatencyStats::new();
        assert_eq!(stats.percentile_us(50.0), None);
        assert_eq!(stats.mean_us(), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(Duration::from_micros(1));
        let mut b = LatencyStats::new();
        b.record(Duration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_us(), Some(2.0));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(format_rate(12.0), "12 tuples/s");
        assert_eq!(format_rate(1_500.0), "1.5 Ktuples/s");
        assert_eq!(format_rate(10_000_000.0), "10.00 Mtuples/s");
    }
}
