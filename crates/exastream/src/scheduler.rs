//! Least-loaded operator placement.
//!
//! "The Scheduler places stream and relational operators on worker nodes
//! based on the node's load." Placement is greedy: operators are assigned,
//! in descending cost order, to the currently least-loaded worker — the
//! classical LPT heuristic, whose makespan is within 4/3 of optimal.

use std::collections::HashMap;

/// What kind of work a scheduled operator represents. Continuous operators
/// hold their worker's load until deregistration; static fragments are
/// transient — placed for one execution round and released when it ends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TaskKind {
    /// A standing stream operator (registered continuous query).
    #[default]
    Continuous,
    /// One disjunct of a federated static query (see
    /// [`crate::gateway::StaticFragment`]).
    StaticFragment,
}

/// A schedulable operator: an id and an estimated cost (e.g. expected tuples
/// per tick).
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorTask {
    /// Caller-meaningful id (query id, fragment id…).
    pub id: u64,
    /// Cost estimate in abstract work units.
    pub cost: f64,
    /// Lifetime class of the operator.
    pub kind: TaskKind,
}

impl OperatorTask {
    /// A standing continuous-query operator.
    pub fn continuous(id: u64, cost: f64) -> Self {
        OperatorTask {
            id,
            cost,
            kind: TaskKind::Continuous,
        }
    }

    /// A transient static-query fragment.
    pub fn static_fragment(id: u64, cost: f64) -> Self {
        OperatorTask {
            id,
            cost,
            kind: TaskKind::StaticFragment,
        }
    }
}

/// The result of placing a set of operators.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    /// operator id → worker id.
    pub assignment: HashMap<u64, usize>,
    /// Final per-worker load.
    pub loads: Vec<f64>,
}

impl Placement {
    /// Largest per-worker load (the makespan).
    pub fn max_load(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest per-worker load.
    pub fn min_load(&self) -> f64 {
        self.loads.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Load imbalance ratio (max/mean); 1.0 is perfect.
    pub fn imbalance(&self) -> f64 {
        let mean = self.loads.iter().sum::<f64>() / self.loads.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_load() / mean
        }
    }
}

/// A stateful scheduler tracking cumulative worker load across successive
/// placement rounds (queries register over time).
#[derive(Clone, Debug)]
pub struct Scheduler {
    loads: Vec<f64>,
}

impl Scheduler {
    /// A scheduler for `workers` nodes, all initially idle.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        Scheduler {
            loads: vec![0.0; workers],
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.loads.len()
    }

    /// Current per-worker load.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Places one operator on the least-loaded worker, returning its worker.
    pub fn place_one(&mut self, task: &OperatorTask) -> usize {
        let (worker, _) = self
            .loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .expect("non-empty");
        self.loads[worker] += task.cost;
        worker
    }

    /// Places a batch of operators LPT-style (descending cost), returning
    /// the placement.
    pub fn place_batch(&mut self, tasks: &[OperatorTask]) -> Placement {
        let mut sorted: Vec<&OperatorTask> = tasks.iter().collect();
        sorted.sort_by(|a, b| b.cost.total_cmp(&a.cost));
        let mut assignment = HashMap::with_capacity(tasks.len());
        for task in sorted {
            let worker = self.place_one(task);
            assignment.insert(task.id, worker);
        }
        Placement {
            assignment,
            loads: self.loads.clone(),
        }
    }

    /// Releases an operator's load from a worker (query deregistration).
    pub fn release(&mut self, worker: usize, cost: f64) {
        self.loads[worker] = (self.loads[worker] - cost).max(0.0);
    }

    /// Releases the load of every [`TaskKind::StaticFragment`] task in a
    /// completed placement round. Continuous operators keep their load
    /// until explicit deregistration — this is the behavioral split the
    /// task kind encodes.
    pub fn release_transient(&mut self, tasks: &[OperatorTask], placement: &Placement) {
        for task in tasks {
            if task.kind == TaskKind::StaticFragment {
                if let Some(&worker) = placement.assignment.get(&task.id) {
                    self.release(worker, task.cost);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(costs: &[f64]) -> Vec<OperatorTask> {
        costs
            .iter()
            .enumerate()
            .map(|(i, &c)| OperatorTask::continuous(i as u64, c))
            .collect()
    }

    #[test]
    fn single_placement_targets_least_loaded() {
        let mut s = Scheduler::new(3);
        s.loads = vec![5.0, 1.0, 3.0];
        let w = s.place_one(&OperatorTask::continuous(9, 2.0));
        assert_eq!(w, 1);
        assert_eq!(s.loads()[1], 3.0);
    }

    #[test]
    fn batch_placement_assigns_everything() {
        let mut s = Scheduler::new(4);
        let ts = tasks(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let p = s.place_batch(&ts);
        assert_eq!(p.assignment.len(), 8);
        let total: f64 = p.loads.iter().sum();
        assert!((total - 31.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_beats_worst_case_bound() {
        let mut s = Scheduler::new(3);
        let ts = tasks(&[7.0, 7.0, 6.0, 6.0, 5.0, 5.0, 4.0, 4.0, 4.0]);
        let p = s.place_batch(&ts);
        let optimal = 48.0 / 3.0;
        assert!(
            p.max_load() <= optimal * 4.0 / 3.0 + 1e-9,
            "makespan {}",
            p.max_load()
        );
    }

    #[test]
    fn uniform_tasks_balance_perfectly() {
        let mut s = Scheduler::new(8);
        let ts = tasks(&[1.0; 64]);
        let p = s.place_batch(&ts);
        assert!((p.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(p.max_load(), p.min_load());
    }

    #[test]
    fn release_reduces_load() {
        let mut s = Scheduler::new(2);
        let w = s.place_one(&OperatorTask::static_fragment(0, 4.0));
        s.release(w, 4.0);
        assert_eq!(s.loads()[w], 0.0);
        // Releasing more than present clamps at zero.
        s.release(w, 10.0);
        assert_eq!(s.loads()[w], 0.0);
    }

    #[test]
    fn release_transient_spares_continuous_load() {
        let mut s = Scheduler::new(2);
        let mixed = vec![
            OperatorTask::continuous(0, 3.0),
            OperatorTask::static_fragment(1, 2.0),
            OperatorTask::static_fragment(2, 2.0),
        ];
        let p = s.place_batch(&mixed);
        let total_before: f64 = s.loads().iter().sum();
        assert!((total_before - 7.0).abs() < 1e-9);
        s.release_transient(&mixed, &p);
        let total_after: f64 = s.loads().iter().sum();
        assert!(
            (total_after - 3.0).abs() < 1e-9,
            "only the continuous operator keeps its load: {:?}",
            s.loads()
        );
    }

    #[test]
    fn incremental_rounds_accumulate() {
        let mut s = Scheduler::new(2);
        s.place_batch(&tasks(&[2.0, 2.0]));
        let p = s.place_batch(&tasks(&[2.0, 2.0]));
        assert_eq!(p.loads, vec![4.0, 4.0]);
    }
}
