//! Worker nodes and data sharding.

use std::sync::Arc;

use optique_relational::{Database, SqlError, Table};

/// The shard a key value routes to — re-exported from the fragment layer so
/// table sharding and fragment routing share one hash, bit-for-bit.
pub use optique_relational::fragment::shard_of;

/// One simulated worker node: an id plus its private catalog shard.
///
/// Workers are deliberately share-nothing — all inter-worker dataflow goes
/// through [`crate::exchange`] — so the thread-per-worker execution in
/// [`Cluster::parallel_query`] faithfully models the paper's distributed
/// layout on a single box.
#[derive(Clone, Debug)]
pub struct Worker {
    /// Worker id, `0..cluster.size()`.
    pub id: usize,
    /// The worker's catalog: its shard of partitioned tables plus full
    /// replicas of broadcast (static) tables.
    pub db: Arc<Database>,
}

/// A simulated cluster of share-nothing workers.
pub struct Cluster {
    workers: Vec<Worker>,
}

impl Cluster {
    /// Builds a cluster of `n` workers; `provision` constructs each worker's
    /// catalog (receives the worker id).
    pub fn provision(n: usize, provision: impl Fn(usize) -> Database) -> Self {
        assert!(n > 0, "cluster needs at least one worker");
        let workers = (0..n)
            .map(|id| Worker {
                id,
                db: Arc::new(provision(id)),
            })
            .collect();
        Cluster { workers }
    }

    /// A cluster of `n` workers all sharing one catalog (broadcast
    /// replication — the static-source pattern: every worker can answer any
    /// fragment, and the federation layer spreads fragments across them).
    pub fn replicated(n: usize, db: Arc<Database>) -> Self {
        assert!(n > 0, "cluster needs at least one worker");
        let workers = (0..n)
            .map(|id| Worker {
                id,
                db: Arc::clone(&db),
            })
            .collect();
        Cluster { workers }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// The workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Runs the same SQL(+) text on every worker's shard in parallel and
    /// concatenates the per-shard results (partitioned-table pattern:
    /// correct when the query groups/filters by the partition key or the
    /// caller merges downstream).
    pub fn parallel_query(&self, sql: &str) -> Result<Vec<Table>, SqlError> {
        let mut results: Vec<Option<Result<Table, SqlError>>> =
            (0..self.workers.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers.len());
            for worker in &self.workers {
                let db = Arc::clone(&worker.db);
                handles.push((
                    worker.id,
                    scope.spawn(move || optique_relational::exec::query(sql, &db)),
                ));
            }
            for (id, handle) in handles {
                results[id] = Some(handle.join().expect("worker thread panicked"));
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every worker reported"))
            .collect()
    }

    /// Runs a different closure per worker in parallel (operator placement
    /// execution path). Results come back in worker order.
    pub fn parallel_map<T: Send>(&self, f: impl Fn(&Worker) -> T + Sync) -> Vec<T> {
        let mut results: Vec<Option<T>> = (0..self.workers.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers.len());
            for worker in &self.workers {
                let f = &f;
                handles.push((worker.id, scope.spawn(move || f(worker))));
            }
            for (id, handle) in handles {
                results[id] = Some(handle.join().expect("worker thread panicked"));
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("worker reported"))
            .collect()
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({} workers)", self.workers.len())
    }
}

/// Hash-partitions a table's rows into `n` shards by the value in `key_col`
/// (NULL keys go to shard 0). This is how measurement streams are
/// distributed by sensor across the cluster.
pub fn hash_partition(table: &Table, key_col: usize, n: usize) -> Vec<Table> {
    assert!(n > 0);
    let mut shards: Vec<Table> = (0..n).map(|_| Table::empty(table.schema.clone())).collect();
    for row in &table.rows {
        let shard = shard_of(&row[key_col], n);
        shards[shard].rows.push(row.clone());
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{Column, ColumnType, Schema, Value};

    fn measurements(n: i64) -> Table {
        let schema = Schema::qualified(
            "m",
            vec![
                Column::new("sensor_id", ColumnType::Int),
                Column::new("value", ColumnType::Float),
            ],
        );
        let rows = (0..n)
            .map(|i| vec![Value::Int(i % 50), Value::Float(i as f64)])
            .collect();
        Table::new(schema, rows).unwrap()
    }

    #[test]
    fn partitioning_is_complete_and_disjoint() {
        let t = measurements(1000);
        let shards = hash_partition(&t, 0, 8);
        assert_eq!(shards.iter().map(Table::len).sum::<usize>(), 1000);
        // Same key always lands on the same shard.
        for shard in &shards {
            for row in &shard.rows {
                assert_eq!(
                    shard_of(&row[0], 8),
                    shard_of(
                        &shards
                            .iter()
                            .flat_map(|s| &s.rows)
                            .find(|r| r[0] == row[0])
                            .unwrap()[0],
                        8
                    )
                );
            }
        }
    }

    #[test]
    fn partitioning_balances_reasonably() {
        let t = measurements(5000);
        let shards = hash_partition(&t, 0, 4);
        for s in &shards {
            assert!(
                s.len() > 500,
                "shard with {} rows is suspiciously empty",
                s.len()
            );
        }
    }

    #[test]
    fn parallel_query_covers_all_shards() {
        let t = measurements(1000);
        let shards = hash_partition(&t, 0, 4);
        let cluster = Cluster::provision(4, |id| {
            let mut db = Database::new();
            db.put_table("m", shards[id].clone());
            db
        });
        let results = cluster
            .parallel_query("SELECT COUNT(*) AS n FROM m")
            .unwrap();
        let total: i64 = results.iter().map(|t| t.rows[0][0].as_i64().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn parallel_map_in_worker_order() {
        let cluster = Cluster::provision(6, |_| Database::new());
        let ids = cluster.parallel_map(|w| w.id);
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn per_key_grouping_is_shard_local() {
        // Because partitioning is by sensor, per-sensor aggregates computed
        // shard-locally are globally correct.
        let t = measurements(1000);
        let shards = hash_partition(&t, 0, 4);
        let cluster = Cluster::provision(4, |id| {
            let mut db = Database::new();
            db.put_table("m", shards[id].clone());
            db
        });
        let results = cluster
            .parallel_query("SELECT sensor_id, COUNT(*) AS n FROM m GROUP BY sensor_id")
            .unwrap();
        let mut counts = std::collections::HashMap::new();
        for t in &results {
            for row in &t.rows {
                *counts.entry(row[0].as_i64().unwrap()).or_insert(0i64) += row[1].as_i64().unwrap();
            }
        }
        assert_eq!(counts.len(), 50);
        assert!(counts.values().all(|&n| n == 20));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_cluster_rejected() {
        let _ = Cluster::provision(0, |_| Database::new());
    }
}
