//! User-defined functions and fused operator pipelines.
//!
//! "The EXASTREAM system natively supports User Defined Functions (UDFs)
//! with arbitrary user code. The engine blends the execution of UDFs
//! together with relational operators using JIT tracing compilation
//! techniques." Rust has no JIT here; the honest equivalent of trace
//! compilation for this engine is **operator fusion**: a chain of
//! filter/map/UDF stages compiled (at registration time) into one closure
//! that runs per tuple without intermediate batch materialization — the same
//! "only the relevant execution traces are used" effect, minus the runtime
//! code generation.

use std::collections::HashMap;
use std::sync::Arc;

use optique_relational::{SqlError, Value};

/// A scalar UDF over row slices.
pub type ScalarUdf = Arc<dyn Fn(&[Value]) -> Result<Value, SqlError> + Send + Sync>;

/// Registry of scalar UDFs (case-insensitive names).
#[derive(Clone, Default)]
pub struct UdfRegistry {
    scalars: HashMap<String, ScalarUdf>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        UdfRegistry::default()
    }

    /// Registers a scalar UDF.
    pub fn register(&mut self, name: impl Into<String>, f: ScalarUdf) {
        self.scalars.insert(name.into().to_ascii_lowercase(), f);
    }

    /// Looks up a UDF.
    pub fn get(&self, name: &str) -> Option<&ScalarUdf> {
        self.scalars.get(&name.to_ascii_lowercase())
    }

    /// Calls a UDF by name.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, SqlError> {
        let f = self
            .get(name)
            .ok_or_else(|| SqlError::Binding(format!("unknown UDF {name}")))?;
        f(args)
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UdfRegistry({} scalar UDFs)", self.scalars.len())
    }
}

/// A boxed row predicate.
pub type RowPredicate = Box<dyn Fn(&[Value]) -> bool + Send + Sync>;
/// A boxed row transform.
pub type RowTransform = Box<dyn Fn(Vec<Value>) -> Vec<Value> + Send + Sync>;

/// One stage of a tuple pipeline.
pub enum Stage {
    /// Keep rows satisfying the predicate.
    Filter(RowPredicate),
    /// Transform the row.
    Map(RowTransform),
}

/// A pipeline of stages, executable fused (one pass per tuple) or
/// materialized (one pass per stage) — the E7 ablation pair.
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Self {
        Pipeline { stages: Vec::new() }
    }

    /// Appends a filter stage.
    pub fn filter(mut self, pred: impl Fn(&[Value]) -> bool + Send + Sync + 'static) -> Self {
        self.stages.push(Stage::Filter(Box::new(pred)));
        self
    }

    /// Appends a map stage.
    pub fn map(mut self, f: impl Fn(Vec<Value>) -> Vec<Value> + Send + Sync + 'static) -> Self {
        self.stages.push(Stage::Map(Box::new(f)));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Fused execution: each tuple flows through every stage before the next
    /// tuple starts; no intermediate vectors.
    pub fn run_fused(&self, input: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(input.len());
        'tuple: for mut row in input {
            for stage in &self.stages {
                match stage {
                    Stage::Filter(pred) => {
                        if !pred(&row) {
                            continue 'tuple;
                        }
                    }
                    Stage::Map(f) => row = f(row),
                }
            }
            out.push(row);
        }
        out
    }

    /// Operator-at-a-time execution: every stage materializes its full
    /// output before the next begins (the unfused baseline).
    pub fn run_materialized(&self, input: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let mut current = input;
        for stage in &self.stages {
            current = match stage {
                Stage::Filter(pred) => current.into_iter().filter(|r| pred(r)).collect(),
                Stage::Map(f) => current.into_iter().map(f).collect(),
            };
        }
        current
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 * 0.5)])
            .collect()
    }

    fn sample_pipeline() -> Pipeline {
        Pipeline::new()
            .filter(|r| r[0].as_i64().unwrap() % 2 == 0)
            .map(|mut r| {
                let v = r[1].as_f64().unwrap();
                r[1] = Value::Float(v * 10.0);
                r
            })
            .filter(|r| r[1].as_f64().unwrap() > 10.0)
    }

    #[test]
    fn fused_equals_materialized() {
        let p = sample_pipeline();
        let input = rows(100);
        assert_eq!(p.run_fused(input.clone()), p.run_materialized(input));
    }

    #[test]
    fn filter_then_map_applies_in_order() {
        let p = sample_pipeline();
        let out = p.run_fused(rows(10));
        // Even ids with 5·i > 10 → i ∈ {4, 6, 8}.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0][0], Value::Int(4));
        assert_eq!(out[0][1], Value::Float(20.0));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let p = Pipeline::new();
        assert_eq!(p.run_fused(rows(5)), rows(5));
        assert!(p.is_empty());
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = UdfRegistry::new();
        reg.register(
            "FahrenheitToCelsius",
            Arc::new(|args: &[Value]| {
                let f = args[0]
                    .as_f64()
                    .ok_or_else(|| SqlError::Type("needs a number".into()))?;
                Ok(Value::Float((f - 32.0) * 5.0 / 9.0))
            }),
        );
        let v = reg
            .call("fahrenheittocelsius", &[Value::Float(212.0)])
            .unwrap();
        assert_eq!(v, Value::Float(100.0));
        assert!(reg.call("missing", &[]).is_err());
    }
}
