//! Partition/merge dataflow between workers.
//!
//! Two movement patterns cover the unfolded Siemens plans: **repartition**
//! (hash rows to the worker owning their key — used when a join/group key
//! differs from the current partitioning) and **merge** (gather per-worker
//! partial results and combine). Partial-aggregate merging understands the
//! decomposable aggregates (`COUNT`/`SUM`/`MIN`/`MAX`), which is what
//! shard-local aggregation plus a global combine step needs.

use std::collections::HashMap;

use optique_relational::{ResultBatch, SqlError, Table, Value};

use crate::cluster::shard_of;

/// Worker side of a result transfer: encodes a table as a [`ResultBatch`]
/// wire string. Workers here are threads, so the "wire" is a `String`
/// crossing the thread boundary — but the encode/decode pair enforces the
/// same discipline a socket would (values survive on their own; schema
/// qualifiers and index handles do not).
pub fn ship(table: &Table) -> String {
    ResultBatch::from_table(table).encode()
}

/// Coordinator side of a result transfer: decodes a [`ship`]ped wire string
/// back into a table.
pub fn receive(wire: &str) -> Result<Table, SqlError> {
    ResultBatch::decode(wire)?.into_table()
}

/// Hash-repartitions rows across `n` buckets by `key_col`.
pub fn repartition(rows: Vec<Vec<Value>>, key_col: usize, n: usize) -> Vec<Vec<Vec<Value>>> {
    let mut buckets: Vec<Vec<Vec<Value>>> = (0..n).map(|_| Vec::new()).collect();
    for row in rows {
        let b = shard_of(&row[key_col], n);
        buckets[b].push(row);
    }
    buckets
}

/// Concatenates per-worker tables (schemas must agree in arity).
pub fn merge_concat(parts: Vec<Table>) -> Result<Table, SqlError> {
    let mut iter = parts.into_iter();
    let Some(mut first) = iter.next() else {
        return Err(SqlError::Execution("merge of zero partitions".into()));
    };
    for part in iter {
        if part.schema.len() != first.schema.len() {
            return Err(SqlError::Execution(format!(
                "partition arity mismatch: {} vs {}",
                part.schema.len(),
                first.schema.len()
            )));
        }
        first.rows.extend(part.rows);
    }
    Ok(first)
}

/// How to combine one partial-aggregate column during a global merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOp {
    /// Sum partials (COUNT and SUM).
    Sum,
    /// Keep the minimum.
    Min,
    /// Keep the maximum.
    Max,
}

/// Merges per-worker pre-aggregated tables of shape
/// `[group key columns..., aggregate columns...]`, combining rows with equal
/// keys using `ops` (one per aggregate column).
pub fn merge_partial_aggregates(
    parts: Vec<Table>,
    key_cols: usize,
    ops: &[MergeOp],
) -> Result<Table, SqlError> {
    let concat = merge_concat(parts)?;
    if key_cols + ops.len() != concat.schema.len() {
        return Err(SqlError::Execution(format!(
            "merge shape mismatch: {} keys + {} aggs vs {} columns",
            key_cols,
            ops.len(),
            concat.schema.len()
        )));
    }
    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in concat.rows {
        let key: Vec<Value> = row[..key_cols].to_vec();
        let aggs = &row[key_cols..];
        match groups.get_mut(&key) {
            None => {
                order.push(key.clone());
                groups.insert(key, aggs.to_vec());
            }
            Some(acc) => {
                for (i, op) in ops.iter().enumerate() {
                    let current = &acc[i];
                    let incoming = &aggs[i];
                    acc[i] = combine(*op, current, incoming)?;
                }
            }
        }
    }
    let mut out = Table::empty(concat.schema);
    for key in order {
        let mut row = key.clone();
        row.extend(groups.remove(&key).expect("group present"));
        out.rows.push(row);
    }
    Ok(out)
}

fn combine(op: MergeOp, a: &Value, b: &Value) -> Result<Value, SqlError> {
    if a.is_null() {
        return Ok(b.clone());
    }
    if b.is_null() {
        return Ok(a.clone());
    }
    Ok(match op {
        MergeOp::Sum => match (a, b) {
            // Checked like the worker-side SUM accumulator: merging partials
            // must overflow (typed) exactly where single-node execution would,
            // not wrap.
            (Value::Int(x), Value::Int(y)) => Value::Int(
                x.checked_add(*y)
                    .ok_or_else(|| SqlError::Overflow(format!("merging SUM partials {x} + {y}")))?,
            ),
            _ => {
                let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                    return Err(SqlError::Type(format!("cannot sum {a} and {b}")));
                };
                Value::Float(x + y)
            }
        },
        MergeOp::Min => {
            if a.total_cmp(b).is_le() {
                a.clone()
            } else {
                b.clone()
            }
        }
        MergeOp::Max => {
            if a.total_cmp(b).is_ge() {
                a.clone()
            } else {
                b.clone()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{Column, ColumnType, Schema};

    fn agg_table(rows: Vec<Vec<Value>>) -> Table {
        let schema = Schema::new(vec![
            Column::new("sensor_id", ColumnType::Int),
            Column::new("n", ColumnType::Int),
            Column::new("mx", ColumnType::Float),
        ]);
        Table::new(schema, rows).unwrap()
    }

    #[test]
    fn repartition_routes_by_key() {
        let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int(i % 10)]).collect();
        let buckets = repartition(rows, 0, 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        for bucket in &buckets {
            for row in bucket {
                assert_eq!(
                    shard_of(&row[0], 4),
                    buckets
                        .iter()
                        .position(|b| std::ptr::eq(b, bucket))
                        .unwrap()
                );
            }
        }
    }

    #[test]
    fn merge_concat_appends() {
        let a = agg_table(vec![vec![Value::Int(1), Value::Int(2), Value::Float(9.0)]]);
        let b = agg_table(vec![vec![Value::Int(2), Value::Int(3), Value::Float(8.0)]]);
        let m = merge_concat(vec![a, b]).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_partials_combines_matching_keys() {
        let a = agg_table(vec![
            vec![Value::Int(1), Value::Int(2), Value::Float(9.0)],
            vec![Value::Int(2), Value::Int(1), Value::Float(5.0)],
        ]);
        let b = agg_table(vec![vec![Value::Int(1), Value::Int(3), Value::Float(11.0)]]);
        let m = merge_partial_aggregates(vec![a, b], 1, &[MergeOp::Sum, MergeOp::Max]).unwrap();
        assert_eq!(m.len(), 2);
        let s1 = m.rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(s1[1], Value::Int(5));
        assert_eq!(s1[2], Value::Float(11.0));
    }

    #[test]
    fn merge_handles_null_partials() {
        let a = agg_table(vec![vec![Value::Int(1), Value::Int(1), Value::Null]]);
        let b = agg_table(vec![vec![Value::Int(1), Value::Int(1), Value::Float(3.0)]]);
        let m = merge_partial_aggregates(vec![a, b], 1, &[MergeOp::Sum, MergeOp::Max]).unwrap();
        assert_eq!(m.rows[0][2], Value::Float(3.0));
    }

    #[test]
    fn merge_shape_mismatch_rejected() {
        let a = agg_table(vec![]);
        let err = merge_partial_aggregates(vec![a], 1, &[MergeOp::Sum]).unwrap_err();
        assert!(matches!(err, SqlError::Execution(_)));
    }

    #[test]
    fn merge_of_nothing_rejected() {
        assert!(merge_concat(vec![]).is_err());
    }

    #[test]
    fn ship_receive_preserves_rows_and_names() {
        let t = agg_table(vec![
            vec![Value::Int(1), Value::Int(2), Value::Float(9.0)],
            vec![Value::Int(2), Value::Null, Value::Float(5.5)],
        ]);
        let shipped = receive(&ship(&t)).unwrap();
        assert_eq!(shipped.rows, t.rows);
        assert_eq!(shipped.schema.header(), vec!["sensor_id", "n", "mx"]);
        assert!(receive("garbage").is_err());
    }
}
