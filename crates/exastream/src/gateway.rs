//! The asynchronous gateway server and continuous-query registry.
//!
//! Queries enter ExaStream through the gateway: registration validates the
//! SQL(+), asks the [`Scheduler`] for a worker placement, and records the
//! query in the registry. The demo's S1/S2 scenarios — registering and
//! monitoring up to 1,024 concurrent diagnostic tasks — drive exactly this
//! interface. An [`AsyncFrontend`] accepts submissions from any thread over
//! a channel, mirroring the paper's "Asynchronous Gateway Server".

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use optique_relational::{Database, PaneStore, PlanFragment, SelectStatement, SqlError, Table};
use optique_telemetry::SpanRecord;
use parking_lot::Mutex;

use crate::cluster::Cluster;
use crate::exchange;
use crate::scheduler::{OperatorTask, Scheduler};

/// How many prepared statements each worker's plan cache retains.
const PLAN_CACHE_CAPACITY: usize = 256;

/// A worker-local cache of prepared fragment statements, keyed by the
/// fragment's wire text (which fully determines the parsed, sliced,
/// restricted statement). Scatter rounds ship the *same* wire to a worker
/// tick after tick — window fragments of a recurring continuous query, the
/// per-disjunct fragments of a repeated static query — and without the
/// cache every execution re-pays the parse. FIFO eviction; hit/miss
/// counters feed the dashboard.
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<PlanEntries>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct PlanEntries {
    map: HashMap<String, Arc<SelectStatement>>,
    order: VecDeque<String>,
}

impl PlanCache {
    /// The prepared statement for `wire`, parsing (and memoizing) on first
    /// sight. The flag reports whether this call hit the cache — callers
    /// that account per *round* sum these flags instead of diffing the
    /// cumulative counters, which concurrent rounds would cross-pollute.
    pub fn get_or_prepare(&self, wire: &str) -> Result<(Arc<SelectStatement>, bool), SqlError> {
        if let Some(hit) = self.inner.lock().map.get(wire) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let statement = Arc::new(PlanFragment::decode(wire)?.statement()?);
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.map.get(wire) {
            // A racing worker thread prepared it first; share that one
            // (this call still parsed, so it counts as the miss it was).
            return Ok((Arc::clone(existing), false));
        }
        if inner.map.len() >= PLAN_CACHE_CAPACITY {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            }
        }
        inner.order.push_back(wire.to_string());
        inner.map.insert(wire.to_string(), Arc::clone(&statement));
        Ok((statement, false))
    }

    /// Cumulative cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative cache misses (= parses).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Prepared statements currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Opaque continuous-query id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// A registered continuous query.
#[derive(Clone, Debug)]
pub struct RegisteredQuery {
    /// Its id.
    pub id: QueryId,
    /// The SQL(+) text executed at each tick.
    pub sql: String,
    /// The worker the scheduler placed it on.
    pub worker: usize,
    /// The cost estimate used for placement.
    pub cost: f64,
}

/// The gateway: registry + scheduler + cluster handle.
pub struct Gateway {
    cluster: Arc<Cluster>,
    scheduler: Mutex<Scheduler>,
    registry: Mutex<HashMap<QueryId, RegisteredQuery>>,
    next_id: AtomicU64,
    /// One plan cache per worker (a real cluster's cache lives with the
    /// worker process, so the simulation keeps them worker-local too).
    plan_caches: Vec<PlanCache>,
    /// One pane store per worker: shard-local partial aggregates answering
    /// pane-combine fragments incrementally (worker-local for the same
    /// reason the plan caches are).
    pane_stores: Vec<PaneStore>,
}

impl Gateway {
    /// A gateway over `cluster`.
    pub fn new(cluster: Arc<Cluster>) -> Arc<Self> {
        let scheduler = Scheduler::new(cluster.size());
        let plan_caches = (0..cluster.size()).map(|_| PlanCache::default()).collect();
        let pane_stores = (0..cluster.size()).map(|_| PaneStore::new()).collect();
        Arc::new(Gateway {
            cluster,
            scheduler: Mutex::new(scheduler),
            registry: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            plan_caches,
            pane_stores,
        })
    }

    /// Summed plan-cache hits and misses across the workers.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plan_caches
            .iter()
            .fold((0, 0), |(h, m), c| (h + c.hits(), m + c.misses()))
    }

    /// Summed pane-store hits and misses across the workers.
    pub fn pane_stats(&self) -> (u64, u64) {
        self.pane_stores.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.stats();
            (h + sh, m + sm)
        })
    }

    /// Registers a continuous query: validates it parses, places it on the
    /// least-loaded worker, records it.
    pub fn register(&self, sql: impl Into<String>, cost: f64) -> Result<QueryId, SqlError> {
        let sql = sql.into();
        optique_relational::parse_select(&sql)?;
        let id = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let worker = self
            .scheduler
            .lock()
            .place_one(&OperatorTask::continuous(id.0, cost));
        self.registry.lock().insert(
            id,
            RegisteredQuery {
                id,
                sql,
                worker,
                cost,
            },
        );
        Ok(id)
    }

    /// Deregisters a query, releasing its scheduler load. Returns whether it
    /// existed.
    pub fn deregister(&self, id: QueryId) -> bool {
        match self.registry.lock().remove(&id) {
            Some(q) => {
                self.scheduler.lock().release(q.worker, q.cost);
                true
            }
            None => false,
        }
    }

    /// Number of registered queries.
    pub fn registered(&self) -> usize {
        self.registry.lock().len()
    }

    /// Copy of a query's registration record.
    pub fn query_info(&self, id: QueryId) -> Option<RegisteredQuery> {
        self.registry.lock().get(&id).cloned()
    }

    /// Current scheduler loads (one per worker).
    pub fn worker_loads(&self) -> Vec<f64> {
        self.scheduler.lock().loads().to_vec()
    }

    /// Executes every registered query once, each on its placed worker's
    /// shard, workers running in parallel. Results are `(query, table)`
    /// pairs in query-id order.
    pub fn run_all(&self) -> Vec<(QueryId, Result<Table, SqlError>)> {
        let queries: Vec<RegisteredQuery> = {
            let reg = self.registry.lock();
            let mut qs: Vec<_> = reg.values().cloned().collect();
            qs.sort_by_key(|q| q.id);
            qs
        };
        // Group by worker so each worker thread runs its own queue.
        let mut per_worker: Vec<Vec<RegisteredQuery>> =
            (0..self.cluster.size()).map(|_| Vec::new()).collect();
        for q in queries {
            per_worker[q.worker].push(q);
        }
        let outputs = self.cluster.parallel_map(|worker| {
            let mut out = Vec::new();
            for q in &per_worker[worker.id] {
                out.push((q.id, optique_relational::exec::query(&q.sql, &worker.db)));
            }
            out
        });
        let mut all: Vec<(QueryId, Result<Table, SqlError>)> =
            outputs.into_iter().flatten().collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }
    /// [`Gateway::run_static_round`], returning only the gathered tables —
    /// the original interface, kept for callers that need no accounting.
    pub fn run_static_fragments(
        &self,
        fragments: &[StaticFragment],
    ) -> Vec<Result<Table, SqlError>> {
        self.run_static_round(fragments).tables
    }

    /// Executes a round of federated static-query fragments and gathers the
    /// per-fragment results, in input order, plus the round's accounting.
    ///
    /// Fragments cross the worker boundary through the
    /// [`PlanFragment`]/[`ResultBatch`] wire format (see
    /// [`optique_relational::fragment`]). Placement:
    ///
    /// * **placed** fragments (`scatter == false`) go to one worker each,
    ///   LPT-style by cost through the live [`Scheduler`] — so a heavy
    ///   static round routes around heavily-loaded stream workers — and are
    ///   released again once the round completes (they are transient, unlike
    ///   registered continuous queries);
    /// * **scatter** fragments (`scatter == true`) run on every worker's
    ///   shard of a hash-partitioned table and their per-worker partial
    ///   results are concatenated on gather — unless the fragment's
    ///   partition metadata plus a key-derived semi-join let
    ///   [`PlanFragment::shard_plan`] prune the round, in which case only
    ///   the shards that can hold matching keys execute, each receiving
    ///   just its slice of the `IN`-list.
    pub fn run_static_round(&self, fragments: &[StaticFragment]) -> StaticRound {
        let size = self.cluster.size();
        let round_started = Instant::now();

        // Place the non-scatter fragments as transient StaticFragment tasks.
        let tasks: Vec<OperatorTask> = fragments
            .iter()
            .filter(|f| !f.scatter)
            .map(|f| OperatorTask::static_fragment(f.fragment.id, f.fragment.cost))
            .collect();
        let placement = self.scheduler.lock().place_batch(&tasks);

        // Coordinator side: per-worker queues of fragment wires. Shard-pruned
        // scatter fragments encode one wire per target shard (each carrying
        // that shard's `IN`-list slice); everything else encodes once.
        struct Queued {
            idx: usize,
            wire: Arc<String>,
            op: Arc<String>,
            scatter: bool,
        }
        let mut queues: Vec<Vec<Queued>> = (0..size).map(|_| Vec::new()).collect();
        let mut shards_pruned = 0usize;
        for (idx, f) in fragments.iter().enumerate() {
            let op = Arc::new(f.fragment.describe());
            if f.scatter {
                let plan = match &f.statement {
                    Some(statement) => f.fragment.shard_plan_with(statement, size),
                    None => f.fragment.shard_plan(size),
                };
                match plan {
                    Some(plan) => {
                        shards_pruned += size - plan.len();
                        for (shard, fragment) in plan {
                            queues[shard].push(Queued {
                                idx,
                                wire: Arc::new(fragment.encode()),
                                op: Arc::clone(&op),
                                scatter: true,
                            });
                        }
                    }
                    None => {
                        let wire = Arc::new(f.fragment.encode());
                        for queue in queues.iter_mut() {
                            queue.push(Queued {
                                idx,
                                wire: Arc::clone(&wire),
                                op: Arc::clone(&op),
                                scatter: true,
                            });
                        }
                    }
                }
            } else {
                queues[placement.assignment[&f.fragment.id]].push(Queued {
                    idx,
                    wire: Arc::new(f.fragment.encode()),
                    op,
                    scatter: false,
                });
            }
        }

        // Worker side: prepare each fragment through the worker's plan
        // cache (decode + parse + slice + restrict, memoized by wire text —
        // scatter rounds repeat identical wires across ticks), execute on
        // the local shard, ship the result batch back over the wire.
        // Each worker counts its own hits/misses for *this* round (the
        // cumulative cache counters are shared across concurrent rounds
        // and would cross-attribute), and records one span per fragment
        // execution — queue wait, plan-cache outcome, rows and wire bytes —
        // under a per-worker root span, all relative to the round start so
        // the coordinator can graft them into its trace.
        type WorkerOutput = (
            Vec<(usize, Result<String, SqlError>)>,
            u64,
            u64,
            (u64, u64),
            Vec<SpanRecord>,
        );
        let outputs: Vec<WorkerOutput> = self.cluster.parallel_map(|worker| {
            let cache = &self.plan_caches[worker.id];
            let (mut hits, mut misses) = (0u64, 0u64);
            let (mut pane_hits, mut pane_misses) = (0u64, 0u64);
            // Per-round memo of resolved novelty views: every fragment
            // pinned at the same epoch shares one merged catalog (`None`
            // means the worker's base db already answers that epoch). The
            // epoch is stripped from the wire *before* plan caching, so
            // write-induced epoch churn never churns the plan cache.
            let mut views: HashMap<u64, Option<Database>> = HashMap::new();
            let worker_start_us = round_started.elapsed().as_micros() as u64;
            let mut frag_spans: Vec<SpanRecord> = Vec::with_capacity(queues[worker.id].len());
            let results = queues[worker.id]
                .iter()
                .map(|q| {
                    let queue_us = round_started
                        .elapsed()
                        .as_micros()
                        .saturating_sub(worker_start_us as u128)
                        as u64;
                    let frag_started = Instant::now();
                    let mut cache_hit = false;
                    let mut rows = 0u64;
                    let result = (|| {
                        let (epoch, base_wire) = optique_relational::split_novelty_wire(&q.wire);
                        if let std::collections::hash_map::Entry::Vacant(slot) = views.entry(epoch)
                        {
                            slot.insert(optique_relational::view_at(&worker.db, epoch)?);
                        }
                        let db = views[&epoch].as_ref().unwrap_or(&worker.db);
                        // Pane probes bypass SQL planning entirely — no
                        // parse, no plan cache: the worker answers from its
                        // shard-local pane store, folding at most the rows
                        // appended since the last probe.
                        if base_wire.contains("\npane\t") {
                            let fragment = PlanFragment::decode(&base_wire)?;
                            let probe = fragment.pane.as_ref().ok_or_else(|| {
                                SqlError::Execution("pane wire without probe".into())
                            })?;
                            let (table, warm) = self.pane_stores[worker.id].combine(probe, db)?;
                            cache_hit = warm;
                            if warm {
                                pane_hits += 1;
                            } else {
                                pane_misses += 1;
                            }
                            return Ok(table);
                        }
                        let (statement, hit) = cache.get_or_prepare(&base_wire)?;
                        cache_hit = hit;
                        if hit {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        optique_relational::execute_prepared(&statement, db)
                    })()
                    .map(|t| {
                        rows = t.len() as u64;
                        exchange::ship(&t)
                    });
                    let wire_bytes = result.as_ref().map(|w| w.len() as u64).unwrap_or(0);
                    let mut span = SpanRecord::new(
                        "fragment",
                        worker_start_us + queue_us,
                        frag_started.elapsed().as_micros() as u64,
                    )
                    // Parent index 0 is the worker root, prepended below.
                    .under(0)
                    .attr("op", q.op.as_str())
                    .attr("frag", q.idx)
                    .attr("worker", worker.id)
                    .attr("queue_us", queue_us)
                    .attr("cache", if cache_hit { "hit" } else { "miss" })
                    .attr("rows", rows)
                    .attr("bytes", wire_bytes);
                    if q.scatter {
                        span = span.attr("shard", worker.id);
                    }
                    frag_spans.push(span);
                    (q.idx, result)
                })
                .collect();
            let mut spans = Vec::with_capacity(frag_spans.len() + 1);
            if !frag_spans.is_empty() {
                spans.push(
                    SpanRecord::new(
                        "worker",
                        worker_start_us,
                        round_started
                            .elapsed()
                            .as_micros()
                            .saturating_sub(worker_start_us as u128) as u64,
                    )
                    .attr("worker", worker.id)
                    .attr("fragments", frag_spans.len()),
                );
                spans.extend(frag_spans);
            }
            (results, hits, misses, (pane_hits, pane_misses), spans)
        });
        let (plan_cache_hits, plan_cache_misses) = outputs
            .iter()
            .fold((0, 0), |(h, m), (_, wh, wm, _, _)| (h + wh, m + wm));
        let (pane_hits, pane_misses) = outputs
            .iter()
            .fold((0, 0), |(h, m), (_, _, _, (ph, pm), _)| (h + ph, m + pm));

        // Merge the per-worker span batches into one round batch, shifting
        // each batch's internal parent indices past the records already
        // merged (worker roots stay roots of the round batch).
        let mut spans: Vec<SpanRecord> = Vec::new();
        for (_, _, _, _, batch) in &outputs {
            let base = spans.len();
            spans.extend(batch.iter().cloned().map(|mut record| {
                record.parent = record.parent.map(|p| p + base);
                record
            }));
        }

        // The round is over: transient (StaticFragment-kind) tasks release
        // their load; continuous operators are untouched.
        self.scheduler.lock().release_transient(&tasks, &placement);

        // Gather: receive batches, concatenating scatter partials and
        // accounting the rows each worker shipped.
        let mut worker_rows = vec![0usize; size];
        let mut gathered: Vec<Option<Result<Table, SqlError>>> =
            fragments.iter().map(|_| None).collect();
        for (worker, (per_worker, _, _, _, _)) in outputs.into_iter().enumerate() {
            for (idx, wire_result) in per_worker {
                let table = wire_result.and_then(|wire| exchange::receive(&wire));
                if let Ok(t) = &table {
                    worker_rows[worker] += t.len();
                }
                match (&mut gathered[idx], table) {
                    (slot @ None, incoming) => *slot = Some(incoming),
                    (Some(Ok(acc)), Ok(part)) => acc.rows.extend(part.rows),
                    (Some(Ok(_)), Err(e)) => gathered[idx] = Some(Err(e)),
                    (Some(Err(_)), _) => {}
                }
            }
        }
        StaticRound {
            tables: gathered
                .into_iter()
                .map(|slot| slot.expect("every fragment was queued on some worker"))
                .collect(),
            worker_rows,
            shards_pruned,
            plan_cache_hits,
            plan_cache_misses,
            pane_hits,
            pane_misses,
            spans,
        }
    }
}

/// The gathered outcome of one federated static round.
#[derive(Debug)]
pub struct StaticRound {
    /// One result per submitted fragment, in input order.
    pub tables: Vec<Result<Table, SqlError>>,
    /// Rows each worker shipped back this round — per-shard observability
    /// (skew here means one shard did most of the work). The dashboard's
    /// `fragment_rows` totals are summed from the gathered tables instead;
    /// this vector is the per-worker breakdown for callers that want it.
    pub worker_rows: Vec<usize>,
    /// Scatter executions skipped because key routing proved the shard
    /// could hold no matching row.
    pub shards_pruned: usize,
    /// Fragment executions whose prepared statement came from a worker's
    /// plan cache this round (the parse was skipped).
    pub plan_cache_hits: u64,
    /// Fragment executions that had to parse this round.
    pub plan_cache_misses: u64,
    /// Pane probes answered from a warm worker pane store this round.
    pub pane_hits: u64,
    /// Pane probes that paid a full fold (first touch) or answered
    /// store-lessly this round.
    pub pane_misses: u64,
    /// Worker-side trace spans for the round, one batch root per worker
    /// that executed anything, with per-fragment children carrying worker
    /// id, shard, queue wait, plan-cache outcome, rows and wire bytes.
    /// Starts are relative to the round start; the coordinator stitches
    /// them under its execution span with `Tracer::graft`.
    pub spans: Vec<SpanRecord>,
}

/// One unit of a federated static query, as submitted to
/// [`Gateway::run_static_fragments`].
#[derive(Clone, Debug)]
pub struct StaticFragment {
    /// The serializable fragment (id, SQL, cost).
    pub fragment: PlanFragment,
    /// When true, the fragment scans a hash-partitioned table: it runs on
    /// every worker's shard and the partial results are concatenated.
    /// When false, any single worker's replica can answer it.
    pub scatter: bool,
    /// The fragment's SQL, already parsed — coordinators that classified
    /// the fragment keep the parse here so shard routing need not re-parse
    /// the identical text.
    pub statement: Option<optique_relational::SelectStatement>,
}

impl StaticFragment {
    /// A fragment answered by one worker's replica.
    pub fn placed(fragment: PlanFragment) -> Self {
        StaticFragment {
            fragment,
            scatter: false,
            statement: None,
        }
    }

    /// A fragment scanning every worker's partition.
    pub fn scattered(fragment: PlanFragment) -> Self {
        StaticFragment {
            fragment,
            scatter: true,
            statement: None,
        }
    }

    /// Attaches the already-parsed statement (builder style).
    pub fn with_statement(mut self, statement: optique_relational::SelectStatement) -> Self {
        self.statement = Some(statement);
        self
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Gateway({} queries, {} workers)",
            self.registered(),
            self.cluster.size()
        )
    }
}

/// A submission sent to the asynchronous frontend.
struct Submission {
    sql: String,
    cost: f64,
    reply: Sender<Result<QueryId, SqlError>>,
}

/// Channel-fed asynchronous registration frontend. Submissions are processed
/// by a dedicated thread; `submit` returns immediately with a receiver for
/// the eventual query id.
pub struct AsyncFrontend {
    tx: Sender<Submission>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl AsyncFrontend {
    /// Spawns the frontend thread over a gateway.
    pub fn spawn(gateway: Arc<Gateway>) -> Self {
        let (tx, rx): (Sender<Submission>, Receiver<Submission>) = unbounded();
        let handle = std::thread::spawn(move || {
            while let Ok(sub) = rx.recv() {
                let result = gateway.register(sub.sql, sub.cost);
                // Submitter may have given up; that's fine.
                let _ = sub.reply.send(result);
            }
        });
        AsyncFrontend {
            tx,
            handle: Some(handle),
        }
    }

    /// Submits a query; returns a receiver that yields its id (or error).
    pub fn submit(&self, sql: impl Into<String>, cost: f64) -> Receiver<Result<QueryId, SqlError>> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Submission {
                sql: sql.into(),
                cost,
                reply: reply_tx,
            })
            .expect("frontend thread alive");
        reply_rx
    }
}

impl Drop for AsyncFrontend {
    fn drop(&mut self) {
        // Close the channel, then join the worker.
        let (closed_tx, _) = unbounded();
        let _ = std::mem::replace(&mut self.tx, closed_tx);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{Column, ColumnType, Database, Schema, Value};

    fn cluster(n: usize) -> Arc<Cluster> {
        Arc::new(Cluster::provision(n, |id| {
            let schema = Schema::qualified(
                "m",
                vec![
                    Column::new("sensor_id", ColumnType::Int),
                    Column::new("value", ColumnType::Float),
                ],
            );
            let rows = (0..100)
                .map(|i| vec![Value::Int((id * 100 + i) as i64), Value::Float(i as f64)])
                .collect();
            let mut db = Database::new();
            db.put_table("m", Table::new(schema, rows).unwrap());
            db
        }))
    }

    #[test]
    fn register_validates_sql() {
        let g = Gateway::new(cluster(2));
        assert!(g.register("SELECT nonsense FROM", 1.0).is_err());
        assert!(g.register("SELECT value FROM m", 1.0).is_ok());
        assert_eq!(g.registered(), 1);
    }

    #[test]
    fn placement_balances_queries() {
        let g = Gateway::new(cluster(4));
        for _ in 0..16 {
            g.register("SELECT COUNT(*) FROM m", 1.0).unwrap();
        }
        let loads = g.worker_loads();
        assert!(loads.iter().all(|&l| (l - 4.0).abs() < 1e-9), "{loads:?}");
    }

    #[test]
    fn run_all_executes_each_query_on_its_worker() {
        let g = Gateway::new(cluster(3));
        let a = g.register("SELECT COUNT(*) AS n FROM m", 1.0).unwrap();
        let b = g.register("SELECT MAX(value) AS mx FROM m", 1.0).unwrap();
        let results = g.run_all();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, a);
        assert_eq!(results[1].0, b);
        let t = results[0].1.as_ref().unwrap();
        assert_eq!(t.rows[0][0], Value::Int(100));
    }

    #[test]
    fn deregister_releases_load() {
        let g = Gateway::new(cluster(1));
        let id = g.register("SELECT value FROM m", 5.0).unwrap();
        assert_eq!(g.worker_loads(), vec![5.0]);
        assert!(g.deregister(id));
        assert_eq!(g.worker_loads(), vec![0.0]);
        assert!(!g.deregister(id), "double deregistration is a no-op");
    }

    #[test]
    fn async_frontend_round_trip() {
        let g = Gateway::new(cluster(2));
        let frontend = AsyncFrontend::spawn(Arc::clone(&g));
        let replies: Vec<_> = (0..32)
            .map(|_| frontend.submit("SELECT COUNT(*) FROM m", 1.0))
            .collect();
        for rx in replies {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(g.registered(), 32);
    }

    #[test]
    fn static_fragments_execute_and_gather_in_order() {
        let g = Gateway::new(cluster(4));
        let fragments: Vec<StaticFragment> = (0..8)
            .map(|i| {
                StaticFragment::placed(PlanFragment::new(
                    i,
                    format!("SELECT COUNT(*) AS n FROM m WHERE value >= {i}"),
                    1.0,
                ))
            })
            .collect();
        let results = g.run_static_fragments(&fragments);
        assert_eq!(results.len(), 8);
        for (i, result) in results.iter().enumerate() {
            let t = result.as_ref().unwrap();
            assert_eq!(
                t.rows[0][0],
                Value::Int(100 - i as i64),
                "fragment {i} gathered out of order"
            );
        }
        // Transient fragments release their load after the round.
        assert!(g.worker_loads().iter().all(|&l| l == 0.0));
    }

    /// Concurrent static rounds on one shared gateway never cross results:
    /// every round's gather order and values match its own fragments. This
    /// is the serving layer's pool-lifetime contract — many simultaneous
    /// distributed queries share one `Arc<Federation>` (and thus one
    /// gateway) between write-induced pool drops.
    #[test]
    fn concurrent_static_rounds_do_not_cross_results() {
        let g = Gateway::new(cluster(4));
        std::thread::scope(|scope| {
            for round in 0..8usize {
                let g = &g;
                scope.spawn(move || {
                    let fragments: Vec<StaticFragment> = (0..4)
                        .map(|i| {
                            let threshold = round * 4 + i;
                            StaticFragment::placed(PlanFragment::new(
                                i as u64,
                                format!("SELECT COUNT(*) AS n FROM m WHERE value >= {threshold}"),
                                1.0,
                            ))
                        })
                        .collect();
                    for _ in 0..4 {
                        let results = g.run_static_fragments(&fragments);
                        for (i, result) in results.iter().enumerate() {
                            let t = result.as_ref().unwrap();
                            let expected = 100 - (round * 4 + i) as i64;
                            assert_eq!(
                                t.rows[0][0],
                                Value::Int(expected),
                                "round {round} fragment {i} crossed with another round"
                            );
                        }
                    }
                });
            }
        });
        // Every transient fragment released its load despite the races.
        assert!(g.worker_loads().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn scatter_fragments_concatenate_partitions() {
        // Each of 4 workers holds 100 distinct sensor rows; a scatter scan
        // must see all 400.
        let g = Gateway::new(cluster(4));
        let results = g.run_static_fragments(&[StaticFragment::scattered(PlanFragment::new(
            0,
            "SELECT sensor_id FROM m",
            1.0,
        ))]);
        let t = results[0].as_ref().unwrap();
        assert_eq!(t.len(), 400);
        let distinct: std::collections::HashSet<i64> =
            t.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(distinct.len(), 400, "per-partition scans are disjoint");
    }

    /// A scatter fragment whose semi-join restricts a key-derived column
    /// runs only on the shards its values hash to (plus the NULL home
    /// shard 0) — and still gathers the exact matching rows.
    #[test]
    fn keyed_scatter_prunes_shards() {
        use optique_relational::{PartitionSpec, SemiJoin};

        let shards = 8;
        // Partition a 400-row table by sensor_id across 8 workers, the same
        // hash the fragment router uses.
        let full: Vec<Vec<Value>> = (0..400)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
            .collect();
        let g = Gateway::new(Arc::new(Cluster::provision(shards, |id| {
            let schema = Schema::qualified(
                "m",
                vec![
                    Column::new("sensor_id", ColumnType::Int),
                    Column::new("value", ColumnType::Float),
                ],
            );
            let rows = full
                .iter()
                .filter(|row| crate::cluster::shard_of(&row[0], shards) == id)
                .cloned()
                .collect();
            let mut db = Database::new();
            db.put_table("m", Table::new(schema, rows).unwrap());
            db
        })));

        let wanted = vec![Value::Int(3), Value::Int(77)];
        let fragment = PlanFragment::new(0, "SELECT sensor_id FROM m", 1.0)
            .with_partition(PartitionSpec {
                table: "m".into(),
                column: "sensor_id".into(),
                column_type: ColumnType::Int,
            })
            .with_semi_joins(vec![SemiJoin::new("sensor_id", wanted.clone())]);
        let round = g.run_static_round(&[StaticFragment::scattered(fragment)]);

        // ≤ 3 target shards (two keys + the NULL home) out of 8.
        assert!(round.shards_pruned >= shards - 3, "{round:?}");
        let t = round.tables[0].as_ref().unwrap();
        let mut got: Vec<i64> = t.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![3, 77]);
        // Row accounting: only the target shards shipped anything.
        assert_eq!(round.worker_rows.iter().sum::<usize>(), 2);
        assert!(
            round.worker_rows.iter().filter(|&&n| n > 0).count() <= 2,
            "{:?}",
            round.worker_rows
        );
    }

    /// Per-shard row accounting sums to the gathered total on an unpruned
    /// scatter.
    #[test]
    fn static_round_accounts_rows_per_worker() {
        let g = Gateway::new(cluster(4));
        let round = g.run_static_round(&[StaticFragment::scattered(PlanFragment::new(
            0,
            "SELECT sensor_id FROM m",
            1.0,
        ))]);
        assert_eq!(round.shards_pruned, 0);
        assert_eq!(round.worker_rows, vec![100; 4]);
        assert_eq!(round.tables[0].as_ref().unwrap().len(), 400);
    }

    /// A repeated scatter round re-uses each worker's prepared statement:
    /// the first round parses once per worker, later identical rounds
    /// parse nothing.
    #[test]
    fn plan_cache_amortizes_repeated_scatter_rounds() {
        let g = Gateway::new(cluster(4));
        let scatter = || {
            vec![StaticFragment::scattered(PlanFragment::new(
                0,
                "SELECT sensor_id FROM m",
                1.0,
            ))]
        };
        let first = g.run_static_round(&scatter());
        assert_eq!(first.plan_cache_misses, 4, "one parse per worker");
        assert_eq!(first.plan_cache_hits, 0);
        let second = g.run_static_round(&scatter());
        assert_eq!(second.plan_cache_misses, 0, "wire text repeats verbatim");
        assert_eq!(second.plan_cache_hits, 4);
        assert_eq!(
            second.tables[0].as_ref().unwrap().len(),
            400,
            "cached plans return the same rows"
        );
        assert_eq!(g.plan_cache_stats(), (4, 4));
    }

    /// A changed wire (different window slice or IN-list) is a different
    /// plan: the cache must not serve a stale statement.
    #[test]
    fn plan_cache_distinguishes_wires() {
        use optique_relational::WindowSlice;
        let g = Gateway::new(cluster(1));
        let windowed = |close: i64| {
            vec![StaticFragment::placed(
                PlanFragment::new(0, "SELECT sensor_id, value FROM m", 1.0).with_window(
                    WindowSlice {
                        column: "value".into(),
                        open_ms: -1,
                        close_ms: close,
                    },
                ),
            )]
        };
        let narrow = g.run_static_round(&windowed(4));
        let wide = g.run_static_round(&windowed(49));
        assert_eq!(narrow.tables[0].as_ref().unwrap().len(), 5);
        assert_eq!(wide.tables[0].as_ref().unwrap().len(), 50);
        assert_eq!(g.plan_cache_stats(), (0, 2), "two distinct wires parse");
    }

    /// Rounds pinned at a novelty epoch merge that overlay's rows — and
    /// *only* that overlay's: a newer append never leaks into an older
    /// round, and the epoch line never churns the plan cache (the wire is
    /// stripped before plan caching, so every epoch of the same SQL shares
    /// one prepared statement).
    #[test]
    fn novelty_epoch_pins_rounds_without_churning_plan_cache() {
        use optique_relational::NoveltyOverlay;
        let g = Gateway::new(cluster(1));
        let count = |epoch: u64| {
            let frag = PlanFragment::new(0, "SELECT COUNT(*) AS n FROM m", 1.0).at_epoch(epoch);
            let round = g.run_static_round(&[StaticFragment::placed(frag)]);
            let n = round.tables[0].as_ref().unwrap().rows[0][0]
                .as_i64()
                .unwrap();
            (n, round.plan_cache_hits, round.plan_cache_misses)
        };
        assert_eq!(count(0), (100, 0, 1), "base only; first round parses");
        let overlay =
            NoveltyOverlay::empty().with_rows("m", vec![vec![Value::Int(1000), Value::Float(0.5)]]);
        assert_eq!(
            count(overlay.epoch()),
            (101, 1, 0),
            "pinned round merges the overlay without re-parsing"
        );
        let newer = overlay.with_rows("m", vec![vec![Value::Int(1001), Value::Float(0.6)]]);
        assert_eq!(
            count(overlay.epoch()),
            (101, 1, 0),
            "a newer append never leaks into a round pinned at the older epoch"
        );
        assert_eq!(count(newer.epoch()), (102, 1, 0));
        // A retired (dropped) epoch fails the round rather than silently
        // serving torn data.
        let dead = overlay.epoch();
        drop(overlay);
        drop(newer);
        let frag = PlanFragment::new(0, "SELECT COUNT(*) AS n FROM m", 1.0).at_epoch(dead);
        let round = g.run_static_round(&[StaticFragment::placed(frag)]);
        assert!(round.tables[0].is_err(), "retired epoch must error");
    }

    /// A scattered pane fragment is answered worker-side from the pane
    /// stores — no parse, no plan-cache churn — and the gathered partials
    /// concatenate into disjoint per-shard groups. Repeating the round is
    /// a warm hit on every worker.
    #[test]
    fn pane_fragments_answer_from_worker_stores() {
        use optique_relational::{table::table_of, PaneProbe};
        // 4 workers, each holding a disjoint shard of stream rows keyed by
        // sensor: worker w owns sensors 4i+w.
        let g = Gateway::new(Arc::new(Cluster::provision(4, |id| {
            let rows = (0..200)
                .filter(|i| (i % 4) as usize == id)
                .map(|i| {
                    vec![
                        Value::Timestamp((i % 50) * 10 + 5),
                        Value::Int(i % 4),
                        Value::Float(1.0),
                    ]
                })
                .collect();
            let mut db = Database::new();
            db.put_table(
                "s",
                table_of(
                    "s",
                    &[
                        ("ts", ColumnType::Timestamp),
                        ("k", ColumnType::Int),
                        ("v", ColumnType::Float),
                    ],
                    rows,
                )
                .unwrap(),
            );
            db
        })));
        let fragment = || {
            StaticFragment::scattered(
                PlanFragment::new(0, "SELECT ts, k, v FROM s", 1.0).with_pane(PaneProbe {
                    stream: "s".into(),
                    ts_col: "ts".into(),
                    key_col: "k".into(),
                    val_col: "v".into(),
                    width_ms: 100,
                    start_ms: 0,
                    open_ms: 0,
                    close_ms: 400,
                    needs_extrema: false,
                }),
            )
        };
        let cold = g.run_static_round(&[fragment()]);
        assert_eq!(cold.pane_misses, 4, "first touch folds each shard");
        assert_eq!(cold.pane_hits, 0);
        assert_eq!(cold.plan_cache_hits + cold.plan_cache_misses, 0);
        let t = cold.tables[0].as_ref().unwrap();
        assert_eq!(t.len(), 4, "one group per key, keys disjoint per shard");
        // Window (0,400] holds ts 5,15,…,395 → 40 of each worker's 50
        // distinct timestamps, one row per timestamp (i%50 cycles once per
        // shard... each shard has 50 rows at 50 distinct ts).
        let total: i64 = t.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 4 * 40);
        let warm = g.run_static_round(&[fragment()]);
        assert_eq!(warm.pane_hits, 4, "repeat rounds hit every store");
        assert_eq!(g.pane_stats(), (4, 4));
    }

    #[test]
    fn static_fragment_errors_are_per_fragment() {
        let g = Gateway::new(cluster(2));
        let results = g.run_static_fragments(&[
            StaticFragment::placed(PlanFragment::new(0, "SELECT value FROM m", 1.0)),
            StaticFragment::placed(PlanFragment::new(1, "SELECT value FROM nope", 1.0)),
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "bad fragment fails alone");
    }

    #[test]
    fn thousand_registrations() {
        let g = Gateway::new(cluster(8));
        for _ in 0..1024 {
            g.register(
                "SELECT sensor_id, MAX(value) FROM m GROUP BY sensor_id",
                1.0,
            )
            .unwrap();
        }
        assert_eq!(g.registered(), 1024);
        let loads = g.worker_loads();
        assert!(loads.iter().all(|&l| (l - 128.0).abs() < 1e-9));
    }
}
