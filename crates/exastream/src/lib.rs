//! EXASTREAM — the distributed stream engine (paper Figure 2).
//!
//! "Queries are registered through the Asynchronous Gateway Server. Each
//! registered query passes through the EXAREME parser and then is fed to the
//! Scheduler module. The Scheduler places stream and relational operators on
//! worker nodes based on the node's load. These operators are executed by a
//! Stream Engine instance running on each node."
//!
//! The cluster here is *simulated*: a worker node is a thread plus its own
//! catalog shard (the paper's VMs had 2 CPUs / 4 GB each; our substitution
//! preserves the scaling *shape* — near-linear speedup until the host's
//! physical cores saturate). Components:
//!
//! * [`cluster`] — workers and data sharding (hash partitioning by key),
//! * [`scheduler`] — least-loaded operator placement,
//! * [`gateway`] — asynchronous query registration and the continuous-query
//!   registry,
//! * [`exchange`] — partition/merge dataflow between workers,
//! * [`adaptive`] — adaptive main-memory indexing of cached stream batches,
//! * [`udf`] — scalar UDFs and fused operator pipelines (standing in for the
//!   JIT tracing compilation the paper describes),
//! * [`metrics`] — throughput/latency accounting behind every number in
//!   EXPERIMENTS.md.

pub mod adaptive;
pub mod cluster;
pub mod exchange;
pub mod gateway;
pub mod metrics;
pub mod scheduler;
pub mod udf;

pub use adaptive::AdaptiveIndexer;
pub use cluster::{Cluster, Worker};
pub use gateway::{Gateway, PlanCache, QueryId, RegisteredQuery, StaticFragment, StaticRound};
pub use metrics::ThroughputMeter;
pub use scheduler::{Placement, Scheduler, TaskKind};
