//! Adaptive main-memory indexing.
//!
//! "EXASTREAM collects statistics during query execution and, adaptively,
//! decides to build main-memory indexes on batches of cached stream tuples,
//! in order to expedite their processing during a complex operation (as in a
//! join)." The indexer tracks per-(batch, column) probe counts; once the
//! observed probe volume crosses an amortization threshold — enough probes
//! that the index build pays for itself against repeated scans — it builds a
//! [`HashIndex`] over the batch and serves every later probe from it.

use std::collections::HashMap;
use std::sync::Arc;

use optique_relational::index::HashIndex;
use optique_relational::Value;
use parking_lot::Mutex;

/// Identifies an indexable batch: a cache key (e.g. `stream:window`) plus a
/// column position.
pub type BatchKey = (String, usize);

/// Counters describing what the indexer did — the E7 bench reads these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Probes answered by a full scan (pre-index).
    pub scan_probes: u64,
    /// Probes answered by a built index.
    pub indexed_probes: u64,
    /// Indexes built.
    pub builds: u64,
}

/// The adaptive indexer: stats-driven, per-batch, thread-safe.
pub struct AdaptiveIndexer {
    /// Probes on a (batch, column) before an index is built for it.
    threshold: u64,
    /// Batches smaller than this are never indexed (scans win).
    min_batch_rows: usize,
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    probe_counts: HashMap<BatchKey, u64>,
    indexes: HashMap<BatchKey, Arc<HashIndex>>,
    stats: AdaptiveStats,
}

impl AdaptiveIndexer {
    /// An indexer with the given amortization threshold and minimum batch
    /// size. The paper gives no constants; defaults in [`Self::default`]
    /// come from the E7 crossover measurement.
    pub fn new(threshold: u64, min_batch_rows: usize) -> Self {
        AdaptiveIndexer {
            threshold,
            min_batch_rows,
            state: Mutex::new(State::default()),
        }
    }

    /// Point-lookup of `key` in `batch` on `column`, adaptively indexed:
    /// early probes scan; past the threshold an index is built once and
    /// reused. Returns matching row indices.
    pub fn probe(&self, batch_key: &BatchKey, batch: &[Vec<Value>], key: &Value) -> Vec<usize> {
        let column = batch_key.1;
        let mut state = self.state.lock();
        if let Some(index) = state.indexes.get(batch_key).cloned() {
            state.stats.indexed_probes += 1;
            return index.lookup(key).to_vec();
        }
        let count = {
            let c = state.probe_counts.entry(batch_key.clone()).or_insert(0);
            *c += 1;
            *c
        };
        if count >= self.threshold && batch.len() >= self.min_batch_rows {
            let index = Arc::new(HashIndex::build(batch, column));
            state.stats.builds += 1;
            state.stats.indexed_probes += 1;
            let hits = index.lookup(key).to_vec();
            state.indexes.insert(batch_key.clone(), index);
            return hits;
        }
        state.stats.scan_probes += 1;
        drop(state);
        // Scan outside the lock: pure read of the caller's batch.
        batch
            .iter()
            .enumerate()
            .filter(|(_, row)| row[column].sql_eq(key) == Some(true))
            .map(|(i, _)| i)
            .collect()
    }

    /// Drops the index and counters for a batch (window eviction).
    pub fn evict(&self, batch_key: &BatchKey) {
        let mut state = self.state.lock();
        state.indexes.remove(batch_key);
        state.probe_counts.remove(batch_key);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> AdaptiveStats {
        self.state.lock().stats
    }

    /// Number of live indexes.
    pub fn index_count(&self) -> usize {
        self.state.lock().indexes.len()
    }
}

impl Default for AdaptiveIndexer {
    fn default() -> Self {
        // Build after 3 probes on batches of ≥64 rows: a scan costs O(n);
        // three scans of 64 rows already exceed one build + probe.
        AdaptiveIndexer::new(3, 64)
    }
}

impl std::fmt::Debug for AdaptiveIndexer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "AdaptiveIndexer(threshold={}, min_rows={}, {:?})",
            self.threshold, self.min_batch_rows, stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: i64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Int(i % 10), Value::Float(i as f64)])
            .collect()
    }

    #[test]
    fn scans_until_threshold_then_indexes() {
        let idx = AdaptiveIndexer::new(3, 1);
        let b = batch(100);
        let key = ("w1".to_string(), 0);
        for _ in 0..2 {
            idx.probe(&key, &b, &Value::Int(3));
        }
        assert_eq!(
            idx.stats(),
            AdaptiveStats {
                scan_probes: 2,
                indexed_probes: 0,
                builds: 0
            }
        );
        idx.probe(&key, &b, &Value::Int(3));
        assert_eq!(idx.stats().builds, 1);
        idx.probe(&key, &b, &Value::Int(3));
        assert_eq!(idx.stats().indexed_probes, 2);
        assert_eq!(idx.index_count(), 1);
    }

    #[test]
    fn indexed_and_scanned_probes_agree() {
        let idx = AdaptiveIndexer::new(2, 1);
        let b = batch(50);
        let key = ("w".to_string(), 0);
        let scan = idx.probe(&key, &b, &Value::Int(7));
        idx.probe(&key, &b, &Value::Int(0));
        let indexed = idx.probe(&key, &b, &Value::Int(7));
        assert_eq!(scan, indexed);
        assert_eq!(scan.len(), 5);
    }

    #[test]
    fn small_batches_never_indexed() {
        let idx = AdaptiveIndexer::new(1, 1000);
        let b = batch(10);
        let key = ("tiny".to_string(), 0);
        for _ in 0..20 {
            idx.probe(&key, &b, &Value::Int(1));
        }
        assert_eq!(idx.stats().builds, 0);
    }

    #[test]
    fn eviction_resets() {
        let idx = AdaptiveIndexer::new(1, 1);
        let b = batch(10);
        let key = ("w".to_string(), 0);
        idx.probe(&key, &b, &Value::Int(1));
        assert_eq!(idx.index_count(), 1);
        idx.evict(&key);
        assert_eq!(idx.index_count(), 0);
    }

    #[test]
    fn distinct_batches_tracked_separately() {
        let idx = AdaptiveIndexer::new(2, 1);
        let b = batch(10);
        idx.probe(&("a".to_string(), 0), &b, &Value::Int(1));
        idx.probe(&("b".to_string(), 0), &b, &Value::Int(1));
        assert_eq!(idx.stats().builds, 0, "thresholds are per batch");
    }
}
