//! One-call deployment assembly.

use optique_mapping::{IriTemplate, MappingCatalog};
use optique_ontology::Ontology;
use optique_rdf::{Datatype, Namespaces};
use optique_relational::Database;
use optique_starql::StreamToRdf;

use crate::fleet::{build_fleet, FleetConfig};
use crate::ontology::{namespaces, sie, siemens_mappings, siemens_ontology};
use crate::streamgen::{build_stream, GroundTruth, StreamConfig};

/// A full Siemens deployment: static DB + streams + semantic assets.
pub struct SiemensDeployment {
    /// The catalog holding both static tables and the `S_Msmt` stream table.
    pub db: Database,
    /// The TBox.
    pub ontology: Ontology,
    /// Prefix table for STARQL text.
    pub namespaces: Namespaces,
    /// The mapping catalog over the static tables.
    pub mappings: MappingCatalog,
    /// The stream-side mapping.
    pub stream_to_rdf: StreamToRdf,
    /// Ids of all generated sensors.
    pub sensor_ids: Vec<i64>,
    /// What anomalies were planted.
    pub ground_truth: GroundTruth,
    /// The stream generation parameters used.
    pub stream_config: StreamConfig,
}

impl SiemensDeployment {
    /// Builds a deployment at the given fleet scale. The stream covers the
    /// first `stream_sensors` sensors (streaming all 100k sensors at demo
    /// scale is possible but slow for tests; benches choose their own
    /// subset).
    pub fn build(fleet: FleetConfig, stream_sensors: usize) -> Result<Self, String> {
        let mut db = Database::new();
        let sensor_ids = build_fleet(&mut db, &fleet).map_err(|e| e.to_string())?;
        let streamed: Vec<i64> = sensor_ids
            .iter()
            .copied()
            .take(stream_sensors.max(1))
            .collect();
        let stream_config = StreamConfig::small(streamed);
        let ground_truth = build_stream(&mut db, &stream_config).map_err(|e| e.to_string())?;
        optique_stream::register_stream_functions(&mut db);
        Ok(SiemensDeployment {
            db,
            ontology: siemens_ontology(),
            namespaces: namespaces(),
            mappings: siemens_mappings(),
            stream_to_rdf: StreamToRdf {
                timestamp_col: "ts".into(),
                subject: IriTemplate::parse(&format!("{}sensor/{{sensor_id}}", crate::DATA_NS))
                    .expect("valid template"),
                value_property: sie("hasValue"),
                value_col: "value".into(),
                value_datatype: Datatype::Double,
                event_col: Some("event".into()),
                event_classes: vec![("failure".into(), sie("showsFailure"))],
            },
            sensor_ids,
            ground_truth,
            stream_config,
        })
    }

    /// A small test-scale deployment.
    pub fn small() -> Self {
        SiemensDeployment::build(FleetConfig::small(), 12).expect("small deployment builds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_deployment_builds() {
        let d = SiemensDeployment::small();
        assert!(d.db.has_table("S_Msmt"));
        assert!(d.db.has_table("turbines"));
        assert_eq!(d.sensor_ids.len(), 60);
        assert!(!d.ground_truth.ramp_failures.is_empty());
    }

    #[test]
    fn stream_subject_template_matches_mapping_catalog() {
        let d = SiemensDeployment::small();
        // The stream mints sensor IRIs in the same shape the static
        // mappings use — joins between stream and static sides depend on it.
        let from_stream = d
            .stream_to_rdf
            .subject
            .render(&optique_relational::Value::Int(7));
        let graph = optique_mapping::materialize_catalog(&d.mappings, &d.db).unwrap();
        assert!(graph
            .instances_of(&sie("Sensor"))
            .iter()
            .any(|t| t.as_iri().is_some_and(|i| i.as_str() == from_stream)));
    }

    #[test]
    fn window_functions_registered() {
        let d = SiemensDeployment::small();
        let t = optique_relational::exec::query(
            "SELECT COUNT(*) AS n FROM timeslidingwindow('S_Msmt', 0, 10000, 10000, 600000, 1, 1) AS w",
            &d.db,
        )
        .unwrap();
        assert!(t.rows[0][0].as_i64().unwrap() > 0);
    }
}
