//! The 20-task diagnostic catalog.
//!
//! "For the demonstration purpose we selected 20 diagnostic tasks typical
//! for Siemens Energy service centres and expressed these tasks in STARQL."
//! Most tasks are *semantically similar but syntactically different* — the
//! paper's very point about fleets of queries: the same monotonicity or
//! threshold condition is asked over different sensor classes, windows and
//! equipment scopes. Two tasks (Pearson correlation, throughput statistics)
//! are expressed directly in SQL(+) — the paper implements them as ExaStream
//! UDF dataflows rather than STARQL conditions.

use crate::SIE_NS;

/// How a task is expressed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskQuery {
    /// A STARQL continuous query.
    StarQl(String),
    /// A SQL(+) dataflow (UDF-style tasks).
    SqlPlus(String),
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct DiagnosticTask {
    /// Stable id, `T01` … `T20`.
    pub id: String,
    /// Short name.
    pub name: String,
    /// What the task detects.
    pub description: String,
    /// The query text.
    pub query: TaskQuery,
}

const SENSOR_KINDS: [(&str, &str); 4] = [
    ("TemperatureSensor", "temperature"),
    ("PressureSensor", "pressure"),
    ("RotorSpeedSensor", "rotor speed"),
    ("VibrationSensor", "vibration"),
];

fn prelude(out: &str) -> String {
    format!(
        "PREFIX sie: <{SIE_NS}>\nPREFIX : <{SIE_NS}>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\nCREATE STREAM {out} AS\n"
    )
}

fn monotonic_task(
    out: &str,
    sensor_class: &str,
    range: &str,
    slide: &str,
    increase: bool,
) -> String {
    let op = if increase { "<=" } else { ">=" };
    let marker = if increase { ":MonInc" } else { ":MonDec" };
    format!(
        "{}CONSTRUCT GRAPH NOW {{ ?c2 rdf:type {marker} }}\n\
         FROM STREAM S_Msmt [NOW-\"{range}\"^^xsd:duration, NOW]->\"{slide}\"^^xsd:duration,\n\
         STATIC DATA <http://siemens.example/ABoxstatic>,\n\
         ONTOLOGY <http://siemens.example/TBox>\n\
         USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"{slide}\"\n\
         WHERE {{?c1 a sie:Assembly. ?c2 a sie:{sensor_class}. ?c1 sie:inAssembly ?c2.}}\n\
         SEQUENCE BY StdSeq AS seq\n\
         HAVING MONOTONIC.HAVING(?c2,sie:hasValue)\n\
         CREATE AGGREGATE MONOTONIC:HAVING ($var,$attr) AS\n\
         HAVING EXISTS ?k IN seq: GRAPH ?k {{ $var sie:showsFailure }} AND\n\
         FORALL ?i < ?j IN seq, ?x, ?y:\n\
         IF ( ?i, ?j < ?k AND GRAPH ?i {{$var $attr ?x}} AND GRAPH ?j {{$var $attr ?y}}) THEN ?x{op}?y",
        prelude(out)
    )
}

fn threshold_task(out: &str, sensor_class: &str, range: &str, threshold: i64) -> String {
    format!(
        "{}CONSTRUCT GRAPH NOW {{ ?c2 rdf:type :Overheats }}\n\
         FROM STREAM S_Msmt [NOW-\"{range}\"^^xsd:duration, NOW]->\"PT1S\"^^xsd:duration,\n\
         STATIC DATA <http://siemens.example/ABoxstatic>,\n\
         ONTOLOGY <http://siemens.example/TBox>\n\
         USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"1S\"\n\
         WHERE {{?c1 a sie:Assembly. ?c2 a sie:{sensor_class}. ?c1 sie:inAssembly ?c2.}}\n\
         SEQUENCE BY StdSeq AS seq\n\
         HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:hasValue ?x }} AND ?x >= {threshold}",
        prelude(out)
    )
}

fn flatline_task(out: &str, sensor_class: &str, range: &str) -> String {
    format!(
        "{}CONSTRUCT GRAPH NOW {{ ?c2 rdf:type :Flatline }}\n\
         FROM STREAM S_Msmt [NOW-\"{range}\"^^xsd:duration, NOW]->\"PT5S\"^^xsd:duration,\n\
         STATIC DATA <http://siemens.example/ABoxstatic>,\n\
         ONTOLOGY <http://siemens.example/TBox>\n\
         USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"5S\"\n\
         WHERE {{?c1 a sie:Assembly. ?c2 a sie:{sensor_class}. ?c1 sie:inAssembly ?c2.}}\n\
         SEQUENCE BY StdSeq AS seq\n\
         HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:hasValue ?z }} AND\n\
         FORALL ?i < ?j IN seq, ?x, ?y:\n\
         IF ( GRAPH ?i {{ ?c2 sie:hasValue ?x }} AND GRAPH ?j {{ ?c2 sie:hasValue ?y }} ) THEN ?x=?y",
        prelude(out)
    )
}

/// Builds the 20-task catalog.
pub fn diagnostic_tasks() -> Vec<DiagnosticTask> {
    let mut tasks = Vec::with_capacity(20);
    let mut id = 0usize;
    let mut push =
        |name: String, description: String, query: TaskQuery, tasks: &mut Vec<DiagnosticTask>| {
            id += 1;
            tasks.push(DiagnosticTask {
                id: format!("T{id:02}"),
                name,
                description,
                query,
            });
        };

    // T01–T04: the Figure 1 task over the four sensor kinds.
    for (class, label) in SENSOR_KINDS {
        push(
            format!("monotonic-increase/{label}"),
            format!("Failure preceded by monotonically increasing {label} within 10 s"),
            TaskQuery::StarQl(monotonic_task("S_MonInc", class, "PT10S", "PT1S", true)),
            &mut tasks,
        );
    }
    // T05–T08: threshold exceedance, 30 s window.
    for (class, label) in SENSOR_KINDS {
        push(
            format!("overheat/{label}"),
            format!("Any {label} reading at or above the hot threshold within 30 s"),
            TaskQuery::StarQl(threshold_task("S_Hot", class, "PT30S", 95)),
            &mut tasks,
        );
    }
    // T09–T12: flatline detection, 1 min window.
    for (class, label) in SENSOR_KINDS {
        push(
            format!("flatline/{label}"),
            format!("A {label} sensor repeating the same value for a whole minute"),
            TaskQuery::StarQl(flatline_task("S_Flat", class, "PT1M")),
            &mut tasks,
        );
    }
    // T13–T16: monotonic decrease, 30 s window.
    for (class, label) in SENSOR_KINDS {
        push(
            format!("monotonic-decrease/{label}"),
            format!("Failure preceded by monotonically decreasing {label} within 30 s"),
            TaskQuery::StarQl(monotonic_task("S_MonDec", class, "PT30S", "PT1S", false)),
            &mut tasks,
        );
    }
    // T17: failure messages anywhere in the fleet.
    push(
        "failure-report".into(),
        "Any sensor raising a failure message within the last minute".into(),
        TaskQuery::StarQl(format!(
            "{}CONSTRUCT GRAPH NOW {{ ?c2 rdf:type :DiagnosticMessage }}\n\
             FROM STREAM S_Msmt [NOW-\"PT1M\"^^xsd:duration, NOW]->\"PT5S\"^^xsd:duration,\n\
             ONTOLOGY <http://siemens.example/TBox>\n\
             USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"5S\"\n\
             WHERE {{?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c1 sie:inAssembly ?c2.}}\n\
             SEQUENCE BY StdSeq AS seq\n\
             HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:showsFailure }}",
            prelude("S_Fail")
        )),
        &mut tasks,
    );
    // T18: large swing within one window.
    push(
        "big-swing/temperature".into(),
        "Temperature moving from ≤40 to ≥80 within one minute".into(),
        TaskQuery::StarQl(format!(
            "{}CONSTRUCT GRAPH NOW {{ ?c2 rdf:type :DiagnosticMessage }}\n\
             FROM STREAM S_Msmt [NOW-\"PT1M\"^^xsd:duration, NOW]->\"PT5S\"^^xsd:duration,\n\
             ONTOLOGY <http://siemens.example/TBox>\n\
             USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"5S\"\n\
             WHERE {{?c1 a sie:Assembly. ?c2 a sie:TemperatureSensor. ?c1 sie:inAssembly ?c2.}}\n\
             SEQUENCE BY StdSeq AS seq\n\
             HAVING EXISTS ?i IN seq: EXISTS ?j IN seq: ?i < ?j AND\n\
             GRAPH ?i {{ ?c2 sie:hasValue ?x }} AND GRAPH ?j {{ ?c2 sie:hasValue ?y }} AND\n\
             ?x <= 40 AND ?y >= 80",
            prelude("S_Swing")
        )),
        &mut tasks,
    );
    // T19: Pearson correlation between sensor streams (the paper's explicit
    // example; an ExaStream UDF dataflow in SQL(+)).
    push(
        "pearson-correlation".into(),
        "Pairs of sensors whose measurement windows are highly correlated".into(),
        TaskQuery::SqlPlus(
            "SELECT a.sensor_id AS s1, b.sensor_id AS s2, CORR(a.value, b.value) AS r \
             FROM S_Msmt a JOIN S_Msmt b ON a.ts = b.ts \
             WHERE a.sensor_id < b.sensor_id \
             GROUP BY a.sensor_id, b.sensor_id \
             HAVING CORR(a.value, b.value) >= 0.95"
                .into(),
        ),
        &mut tasks,
    );
    // T20: per-window fleet statistics dashboard feed.
    push(
        "window-statistics".into(),
        "Per-window measurement statistics for the monitoring dashboard".into(),
        TaskQuery::SqlPlus(
            "SELECT window_id, COUNT(*) AS n, AVG(value) AS mean, MIN(value) AS lo, MAX(value) AS hi \
             FROM timeslidingwindow('S_Msmt', 0, 10000, 10000, 600000, 0, 5) AS w \
             GROUP BY window_id ORDER BY window_id"
                .into(),
        ),
        &mut tasks,
    );
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::namespaces;

    #[test]
    fn catalog_has_twenty_tasks() {
        let tasks = diagnostic_tasks();
        assert_eq!(tasks.len(), 20);
        assert_eq!(tasks[0].id, "T01");
        assert_eq!(tasks[19].id, "T20");
    }

    #[test]
    fn all_starql_tasks_parse() {
        let ns = namespaces();
        for task in diagnostic_tasks() {
            if let TaskQuery::StarQl(text) = &task.query {
                optique_starql::parse_starql(text, &ns)
                    .unwrap_or_else(|e| panic!("task {} fails to parse: {e}", task.id));
            }
        }
    }

    #[test]
    fn all_sqlplus_tasks_parse() {
        for task in diagnostic_tasks() {
            if let TaskQuery::SqlPlus(text) = &task.query {
                optique_relational::parse_select(text)
                    .unwrap_or_else(|e| panic!("task {} fails to parse: {e}", task.id));
            }
        }
    }

    #[test]
    fn tasks_are_syntactically_distinct() {
        let tasks = diagnostic_tasks();
        let mut texts: Vec<&str> = tasks
            .iter()
            .map(|t| match &t.query {
                TaskQuery::StarQl(s) | TaskQuery::SqlPlus(s) => s.as_str(),
            })
            .collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), 20, "no two tasks share query text");
    }

    #[test]
    fn macro_expansion_works_for_every_monotonic_task() {
        let ns = namespaces();
        for task in diagnostic_tasks() {
            let TaskQuery::StarQl(text) = &task.query else {
                continue;
            };
            if !text.contains("MONOTONIC") {
                continue;
            }
            let q = optique_starql::parse_starql(text, &ns).unwrap();
            optique_starql::having::expand(&q.having, &q.aggregates)
                .unwrap_or_else(|e| panic!("task {}: {e}", task.id));
        }
    }
}
