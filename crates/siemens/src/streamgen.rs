//! Measurement-stream generation with injected, checkable ground truth.
//!
//! Signals are `baseline + slow sinusoid + noise` per sensor. Three
//! anomaly patterns can be planted, mirroring what the demo tasks detect:
//!
//! * **monotonic ramp → failure** (the Figure 1 target): a strictly
//!   increasing run of readings ending in a `failure` event,
//! * **correlated pair**: two sensors share a latent signal (near-±1
//!   Pearson correlation) — the LSH/CORR tasks' target,
//! * **threshold excursion**: a burst of readings above a hot threshold.

use optique_relational::{table::table_of, ColumnType, Database, SqlError, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Stream generation parameters.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Sensor ids to produce measurements for.
    pub sensor_ids: Vec<i64>,
    /// First measurement instant (ms).
    pub start_ms: i64,
    /// Stream length (ms).
    pub duration_ms: i64,
    /// Measurement period per sensor (ms).
    pub period_ms: i64,
    /// RNG seed.
    pub seed: u64,
    /// How many monotonic-ramp-failure anomalies to plant.
    pub ramp_failures: usize,
    /// How many correlated sensor pairs to plant.
    pub correlated_pairs: usize,
    /// How many threshold excursions to plant.
    pub hot_bursts: usize,
}

impl StreamConfig {
    /// A small default over the given sensors: 60 s of 1 Hz data.
    pub fn small(sensor_ids: Vec<i64>) -> Self {
        StreamConfig {
            sensor_ids,
            start_ms: 600_000,
            duration_ms: 60_000,
            period_ms: 1_000,
            seed: 7,
            ramp_failures: 2,
            correlated_pairs: 1,
            hot_bursts: 1,
        }
    }
}

/// What was planted where — the answer key for correctness checks.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// `(sensor, failure instant)` of each planted monotonic ramp.
    pub ramp_failures: Vec<(i64, i64)>,
    /// Planted correlated sensor pairs.
    pub correlated_pairs: Vec<(i64, i64)>,
    /// `(sensor, burst start)` of each planted hot excursion.
    pub hot_bursts: Vec<(i64, i64)>,
}

/// Generates the `S_Msmt` stream table into `db`. Returns the ground truth.
///
/// Schema: `S_Msmt(ts TIMESTAMP, sensor_id INT, value FLOAT, event TEXT)`.
pub fn build_stream(db: &mut Database, config: &StreamConfig) -> Result<GroundTruth, SqlError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let steps = (config.duration_ms / config.period_ms).max(1) as usize;
    let n = config.sensor_ids.len();
    let mut truth = GroundTruth::default();

    // Per-sensor baselines.
    let baselines: Vec<f64> = (0..n).map(|_| rng.random_range(40.0..70.0)).collect();

    // Value matrix [sensor][step].
    let mut values: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            (0..steps)
                .map(|k| {
                    let phase = (k as f64) * 0.05 + s as f64;
                    baselines[s] + 3.0 * phase.sin() + rng.random_range(-1.0..1.0)
                })
                .collect()
        })
        .collect();
    let mut events: Vec<Vec<Option<&str>>> = vec![vec![None; steps]; n];

    // Plant correlated pairs first (they overwrite whole series).
    let mut used: Vec<usize> = Vec::new();
    for p in 0..config.correlated_pairs.min(n / 2) {
        let a = 2 * p;
        let b = 2 * p + 1;
        let latent: Vec<f64> = (0..steps)
            .map(|k| 50.0 + 10.0 * ((k as f64) * 0.21 + p as f64).sin())
            .collect();
        for k in 0..steps {
            values[a][k] = latent[k] + rng.random_range(-0.5..0.5);
            values[b][k] = latent[k] * 0.8 + 20.0 + rng.random_range(-0.5..0.5);
        }
        used.push(a);
        used.push(b);
        truth
            .correlated_pairs
            .push((config.sensor_ids[a], config.sensor_ids[b]));
    }

    // Plant monotonic ramps ending in failures.
    let ramp_len = 12.min(steps);
    for r in 0..config.ramp_failures {
        let Some(s) = next_free(&used, n) else { break };
        if steps < ramp_len {
            continue;
        }
        let end = steps - 1 - (r % 3);
        let begin = end + 1 - ramp_len;
        for (j, k) in (begin..=end).enumerate() {
            // Strictly increasing with a comfortable margin over noise.
            values[s][k] = 60.0 + (j as f64) * 2.5;
        }
        events[s][end] = Some("failure");
        truth.ramp_failures.push((
            config.sensor_ids[s],
            config.start_ms + (end as i64) * config.period_ms,
        ));
        used.push(s);
    }

    // Plant hot bursts.
    for h in 0..config.hot_bursts {
        let Some(s) = next_free(&used, n) else { break };
        let _ = h;
        let begin = steps / 3;
        for value in values[s][begin..(begin + 5).min(steps)].iter_mut() {
            *value = 96.0 + rng.random_range(0.0..3.0);
        }
        truth.hot_bursts.push((
            config.sensor_ids[s],
            config.start_ms + (begin as i64) * config.period_ms,
        ));
        used.push(s);
    }

    // Emit rows in time order (streams are timestamp-sorted).
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n * steps);
    for k in 0..steps {
        let ts = config.start_ms + (k as i64) * config.period_ms;
        for s in 0..n {
            rows.push(vec![
                Value::Timestamp(ts),
                Value::Int(config.sensor_ids[s]),
                Value::Float(values[s][k]),
                events[s][k].map(Value::text).unwrap_or(Value::Null),
            ]);
        }
    }
    db.put_table(
        "S_Msmt",
        table_of(
            "S_Msmt",
            &[
                ("ts", ColumnType::Timestamp),
                ("sensor_id", ColumnType::Int),
                ("value", ColumnType::Float),
                ("event", ColumnType::Text),
            ],
            rows,
        )?,
    );
    Ok(truth)
}

/// First sensor index not yet hosting a planted anomaly.
fn next_free(used: &[usize], n: usize) -> Option<usize> {
    (0..n).find(|s| !used.contains(s))
}

/// Extracts one sensor's series from the generated stream (test helper and
/// LSH feed).
pub fn sensor_series(db: &Database, sensor_id: i64) -> Result<Vec<f64>, SqlError> {
    let t = optique_relational::exec::query(
        &format!("SELECT value FROM S_Msmt WHERE sensor_id = {sensor_id} ORDER BY ts"),
        db,
    )?;
    Ok(t.rows.iter().filter_map(|r| r[0].as_f64()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate() -> (Database, GroundTruth, StreamConfig) {
        let mut db = Database::new();
        let config = StreamConfig::small((0..12).collect());
        let truth = build_stream(&mut db, &config).unwrap();
        (db, truth, config)
    }

    #[test]
    fn stream_has_expected_volume() {
        let (db, _, config) = generate();
        let expected = config.sensor_ids.len() * (config.duration_ms / config.period_ms) as usize;
        assert_eq!(db.table("S_Msmt").unwrap().len(), expected);
    }

    #[test]
    fn ground_truth_reported() {
        let (_, truth, _) = generate();
        assert_eq!(truth.ramp_failures.len(), 2);
        assert_eq!(truth.correlated_pairs.len(), 1);
        assert_eq!(truth.hot_bursts.len(), 1);
    }

    #[test]
    fn planted_ramp_is_strictly_increasing_before_failure() {
        let (db, truth, config) = generate();
        let (sensor, fail_ts) = truth.ramp_failures[0];
        let series = sensor_series(&db, sensor).unwrap();
        let fail_idx = ((fail_ts - config.start_ms) / config.period_ms) as usize;
        for k in (fail_idx - 10)..fail_idx {
            assert!(
                series[k] < series[k + 1],
                "ramp must rise at step {k}: {} vs {}",
                series[k],
                series[k + 1]
            );
        }
    }

    #[test]
    fn failure_event_recorded_in_stream() {
        let (db, truth, _) = generate();
        let (sensor, fail_ts) = truth.ramp_failures[0];
        let t = optique_relational::exec::query(
            &format!("SELECT event FROM S_Msmt WHERE sensor_id = {sensor} AND ts = {fail_ts}"),
            &db,
        )
        .unwrap();
        assert_eq!(t.rows[0][0], Value::text("failure"));
    }

    #[test]
    fn planted_pair_is_strongly_correlated() {
        let (db, truth, _) = generate();
        let (a, b) = truth.correlated_pairs[0];
        let sa = sensor_series(&db, a).unwrap();
        let sb = sensor_series(&db, b).unwrap();
        let n = sa.len() as f64;
        let (ma, mb) = (sa.iter().sum::<f64>() / n, sb.iter().sum::<f64>() / n);
        let cov: f64 = sa.iter().zip(&sb).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = sa.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = sb.iter().map(|y| (y - mb).powi(2)).sum();
        let r = cov / (va * vb).sqrt();
        assert!(r > 0.95, "correlation {r}");
    }

    #[test]
    fn hot_burst_exceeds_threshold() {
        let (db, truth, _) = generate();
        let (sensor, _) = truth.hot_bursts[0];
        let series = sensor_series(&db, sensor).unwrap();
        assert!(series.iter().any(|&v| v >= 95.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = Database::new();
        let mut b = Database::new();
        let config = StreamConfig::small((0..8).collect());
        build_stream(&mut a, &config).unwrap();
        build_stream(&mut b, &config).unwrap();
        assert_eq!(
            a.table("S_Msmt").unwrap().rows,
            b.table("S_Msmt").unwrap().rows
        );
    }
}
