//! The Siemens Energy demo scenario — synthetic substitute for the paper's
//! proprietary data.
//!
//! The demo data set "contains streaming and static data produced by 950 gas
//! and steam turbines during 2002–2011 … anonymised in a way that preserves
//! the patterns needed for demo diagnostic tasks". This crate generates the
//! equivalent shapes, deterministically from a seed:
//!
//! * [`fleet`] — the static side: turbines (models, countries, build years),
//!   assemblies, sensors (up to 2,000 per turbine), service history; both as
//!   populated tables and as a [`RelationalSchema`](optique_bootstrap::RelationalSchema)
//!   with key metadata for BootOX,
//! * [`ontology`] — the hand-curated Siemens TBox and mapping catalog (the
//!   paper bootstraps then manually post-processes; this is the
//!   post-processed result),
//! * [`streamgen`] — measurement streams with *injected ground truth*:
//!   monotonic ramps ending in failure events, correlated sensor pairs,
//!   threshold excursions — so query answers are checkable,
//! * [`catalog`] — the 20-task diagnostic catalog as STARQL text,
//! * [`deploy`] — one-call assembly of a full deployment.

pub mod catalog;
pub mod deploy;
pub mod fleet;
pub mod ontology;
pub mod streamgen;

pub use catalog::{diagnostic_tasks, DiagnosticTask};
pub use deploy::SiemensDeployment;
pub use fleet::FleetConfig;
pub use streamgen::{GroundTruth, StreamConfig};

/// The vocabulary namespace of the Siemens ontology.
pub const SIE_NS: &str = "http://siemens.example/ontology#";
/// The namespace instance IRIs are minted in.
pub const DATA_NS: &str = "http://siemens.example/data/";
