//! Static-side fleet generation: turbines, assemblies, sensors, history.

use optique_bootstrap::{RelTable, RelationalSchema};
use optique_relational::{table::table_of, ColumnType, Database, SqlError, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fleet shape parameters. [`FleetConfig::demo`] reproduces the paper's
/// scale (950 turbines, >100,000 sensors); [`FleetConfig::small`] keeps
/// tests fast.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of turbines.
    pub turbines: usize,
    /// Assemblies per turbine.
    pub assemblies_per_turbine: usize,
    /// Sensors per assembly.
    pub sensors_per_assembly: usize,
    /// RNG seed (generation is deterministic in it).
    pub seed: u64,
}

impl FleetConfig {
    /// The paper's demo scale: 950 turbines × 8 assemblies × 14 sensors
    /// ≈ 106,400 sensors.
    pub fn demo() -> Self {
        FleetConfig {
            turbines: 950,
            assemblies_per_turbine: 8,
            sensors_per_assembly: 14,
            seed: 2016,
        }
    }

    /// A laptop-test scale.
    pub fn small() -> Self {
        FleetConfig {
            turbines: 10,
            assemblies_per_turbine: 2,
            sensors_per_assembly: 3,
            seed: 2016,
        }
    }

    /// Total sensor count.
    pub fn sensor_count(&self) -> usize {
        self.turbines * self.assemblies_per_turbine * self.sensors_per_assembly
    }
}

/// Sensor kinds the generator assigns round-robin.
pub const SENSOR_KINDS: [&str; 4] = ["temperature", "pressure", "rotor_speed", "vibration"];
/// Turbine models.
pub const MODELS: [&str; 4] = ["SGT-400", "SGT-800", "SST-600", "SGT5-8000H"];
/// Country pool for `locatedIn`.
pub const COUNTRIES: [&str; 6] = ["Germany", "Norway", "USA", "Brazil", "India", "Japan"];

/// Builds the static tables into `db`; returns the sensor ids created.
pub fn build_fleet(db: &mut Database, config: &FleetConfig) -> Result<Vec<i64>, SqlError> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let countries: Vec<Vec<Value>> = COUNTRIES
        .iter()
        .enumerate()
        .map(|(i, name)| vec![Value::Int(i as i64 + 1), Value::text(*name)])
        .collect();
    db.put_table(
        "countries",
        table_of(
            "countries",
            &[("id", ColumnType::Int), ("name", ColumnType::Text)],
            countries,
        )?,
    );

    let mut turbines = Vec::with_capacity(config.turbines);
    let mut assemblies = Vec::new();
    let mut sensors = Vec::new();
    let mut service_events = Vec::new();
    let mut sensor_ids = Vec::with_capacity(config.sensor_count());

    let mut aid: i64 = 0;
    let mut sid: i64 = 0;
    let mut eid: i64 = 0;
    for t in 0..config.turbines as i64 {
        let model = MODELS[rng.random_range(0..MODELS.len())];
        let country = rng.random_range(1..=COUNTRIES.len() as i64);
        let built = rng.random_range(2002..=2011i64);
        let kind = if model.starts_with("SST") {
            "steam"
        } else {
            "gas"
        };
        turbines.push(vec![
            Value::Int(t),
            Value::text(model),
            Value::text(kind),
            Value::Int(country),
            Value::Int(built),
        ]);
        // Sparse service history: ~2 events per turbine.
        for _ in 0..rng.random_range(1..=3u32) {
            service_events.push(vec![
                Value::Int(eid),
                Value::Int(t),
                Value::Timestamp(rng.random_range(0..86_400_000i64)),
                Value::text(["inspection", "repair", "overhaul"][rng.random_range(0..3usize)]),
            ]);
            eid += 1;
        }
        for a in 0..config.assemblies_per_turbine as i64 {
            let kind = ["burner", "rotor", "compressor", "exhaust"][(a % 4) as usize];
            assemblies.push(vec![Value::Int(aid), Value::Int(t), Value::text(kind)]);
            for s in 0..config.sensors_per_assembly as i64 {
                let kind = SENSOR_KINDS[(s % SENSOR_KINDS.len() as i64) as usize];
                sensors.push(vec![Value::Int(sid), Value::Int(aid), Value::text(kind)]);
                sensor_ids.push(sid);
                sid += 1;
            }
            aid += 1;
        }
    }

    db.put_table(
        "turbines",
        table_of(
            "turbines",
            &[
                ("tid", ColumnType::Int),
                ("model", ColumnType::Text),
                ("kind", ColumnType::Text),
                ("country_id", ColumnType::Int),
                ("built", ColumnType::Int),
            ],
            turbines,
        )?,
    );
    db.put_table(
        "assemblies",
        table_of(
            "assemblies",
            &[
                ("aid", ColumnType::Int),
                ("tid", ColumnType::Int),
                ("kind", ColumnType::Text),
            ],
            assemblies,
        )?,
    );
    db.put_table(
        "sensors",
        table_of(
            "sensors",
            &[
                ("sid", ColumnType::Int),
                ("aid", ColumnType::Int),
                ("kind", ColumnType::Text),
            ],
            sensors.clone(),
        )?,
    );
    // Regional legacy registries: the same sensors scattered over three
    // structurally different schemas (different table and column names) —
    // the heterogeneity that makes the paper's query fleets explode. Every
    // sensor lives in exactly one region.
    for (region, table_name) in ["eu", "na", "apac"].iter().enumerate() {
        let rows: Vec<Vec<Value>> = sensors
            .iter()
            .filter(|row| (row[0].as_i64().unwrap() % 3) as usize == region)
            .cloned()
            .collect();
        db.put_table(
            format!("sensors_{table_name}"),
            table_of(
                &format!("sensors_{table_name}"),
                &[
                    ("sensor_no", ColumnType::Int),
                    ("assembly_no", ColumnType::Int),
                    ("sensor_kind", ColumnType::Text),
                ],
                rows,
            )?,
        );
    }
    db.put_table(
        "service_events",
        table_of(
            "service_events",
            &[
                ("eid", ColumnType::Int),
                ("tid", ColumnType::Int),
                ("ts", ColumnType::Timestamp),
                ("kind", ColumnType::Text),
            ],
            service_events,
        )?,
    );
    Ok(sensor_ids)
}

/// The fleet's relational schema with key metadata, as BootOX sees it.
pub fn fleet_schema() -> RelationalSchema {
    RelationalSchema::new()
        .with_table(
            RelTable::new(
                "countries",
                vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
            )
            .with_pk(&["id"]),
        )
        .with_table(
            RelTable::new(
                "turbines",
                vec![
                    ("tid", ColumnType::Int),
                    ("model", ColumnType::Text),
                    ("kind", ColumnType::Text),
                    ("country_id", ColumnType::Int),
                    ("built", ColumnType::Int),
                ],
            )
            .with_pk(&["tid"])
            .with_fk("country_id", "countries", "id"),
        )
        .with_table(
            RelTable::new(
                "assemblies",
                vec![
                    ("aid", ColumnType::Int),
                    ("tid", ColumnType::Int),
                    ("kind", ColumnType::Text),
                ],
            )
            .with_pk(&["aid"])
            .with_fk("tid", "turbines", "tid"),
        )
        .with_table(
            RelTable::new(
                "sensors",
                vec![
                    ("sid", ColumnType::Int),
                    ("aid", ColumnType::Int),
                    ("kind", ColumnType::Text),
                ],
            )
            .with_pk(&["sid"])
            .with_fk("aid", "assemblies", "aid"),
        )
        .with_table(
            RelTable::new(
                "service_events",
                vec![
                    ("eid", ColumnType::Int),
                    ("tid", ColumnType::Int),
                    ("ts", ColumnType::Timestamp),
                    ("kind", ColumnType::Text),
                ],
            )
            .with_pk(&["eid"])
            .with_fk("tid", "turbines", "tid"),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_builds() {
        let mut db = Database::new();
        let sensors = build_fleet(&mut db, &FleetConfig::small()).unwrap();
        assert_eq!(sensors.len(), 10 * 2 * 3);
        assert_eq!(db.table("turbines").unwrap().len(), 10);
        assert_eq!(db.table("assemblies").unwrap().len(), 20);
        assert_eq!(db.table("sensors").unwrap().len(), 60);
        assert!(db.table("service_events").unwrap().len() >= 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Database::new();
        let mut b = Database::new();
        build_fleet(&mut a, &FleetConfig::small()).unwrap();
        build_fleet(&mut b, &FleetConfig::small()).unwrap();
        assert_eq!(
            a.table("turbines").unwrap().rows,
            b.table("turbines").unwrap().rows
        );
    }

    #[test]
    fn demo_scale_matches_paper() {
        let c = FleetConfig::demo();
        assert_eq!(c.turbines, 950);
        assert!(
            c.sensor_count() > 100_000,
            "paper: more than 100,000 sensors"
        );
    }

    #[test]
    fn schema_validates_and_matches_tables() {
        let schema = fleet_schema();
        schema.validate().unwrap();
        let mut db = Database::new();
        build_fleet(&mut db, &FleetConfig::small()).unwrap();
        for table in &schema.tables {
            assert!(db.has_table(&table.name), "{} missing", table.name);
        }
    }

    #[test]
    fn referential_integrity_holds() {
        let mut db = Database::new();
        build_fleet(&mut db, &FleetConfig::small()).unwrap();
        let t = optique_relational::exec::query(
            "SELECT COUNT(*) AS n FROM sensors s JOIN assemblies a ON s.aid = a.aid \
             JOIN turbines tb ON a.tid = tb.tid JOIN countries c ON tb.country_id = c.id",
            &db,
        )
        .unwrap();
        assert_eq!(
            t.rows[0][0],
            Value::Int(60),
            "every sensor joins through to a country"
        );
    }
}
