//! The (post-processed) Siemens ontology and mapping catalog.
//!
//! The paper bootstraps assets with BootOX "and then manually post-processing
//! and extending them so that they reach the required quality". This module
//! is that end state: a curated TBox over the generated fleet schema and a
//! mapping catalog connecting every term to the tables of
//! [`crate::fleet::build_fleet`].

use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::{Axiom, BasicConcept, Ontology, Role};
use optique_rdf::{Datatype, Iri, Namespaces};

use crate::{DATA_NS, SIE_NS};

/// An IRI in the Siemens vocabulary namespace.
pub fn sie(local: &str) -> Iri {
    Iri::new(format!("{SIE_NS}{local}"))
}

/// Prefixes used by the catalog's STARQL text (`sie:`, default `:`).
pub fn namespaces() -> Namespaces {
    let mut ns = Namespaces::with_w3c_defaults();
    ns.bind("sie", SIE_NS);
    ns.bind("", SIE_NS);
    ns
}

/// The Siemens TBox: equipment taxonomy, sensor taxonomy, part-whole roles,
/// measurement attributes and integrity constraints.
pub fn siemens_ontology() -> Ontology {
    let mut o = Ontology::new();
    let class = BasicConcept::atomic;

    // Equipment taxonomy.
    o.add_axiom(Axiom::subclass(
        class(sie("GasTurbine")),
        class(sie("Turbine")),
    ));
    o.add_axiom(Axiom::subclass(
        class(sie("SteamTurbine")),
        class(sie("Turbine")),
    ));
    o.add_axiom(Axiom::subclass(
        class(sie("Turbine")),
        class(sie("PowerGeneratingAppliance")),
    ));
    o.add_axiom(Axiom::subclass(
        class(sie("Assembly")),
        class(sie("EquipmentPart")),
    ));
    o.add_axiom(Axiom::DisjointClasses(
        class(sie("Turbine")),
        class(sie("Sensor")),
    ));

    // Sensor taxonomy.
    for kind in [
        "TemperatureSensor",
        "PressureSensor",
        "RotorSpeedSensor",
        "VibrationSensor",
    ] {
        o.add_axiom(Axiom::subclass(class(sie(kind)), class(sie("Sensor"))));
    }
    o.add_axiom(Axiom::subclass(
        class(sie("Sensor")),
        class(sie("MonitoringDevice")),
    ));

    // Part-whole roles. NOTE the paper's Figure 1 reads
    // `?c1 sie:inAssembly ?c2` with ?c1 the assembly and ?c2 the sensor, so
    // `inAssembly`'s domain is Assembly and its range is Sensor.
    o.add_axiom(Axiom::domain(sie("inAssembly"), class(sie("Assembly"))));
    o.add_axiom(Axiom::range(sie("inAssembly"), class(sie("Sensor"))));
    o.add_axiom(Axiom::domain(sie("partOf"), class(sie("Assembly"))));
    o.add_axiom(Axiom::range(sie("partOf"), class(sie("Turbine"))));
    for ax in Axiom::inverse_properties(sie("hasPart"), sie("partOf")) {
        o.add_axiom(ax);
    }
    o.add_axiom(Axiom::domain(sie("locatedIn"), class(sie("Turbine"))));
    o.add_axiom(Axiom::range(sie("locatedIn"), class(sie("Country"))));

    // Measurement attributes (data properties).
    o.declare_data_property(sie("hasValue"));
    o.add_axiom(Axiom::SubClass {
        sub: BasicConcept::exists(sie("hasValue")),
        sup: class(sie("Sensor")),
    });
    o.add_axiom(Axiom::Functional(Role::named(sie("hasModel"))));
    o.declare_data_property(sie("hasModel"));
    o.add_axiom(Axiom::SubClass {
        sub: BasicConcept::exists(sie("hasModel")),
        sup: class(sie("Turbine")),
    });

    // Event classes raised on streams.
    o.add_axiom(Axiom::subclass(
        class(sie("showsFailure")),
        class(sie("DiagnosticMessage")),
    ));
    o.add_axiom(Axiom::subclass(
        class(sie("MonInc")),
        class(sie("DiagnosticMessage")),
    ));
    o.add_axiom(Axiom::subclass(
        class(sie("Overheats")),
        class(sie("DiagnosticMessage")),
    ));
    o.add_axiom(Axiom::subclass(
        class(sie("Flatline")),
        class(sie("DiagnosticMessage")),
    ));

    // Mandatory participation: every sensor sits in an assembly.
    o.add_axiom(Axiom::SubClass {
        sub: class(sie("Sensor")),
        sup: BasicConcept::Exists(Role::inverse_of(sie("inAssembly"))),
    });
    o
}

/// The curated mapping catalog over the fleet tables.
pub fn siemens_mappings() -> MappingCatalog {
    let mut c = MappingCatalog::new();
    let t = |table: &str, pk: &str| format!("{DATA_NS}{table}/{{{pk}}}");

    c.add(
        MappingAssertion::class(
            "sie:Turbine",
            sie("Turbine"),
            "SELECT tid FROM turbines",
            TermMap::template(&t("turbine", "tid")),
        )
        .with_key(vec!["tid".into()]),
    )
    .expect("valid mapping");
    c.add(
        MappingAssertion::class(
            "sie:GasTurbine",
            sie("GasTurbine"),
            "SELECT tid FROM turbines WHERE kind = 'gas'",
            TermMap::template(&t("turbine", "tid")),
        )
        .with_key(vec!["tid".into()]),
    )
    .expect("valid mapping");
    c.add(
        MappingAssertion::class(
            "sie:SteamTurbine",
            sie("SteamTurbine"),
            "SELECT tid FROM turbines WHERE kind = 'steam'",
            TermMap::template(&t("turbine", "tid")),
        )
        .with_key(vec!["tid".into()]),
    )
    .expect("valid mapping");
    c.add(
        MappingAssertion::class(
            "sie:Assembly",
            sie("Assembly"),
            "SELECT aid FROM assemblies",
            TermMap::template(&t("assembly", "aid")),
        )
        .with_key(vec!["aid".into()]),
    )
    .expect("valid mapping");
    c.add(
        MappingAssertion::class(
            "sie:Sensor",
            sie("Sensor"),
            "SELECT sid FROM sensors",
            TermMap::template(&t("sensor", "sid")),
        )
        .with_key(vec!["sid".into()]),
    )
    .expect("valid mapping");
    // The same sensors also live in three structurally different regional
    // registries (legacy schemas). One ontological term maps to every
    // source — "all particularities and varieties of how the temperature of
    // a sensor can be measured, represented, and stored are hidden in these
    // mappings" — and unfolding fans out across them.
    for region in ["eu", "na", "apac"] {
        c.add(
            MappingAssertion::class(
                format!("sie:Sensor/{region}"),
                sie("Sensor"),
                format!("SELECT sensor_no FROM sensors_{region}"),
                TermMap::template(&t("sensor", "sensor_no")),
            )
            .with_key(vec!["sensor_no".into()]),
        )
        .expect("valid mapping");
    }
    // Sensor-kind subclasses, unified + regional sources.
    for (class_name, kind) in [
        ("TemperatureSensor", "temperature"),
        ("PressureSensor", "pressure"),
        ("RotorSpeedSensor", "rotor_speed"),
        ("VibrationSensor", "vibration"),
    ] {
        c.add(
            MappingAssertion::class(
                format!("sie:{class_name}"),
                sie(class_name),
                format!("SELECT sid FROM sensors WHERE kind = '{kind}'"),
                TermMap::template(&t("sensor", "sid")),
            )
            .with_key(vec!["sid".into()]),
        )
        .expect("valid mapping");
        for region in ["eu", "na", "apac"] {
            c.add(
                MappingAssertion::class(
                    format!("sie:{class_name}/{region}"),
                    sie(class_name),
                    format!("SELECT sensor_no FROM sensors_{region} WHERE sensor_kind = '{kind}'"),
                    TermMap::template(&t("sensor", "sensor_no")),
                )
                .with_key(vec!["sensor_no".into()]),
            )
            .expect("valid mapping");
        }
    }
    c.add(
        MappingAssertion::class(
            "sie:Country",
            sie("Country"),
            "SELECT id FROM countries",
            TermMap::template(&t("country", "id")),
        )
        .with_key(vec!["id".into()]),
    )
    .expect("valid mapping");

    // Roles (inAssembly also spans the regional registries).
    c.add(
        MappingAssertion::property(
            "sie:inAssembly",
            sie("inAssembly"),
            "SELECT aid, sid FROM sensors",
            TermMap::template(&t("assembly", "aid")),
            TermMap::template(&t("sensor", "sid")),
        )
        .with_key(vec!["aid".into(), "sid".into()]),
    )
    .expect("valid mapping");
    for region in ["eu", "na", "apac"] {
        c.add(
            MappingAssertion::property(
                format!("sie:inAssembly/{region}"),
                sie("inAssembly"),
                format!("SELECT assembly_no, sensor_no FROM sensors_{region}"),
                TermMap::template(&t("assembly", "assembly_no")),
                TermMap::template(&t("sensor", "sensor_no")),
            )
            .with_key(vec!["assembly_no".into(), "sensor_no".into()]),
        )
        .expect("valid mapping");
    }
    c.add(
        MappingAssertion::property(
            "sie:partOf",
            sie("partOf"),
            "SELECT aid, tid FROM assemblies",
            TermMap::template(&t("assembly", "aid")),
            TermMap::template(&t("turbine", "tid")),
        )
        .with_key(vec!["aid".into(), "tid".into()]),
    )
    .expect("valid mapping");
    c.add(
        MappingAssertion::property(
            "sie:locatedIn",
            sie("locatedIn"),
            "SELECT tid, country_id FROM turbines",
            TermMap::template(&t("turbine", "tid")),
            TermMap::template("http://siemens.example/data/country/{country_id}"),
        )
        .with_key(vec!["tid".into()]),
    )
    .expect("valid mapping");
    c.add(
        MappingAssertion::property(
            "sie:hasModel",
            sie("hasModel"),
            "SELECT tid, model FROM turbines",
            TermMap::template(&t("turbine", "tid")),
            TermMap::column("model", Datatype::String),
        )
        .with_key(vec!["tid".into()]),
    )
    .expect("valid mapping");
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_is_consistent() {
        let o = siemens_ontology();
        assert!(o.unsatisfiable_classes().is_empty());
        assert!(o.axiom_count() >= 20);
    }

    #[test]
    fn taxonomy_entailments() {
        let o = siemens_ontology();
        let sups = o.sup_concepts_closure(&BasicConcept::atomic(sie("TemperatureSensor")));
        assert!(sups.contains(&BasicConcept::atomic(sie("Sensor"))));
        assert!(sups.contains(&BasicConcept::atomic(sie("MonitoringDevice"))));
    }

    #[test]
    fn mappings_cover_key_terms() {
        let c = siemens_mappings();
        assert!(!c.for_class(&sie("Sensor")).is_empty());
        assert!(!c.for_class(&sie("TemperatureSensor")).is_empty());
        assert!(!c.for_property(&sie("inAssembly")).is_empty());
        assert!(!c.for_property(&sie("locatedIn")).is_empty());
        assert!(c.len() >= 13);
    }

    #[test]
    fn mappings_execute_over_fleet() {
        use crate::fleet::{build_fleet, FleetConfig};
        let mut db = optique_relational::Database::new();
        build_fleet(&mut db, &FleetConfig::small()).unwrap();
        let graph = optique_mapping::materialize_catalog(&siemens_mappings(), &db).unwrap();
        assert!(
            graph.len() > 100,
            "virtual graph has {} triples",
            graph.len()
        );
        // Every sensor instance is present.
        assert_eq!(graph.instances_of(&sie("Sensor")).len(), 60);
    }

    #[test]
    fn namespaces_resolve_catalog_prefixes() {
        let ns = namespaces();
        assert_eq!(ns.expand("sie:Sensor").unwrap(), sie("Sensor"));
        assert_eq!(ns.expand(":MonInc").unwrap(), sie("MonInc"));
    }
}
