//! OPTIQUE — end-to-end Ontology-Based Stream-Static Data Integration.
//!
//! This crate is the platform layer of the reproduction: it wires the
//! deployment assets (ontology + mappings, hand-written or BootOX-generated)
//! to the STARQL pipeline (enrich → unfold → execute) and the shared
//! streaming runtime (wCache, pulse ticks), and exposes the monitoring
//! [`Dashboard`] the demo scenarios show.
//!
//! ```no_run
//! use optique::OptiquePlatform;
//! use optique_siemens::SiemensDeployment;
//!
//! let mut platform = OptiquePlatform::from_siemens(SiemensDeployment::small());
//! let task = &optique_siemens::diagnostic_tasks()[0];
//! let id = platform.register_task(task).unwrap();
//! let outputs = platform.tick_all(609_000).unwrap();
//! for (qid, out) in outputs {
//!     println!("query {qid}: {} alarms", out.triples.len());
//! }
//! # let _ = id;
//! ```

pub mod dashboard;
pub mod federation;
pub mod platform;
pub mod server;

pub use dashboard::{Dashboard, QueryPanel, SlowQuery, StaticQueryPanel};
pub use federation::{Federation, FederationTopology};
pub use optique_telemetry as telemetry;

/// The federation's pre-unification name, kept for downstream callers.
pub type StaticFederation = Federation;
pub use optique_sparql::SparqlResults;
pub use platform::{
    CacheInvalidation, FleetReport, OptiquePlatform, PlatformSnapshot, RegisteredStarQl,
    WritePolicy,
};
pub use server::{Client, Request, Response, Server, ServerConfig, ServerError, TenantQuota};
