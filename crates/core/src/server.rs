//! `optique::server` — the concurrent multi-tenant serving layer.
//!
//! The paper's deployment story (§Siemens) is many engineers querying one
//! platform at once. [`OptiquePlatform`] itself is a shared `&self` service
//! whose queries run on immutable [`PlatformSnapshot`]s
//! (crate::platform); this module puts a *front door* on it:
//!
//! - [`Server::serve`] spawns a fixed pool of worker threads draining one
//!   bounded job queue.
//! - [`Client`] is a cheap per-tenant handle; [`Client::submit`] enqueues a
//!   [`Request`] and returns a [`QueryHandle`] to wait on, and the
//!   `query`/`query_distributed`/`insert`/`tick` conveniences wrap
//!   submit-and-wait.
//! - **Admission control**: a full queue sheds load with a typed
//!   [`ServerError::Overloaded`] instead of letting latency collapse.
//! - **Per-tenant quotas** ([`TenantQuota`]): a cap on requests in flight
//!   (queued + executing) and a token-bucket admission rate.
//!
//! Every admission decision and queue transition feeds the platform's
//! [`MetricsRegistry`](optique_telemetry::MetricsRegistry):
//! `server.admitted` / `server.shed` / `server.completed` counters,
//! per-tenant `server.tenant.<t>.*` counters, the `server.queue_depth`
//! gauge, and `server.queue_wait_us` / `server.request_us` histograms.
//!
//! Dropping the [`Server`] shuts the pool down: workers finish the job in
//! hand, still-queued jobs are answered with [`ServerError::ShutDown`].
//!
//! With `workers: 0` the server accepts (and meters) but never executes —
//! a deterministic mode the admission-control tests use to fill the queue
//! without racing the drain.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use optique_relational::Value;
use optique_sparql::SparqlResults;
use optique_starql::TickOutput;
use optique_telemetry::MetricsRegistry;

use crate::platform::OptiquePlatform;
#[allow(unused_imports)] // module docs link it
use crate::platform::PlatformSnapshot;

/// Per-tenant admission limits.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Maximum requests the tenant may have in flight (queued + executing)
    /// at once; the next submission gets [`ServerError::QuotaExceeded`].
    pub max_in_flight: usize,
    /// Sustained admissions per second, enforced by a token bucket with a
    /// burst of `max(rate, 1)`; `0` disables rate limiting.
    pub rate_per_sec: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_in_flight: usize::MAX,
            rate_per_sec: 0,
        }
    }
}

/// Serving-layer knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the queue (`0` = accept-only: requests
    /// queue and meter but never execute — for deterministic admission
    /// tests).
    pub workers: usize,
    /// Bound on queued-but-not-yet-claimed jobs; submissions beyond it are
    /// shed with [`ServerError::Overloaded`].
    pub queue_capacity: usize,
    /// Quota applied to tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant overrides.
    pub tenant_quotas: HashMap<String, TenantQuota>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_quota: TenantQuota::default(),
            tenant_quotas: HashMap::new(),
        }
    }
}

impl ServerConfig {
    /// Sets an explicit quota for `tenant` (builder-style).
    pub fn with_tenant_quota(mut self, tenant: &str, quota: TenantQuota) -> Self {
        self.tenant_quotas.insert(tenant.to_string(), quota);
        self
    }

    fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.tenant_quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// One unit of client work.
#[derive(Clone, Debug)]
pub enum Request {
    /// A static SPARQL query ([`OptiquePlatform::query_static`]).
    Sparql(String),
    /// A static SPARQL query federated over `workers`
    /// ([`OptiquePlatform::query_static_distributed`]).
    SparqlDistributed {
        /// Query text.
        text: String,
        /// Federation pool size.
        workers: usize,
    },
    /// A relational write ([`OptiquePlatform::insert_static`]).
    InsertStatic {
        /// Target static table.
        table: String,
        /// Rows to append.
        rows: Vec<Vec<Value>>,
    },
    /// One pulse tick for every registered continuous query
    /// ([`OptiquePlatform::tick_all`]).
    Tick(i64),
    /// Fold the novelty overlay into the base catalog now
    /// ([`OptiquePlatform::merge_now`]).
    Merge,
}

/// A completed request's payload.
#[derive(Clone, Debug)]
pub enum Response {
    /// Answer to [`Request::Sparql`] / [`Request::SparqlDistributed`].
    Solutions(SparqlResults),
    /// Rows appended by [`Request::InsertStatic`].
    Inserted(usize),
    /// Per-query outputs of [`Request::Tick`].
    Ticks(Vec<(u64, TickOutput)>),
    /// Overlay rows folded by [`Request::Merge`].
    Merged(usize),
}

/// Why the serving layer refused or failed a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The bounded queue is full — back off and retry.
    Overloaded {
        /// Jobs queued when the submission was shed.
        queue_depth: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The tenant is at its in-flight cap.
    QuotaExceeded {
        /// The refusing tenant.
        tenant: String,
        /// Requests the tenant had in flight.
        in_flight: usize,
        /// The tenant's cap.
        max_in_flight: usize,
    },
    /// The tenant's token bucket is empty.
    RateLimited {
        /// The refusing tenant.
        tenant: String,
    },
    /// The platform rejected or failed the query itself.
    Query(String),
    /// The server shut down before the request could complete.
    ShutDown,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded {
                queue_depth,
                capacity,
            } => write!(f, "server overloaded: {queue_depth}/{capacity} jobs queued"),
            ServerError::QuotaExceeded {
                tenant,
                in_flight,
                max_in_flight,
            } => write!(
                f,
                "tenant {tenant} at quota: {in_flight}/{max_in_flight} in flight"
            ),
            ServerError::RateLimited { tenant } => {
                write!(f, "tenant {tenant} rate-limited")
            }
            ServerError::Query(e) => write!(f, "query failed: {e}"),
            ServerError::ShutDown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A queued request with its reply channel.
struct Job {
    tenant: String,
    request: Request,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Response, ServerError>>,
}

/// Live admission state for one tenant.
struct TenantState {
    in_flight: usize,
    tokens: f64,
    refilled: Instant,
}

/// State shared between clients, workers, and the server handle.
struct Shared {
    platform: Arc<OptiquePlatform>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that a job arrived or shutdown began.
    available: Condvar,
    shutdown: AtomicBool,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl Shared {
    fn registry(&self) -> &MetricsRegistry {
        self.platform.metrics()
    }

    /// Admission check: shutdown, in-flight quota, then rate. Reserves one
    /// in-flight slot on success — every exit path after this must
    /// eventually [`Self::release`] the tenant.
    fn admit(&self, tenant: &str) -> Result<(), ServerError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShutDown);
        }
        let quota = self.config.quota_for(tenant);
        let mut tenants = self.tenants.lock().expect("tenants lock");
        let burst = quota.rate_per_sec.max(1) as f64;
        let state = tenants.entry(tenant.to_string()).or_insert(TenantState {
            in_flight: 0,
            tokens: burst,
            refilled: Instant::now(),
        });
        if state.in_flight >= quota.max_in_flight {
            self.registry()
                .counter(&format!("server.tenant.{tenant}.rejected"))
                .inc();
            return Err(ServerError::QuotaExceeded {
                tenant: tenant.to_string(),
                in_flight: state.in_flight,
                max_in_flight: quota.max_in_flight,
            });
        }
        if quota.rate_per_sec > 0 {
            let now = Instant::now();
            let refill =
                now.duration_since(state.refilled).as_secs_f64() * f64::from(quota.rate_per_sec);
            state.tokens = (state.tokens + refill).min(burst);
            state.refilled = now;
            if state.tokens < 1.0 {
                self.registry()
                    .counter(&format!("server.tenant.{tenant}.rejected"))
                    .inc();
                return Err(ServerError::RateLimited {
                    tenant: tenant.to_string(),
                });
            }
            state.tokens -= 1.0;
        }
        state.in_flight += 1;
        Ok(())
    }

    /// Returns a tenant's in-flight slot.
    fn release(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("tenants lock");
        if let Some(state) = tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    fn set_queue_depth(&self, depth: usize) {
        self.registry()
            .gauge("server.queue_depth")
            .set(depth as i64);
    }

    /// The worker loop: claim, execute, reply — until shutdown.
    fn work(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        self.set_queue_depth(queue.len());
                        break job;
                    }
                    queue = self.available.wait(queue).expect("queue lock");
                }
            };
            self.registry()
                .histogram("server.queue_wait_us")
                .record(job.enqueued.elapsed().as_micros() as u64);
            let started = Instant::now();
            let result = execute(&self.platform, job.request);
            self.registry()
                .histogram("server.request_us")
                .record(started.elapsed().as_micros() as u64);
            self.registry()
                .counter(if result.is_ok() {
                    "server.completed"
                } else {
                    "server.errors"
                })
                .inc();
            self.registry()
                .counter(&format!("server.tenant.{}.completed", job.tenant))
                .inc();
            self.release(&job.tenant);
            // A caller that dropped its handle just doesn't hear back.
            let _ = job.reply.send(result);
        }
    }
}

/// Runs one request against the platform.
fn execute(platform: &OptiquePlatform, request: Request) -> Result<Response, ServerError> {
    match request {
        Request::Sparql(text) => platform
            .query_static(&text)
            .map(Response::Solutions)
            .map_err(ServerError::Query),
        Request::SparqlDistributed { text, workers } => platform
            .query_static_distributed(&text, workers)
            .map(Response::Solutions)
            .map_err(ServerError::Query),
        Request::InsertStatic { table, rows } => platform
            .insert_static(&table, rows)
            .map(Response::Inserted)
            .map_err(ServerError::Query),
        Request::Tick(tick_ms) => platform
            .tick_all(tick_ms)
            .map(Response::Ticks)
            .map_err(ServerError::Query),
        Request::Merge => platform
            .merge_now()
            .map(Response::Merged)
            .map_err(ServerError::Query),
    }
}

/// The thread-pool front-end over one [`OptiquePlatform`]. See the module
/// docs for the serving model.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts `config.workers` worker threads over `platform` and returns
    /// the server handle. The platform stays directly usable alongside the
    /// server — the snapshot write path keeps both coherent.
    pub fn serve(platform: Arc<OptiquePlatform>, config: ServerConfig) -> Server {
        let worker_count = config.workers;
        let shared = Arc::new(Shared {
            platform,
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("optique-server-{i}"))
                    .spawn(move || shared.work())
                    .expect("spawn server worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// A handle submitting requests as `tenant`. Handles are cheap; one
    /// tenant may hold many (they share the tenant's quota).
    pub fn client(&self, tenant: &str) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            tenant: tenant.to_string(),
        }
    }

    /// The served platform.
    pub fn platform(&self) -> &Arc<OptiquePlatform> {
        &self.shared.platform
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers are gone; answer everything still queued.
        let drained: Vec<Job> = {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            self.shared.set_queue_depth(0);
            queue.drain(..).collect()
        };
        for job in drained {
            self.shared.release(&job.tenant);
            let _ = job.reply.send(Err(ServerError::ShutDown));
        }
    }
}

/// A per-tenant submission handle; see [`Server::client`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    tenant: String,
}

/// An in-flight request; [`QueryHandle::wait`] blocks for the reply.
pub struct QueryHandle {
    rx: mpsc::Receiver<Result<Response, ServerError>>,
}

impl QueryHandle {
    /// Blocks until the request completes (or the server shuts down).
    pub fn wait(self) -> Result<Response, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::ShutDown))
    }
}

impl Client {
    /// The tenant this handle submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Enqueues `request` through admission control, returning a handle to
    /// wait on. Fails fast — without blocking — when the server is
    /// shutting down, the tenant is over quota or rate, or the queue is
    /// full.
    pub fn submit(&self, request: Request) -> Result<QueryHandle, ServerError> {
        self.shared.admit(&self.tenant)?;
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            if queue.len() >= self.shared.config.queue_capacity {
                let depth = queue.len();
                drop(queue);
                self.shared.release(&self.tenant);
                self.shared.registry().counter("server.shed").inc();
                return Err(ServerError::Overloaded {
                    queue_depth: depth,
                    capacity: self.shared.config.queue_capacity,
                });
            }
            queue.push_back(Job {
                tenant: self.tenant.clone(),
                request,
                enqueued: Instant::now(),
                reply: tx,
            });
            self.shared.set_queue_depth(queue.len());
        }
        self.shared.available.notify_one();
        self.shared.registry().counter("server.admitted").inc();
        self.shared
            .registry()
            .counter(&format!("server.tenant.{}.admitted", self.tenant))
            .inc();
        Ok(QueryHandle { rx })
    }

    /// Submits a static SPARQL query and waits for its solutions.
    pub fn query(&self, text: &str) -> Result<SparqlResults, ServerError> {
        match self.submit(Request::Sparql(text.to_string()))?.wait()? {
            Response::Solutions(results) => Ok(results),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }

    /// Submits a federated static query and waits for its solutions.
    pub fn query_distributed(
        &self,
        text: &str,
        workers: usize,
    ) -> Result<SparqlResults, ServerError> {
        let request = Request::SparqlDistributed {
            text: text.to_string(),
            workers,
        };
        match self.submit(request)?.wait()? {
            Response::Solutions(results) => Ok(results),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }

    /// Submits a relational write and waits for the inserted-row count.
    pub fn insert(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, ServerError> {
        let request = Request::InsertStatic {
            table: table.to_string(),
            rows,
        };
        match self.submit(request)?.wait()? {
            Response::Inserted(n) => Ok(n),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }

    /// Submits one pulse tick and waits for the per-query outputs.
    pub fn tick(&self, tick_ms: i64) -> Result<Vec<(u64, TickOutput)>, ServerError> {
        match self.submit(Request::Tick(tick_ms))?.wait()? {
            Response::Ticks(out) => Ok(out),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }

    /// Submits a novelty merge and waits for the folded-row count.
    pub fn merge(&self) -> Result<usize, ServerError> {
        match self.submit(Request::Merge)?.wait()? {
            Response::Merged(n) => Ok(n),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_siemens::SiemensDeployment;

    fn platform() -> Arc<OptiquePlatform> {
        Arc::new(OptiquePlatform::from_siemens(SiemensDeployment::small()))
    }

    const SENSORS: &str = "SELECT ?s WHERE { ?s a sie:Sensor }";

    #[test]
    fn served_answers_match_direct_answers() {
        let p = platform();
        let direct = p.query_static(SENSORS).unwrap();
        let server = Server::serve(Arc::clone(&p), ServerConfig::default());
        let client = server.client("alice");
        assert_eq!(client.query(SENSORS).unwrap(), direct);
        assert_eq!(
            client.query_distributed(SENSORS, 2).unwrap().len(),
            direct.len()
        );
        let snap = p.metrics_snapshot();
        assert_eq!(snap.counter("server.admitted"), Some(2));
        assert_eq!(snap.counter("server.completed"), Some(2));
        assert_eq!(snap.counter("server.tenant.alice.admitted"), Some(2));
        assert_eq!(snap.gauge("server.queue_depth"), Some(0));
    }

    #[test]
    fn writes_and_ticks_flow_through_the_server() {
        let p = platform();
        let server = Server::serve(Arc::clone(&p), ServerConfig::default());
        let client = server.client("writer");
        let before = client
            .query("SELECT ?t WHERE { ?t a sie:Turbine }")
            .unwrap()
            .len();
        let turbines = p.db().table("turbines").unwrap().clone();
        let mut row: Vec<Value> = turbines.rows[0].clone();
        let id_col = turbines.schema.index_of("tid").unwrap();
        row[id_col] = Value::Int(91_001);
        assert_eq!(client.insert("turbines", vec![row]).unwrap(), 1);
        let after = client
            .query("SELECT ?t WHERE { ?t a sie:Turbine }")
            .unwrap()
            .len();
        assert_eq!(after, before + 1);
        // The write landed in the overlay; a served merge folds it and a
        // second merge is a no-op.
        assert_eq!(client.merge().unwrap(), 1);
        assert_eq!(client.merge().unwrap(), 0);
        assert_eq!(
            client
                .query("SELECT ?t WHERE { ?t a sie:Turbine }")
                .unwrap()
                .len(),
            after
        );
        // Ticks are servable too (no queries registered → empty round).
        assert!(client.tick(609_000).unwrap().is_empty());
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let p = platform();
        // Accept-only: nothing drains, so admission is deterministic.
        let server = Server::serve(
            Arc::clone(&p),
            ServerConfig {
                workers: 0,
                queue_capacity: 2,
                ..ServerConfig::default()
            },
        );
        let client = server.client("burst");
        let h1 = client.submit(Request::Sparql(SENSORS.into())).unwrap();
        let h2 = client.submit(Request::Sparql(SENSORS.into())).unwrap();
        match client.submit(Request::Sparql(SENSORS.into())) {
            Err(ServerError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!((queue_depth, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        assert_eq!(p.metrics_snapshot().counter("server.shed"), Some(1));
        // Shutdown answers the queued jobs.
        drop(server);
        assert!(matches!(h1.wait(), Err(ServerError::ShutDown)));
        assert!(matches!(h2.wait(), Err(ServerError::ShutDown)));
        assert_eq!(p.metrics_snapshot().gauge("server.queue_depth"), Some(0));
    }

    #[test]
    fn in_flight_quota_rejects_the_over_limit_submission() {
        let p = platform();
        let quota = TenantQuota {
            max_in_flight: 1,
            rate_per_sec: 0,
        };
        let server = Server::serve(
            Arc::clone(&p),
            ServerConfig {
                workers: 0,
                ..ServerConfig::default()
            }
            .with_tenant_quota("capped", quota),
        );
        let capped = server.client("capped");
        let _held = capped.submit(Request::Sparql(SENSORS.into())).unwrap();
        match capped.submit(Request::Sparql(SENSORS.into())) {
            Err(ServerError::QuotaExceeded {
                tenant,
                in_flight,
                max_in_flight,
            }) => {
                assert_eq!(
                    (tenant.as_str(), in_flight, max_in_flight),
                    ("capped", 1, 1)
                );
            }
            other => panic!("expected QuotaExceeded, got {:?}", other.map(|_| ())),
        }
        // Another tenant is unaffected by capped's quota.
        let other = server.client("free");
        other.submit(Request::Sparql(SENSORS.into())).unwrap();
        assert_eq!(
            p.metrics_snapshot()
                .counter("server.tenant.capped.rejected"),
            Some(1)
        );
    }

    #[test]
    fn rate_limit_rejects_the_burst_exceeding_submission() {
        let p = platform();
        let quota = TenantQuota {
            max_in_flight: usize::MAX,
            rate_per_sec: 1,
        };
        let server = Server::serve(
            Arc::clone(&p),
            ServerConfig::default().with_tenant_quota("metered", quota),
        );
        let client = server.client("metered");
        client.query(SENSORS).unwrap();
        // Burst of 1 is spent; the immediate follow-up is rate-limited.
        match client.query(SENSORS) {
            Err(ServerError::RateLimited { tenant }) => assert_eq!(tenant, "metered"),
            other => panic!("expected RateLimited, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn concurrent_clients_all_get_correct_answers() {
        let p = platform();
        let direct = p.query_static(SENSORS).unwrap();
        let server = Server::serve(Arc::clone(&p), ServerConfig::default());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let client = server.client(&format!("tenant-{t}"));
                let direct = &direct;
                scope.spawn(move || {
                    for _ in 0..4 {
                        assert_eq!(&client.query(SENSORS).unwrap(), direct);
                    }
                });
            }
        });
        let snap = p.metrics_snapshot();
        assert_eq!(snap.counter("server.admitted"), Some(32));
        assert_eq!(snap.counter("server.completed"), Some(32));
    }

    #[test]
    fn submitting_after_shutdown_fails_fast() {
        let p = platform();
        let server = Server::serve(Arc::clone(&p), ServerConfig::default());
        let client = server.client("late");
        drop(server);
        assert_eq!(
            client.submit(Request::Sparql(SENSORS.into())).err(),
            Some(ServerError::ShutDown)
        );
    }
}
