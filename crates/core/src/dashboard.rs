//! Monitoring dashboards (the textual equivalent of paper Figure 3).
//!
//! "Dashboards show diagnostics results in real time, as well as statistics
//! on streaming answers, relevant turbines, and other information that is
//! typically required by Siemens Energy service engineers."

/// One query's monitoring panel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPanel {
    /// Platform query id.
    pub id: u64,
    /// Query name.
    pub name: String,
    /// Static WHERE bindings (monitored sensors).
    pub bindings: usize,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Cumulative alarms.
    pub alarms: u64,
    /// Cumulative stream tuples inspected.
    pub tuples: u64,
    /// Size of the low-level query fleet this query replaces.
    pub fleet_size: usize,
    /// Workers evaluating this query's ticks (1 = single-node).
    pub workers: usize,
    /// Cumulative window fragments shipped to the federation (0 =
    /// single-node, or every window came from the shared cache).
    pub window_fragments: u64,
    /// Cumulative stream rows the federation shipped back.
    pub stream_rows: u64,
    /// Cumulative stream shards skipped by key routing.
    pub shards_pruned: u64,
    /// Cumulative stream-key semi-joins pushed into window fragments.
    pub semi_joins_pushed: u64,
    /// Cumulative worker pane-store probes answered from warm incremental
    /// state (pane-combinable distributed queries only).
    pub pane_hits: u64,
    /// Cumulative worker pane-store probes folded from scratch.
    pub pane_misses: u64,
    /// Median tick latency in microseconds (0 before the first tick).
    pub tick_p50_us: u64,
    /// 95th-percentile tick latency in microseconds.
    pub tick_p95_us: u64,
    /// 99th-percentile tick latency in microseconds.
    pub tick_p99_us: u64,
}

/// One executed static (SPARQL) query's panel.
///
/// The four stage-time columns are **span-derived**: the platform reads
/// them off the query's telemetry span tree (`parse` / `rewrite` / `unfold`
/// / `exec` spans), so the panel and EXPLAIN ANALYZE report the same clock.
/// With tracing off they render 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticQueryPanel {
    /// Platform-assigned id (its own sequence, separate from stream ids).
    pub id: u64,
    /// A one-line preview of the query text.
    pub query: String,
    /// Rows (or the 0/1 ASK verdict) returned.
    pub rows: usize,
    /// Basic graph patterns evaluated.
    pub bgps: usize,
    /// UCQ disjuncts after PerfectRef enrichment.
    pub ucq_disjuncts: usize,
    /// SQL disjuncts emitted by unfolding.
    pub sql_disjuncts: usize,
    /// Microseconds: parsing (from the `parse` span).
    pub parse_micros: u64,
    /// Microseconds: enrichment (summed `rewrite` spans).
    pub rewrite_micros: u64,
    /// Microseconds: unfolding (summed `unfold` spans).
    pub unfold_micros: u64,
    /// Microseconds: SQL execution (summed `exec` spans).
    pub exec_micros: u64,
    /// BGPs answered from the per-BGP cache.
    pub cache_hits: usize,
    /// BGPs that ran the full rewrite → unfold → execute pipeline.
    pub cache_misses: usize,
    /// Plan fragments shipped to ExaStream workers (0 = single-node).
    pub fragments: usize,
    /// Workers that executed this query (1 = single-node).
    pub workers: usize,
    /// Fragments answered on the coordinator instead of a worker — a
    /// nonzero count exposes a "distributed" run that silently fell back.
    pub coordinator_fallbacks: usize,
    /// Join batches the planner executed in a non-textual order.
    pub join_reorders: usize,
    /// Semi-join value lists pushed into BGP executions.
    pub semi_joins_pushed: usize,
    /// Planner-estimated BGP cardinalities, summed (0 = planner off).
    pub estimated_rows: u64,
    /// Actual BGP solution rows, summed — against
    /// [`Self::estimated_rows`], judges the cardinality model.
    pub actual_rows: u64,
    /// Rows returned by SQL execution before the residual merge (semi-join
    /// pushdown shrinks this).
    pub fragment_rows: usize,
    /// Fragments executed sharded over a hash-partitioned table.
    pub partitioned_fragments: usize,
    /// Fragments answered by a single worker's replicas while the pool had
    /// partitioned tables — the middle rung of the sharded → replicated →
    /// coordinator ladder.
    pub replicated_fallbacks: usize,
    /// Scatter executions skipped by partition-key routing.
    pub shards_pruned: usize,
    /// Fragment executions answered from a worker's prepared-plan cache.
    pub plan_cache_hits: u64,
    /// Fragment executions that parsed their statement.
    pub plan_cache_misses: u64,
}

impl StaticQueryPanel {
    /// End-to-end pipeline time in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.parse_micros + self.rewrite_micros + self.unfold_micros + self.exec_micros
    }

    /// The planner's `estimated ÷ actual` cardinality accuracy, clamped to
    /// a renderable range. `None` when there is no estimate (planner off —
    /// the pipeline floors live estimates to ≥ 1 per BGP, so 0 is
    /// unambiguous); when a round returns no rows the denominator is
    /// treated as 1 — a correctly-predicted empty result renders ≈ 1.0,
    /// an over-estimate renders as its magnitude — and the whole ratio
    /// caps at [`Self::ACCURACY_CAP`], never `inf`/`NaN`.
    pub fn estimate_accuracy(&self) -> Option<f64> {
        if self.estimated_rows == 0 {
            return None;
        }
        let denominator = self.actual_rows.max(1) as f64;
        Some((self.estimated_rows as f64 / denominator).min(Self::ACCURACY_CAP))
    }

    /// Upper clamp for [`Self::estimate_accuracy`].
    pub const ACCURACY_CAP: f64 = 999.0;
}

/// One entry on the slow-query log: a static query whose end-to-end
/// latency crossed the platform's configurable threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQuery {
    /// The static-query id (matches its [`StaticQueryPanel`]).
    pub id: u64,
    /// A one-line preview of the query text.
    pub query: String,
    /// Workers that executed it (1 = single-node).
    pub workers: usize,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
}

/// A point-in-time monitoring snapshot.
#[derive(Clone, Debug, Default)]
pub struct Dashboard {
    /// Per-query panels, in registration order.
    pub panels: Vec<QueryPanel>,
    /// Recently executed static SPARQL queries, oldest first.
    pub static_queries: Vec<StaticQueryPanel>,
    /// Shared window-cache hits.
    pub wcache_hits: u64,
    /// Shared window-cache misses.
    pub wcache_misses: u64,
    /// Per-BGP solution-set cache hits (static pipeline).
    pub bgp_cache_hits: u64,
    /// Per-BGP solution-set cache misses.
    pub bgp_cache_misses: u64,
    /// Times the per-BGP cache was invalidated by a relational write.
    pub bgp_cache_invalidations: u64,
    /// Worker plan-cache hits summed over the live federation pools
    /// (counters of dropped pools are gone with them).
    pub plan_cache_hits: u64,
    /// Worker plan-cache misses summed over the live federation pools.
    pub plan_cache_misses: u64,
    /// Median static-query latency in microseconds over the whole history
    /// (not just the remembered panels); 0 before the first query.
    pub static_p50_us: u64,
    /// 95th-percentile static-query latency in microseconds.
    pub static_p95_us: u64,
    /// 99th-percentile static-query latency in microseconds.
    pub static_p99_us: u64,
    /// Static queries that crossed the slow-query threshold, oldest first.
    pub slow_queries: Vec<SlowQuery>,
    /// The slow-query threshold in force when this snapshot was taken.
    pub slow_threshold_us: u64,
}

impl Dashboard {
    /// Total alarms across all panels.
    pub fn total_alarms(&self) -> u64 {
        self.panels.iter().map(|p| p.alarms).sum()
    }

    /// Total tuples inspected across all panels.
    pub fn total_tuples(&self) -> u64 {
        self.panels.iter().map(|p| p.tuples).sum()
    }

    /// Window-cache hit rate in `[0, 1]` (`None` before any access).
    pub fn wcache_hit_rate(&self) -> Option<f64> {
        let total = self.wcache_hits + self.wcache_misses;
        if total == 0 {
            None
        } else {
            Some(self.wcache_hits as f64 / total as f64)
        }
    }

    /// Total join-batch reorders across the remembered static queries.
    pub fn total_join_reorders(&self) -> usize {
        self.static_queries.iter().map(|q| q.join_reorders).sum()
    }

    /// Total semi-join pushdowns across the remembered static queries.
    pub fn total_semi_joins_pushed(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.semi_joins_pushed)
            .sum()
    }

    /// Total coordinator fallbacks across the remembered static queries —
    /// 0 proves every "distributed" answer genuinely shipped to workers.
    pub fn total_coordinator_fallbacks(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.coordinator_fallbacks)
            .sum()
    }

    /// Total sharded fragment executions across the remembered static
    /// queries — 0 on a partitioned deployment means the advisor's keys
    /// never matched a scan.
    pub fn total_partitioned_fragments(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.partitioned_fragments)
            .sum()
    }

    /// Total single-replica fallbacks across the remembered static queries
    /// (partitioned pools only).
    pub fn total_replicated_fallbacks(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.replicated_fallbacks)
            .sum()
    }

    /// Total scatter executions skipped by partition-key routing.
    pub fn total_shards_pruned(&self) -> usize {
        self.static_queries.iter().map(|q| q.shards_pruned).sum()
    }

    /// Per-BGP cache hit rate in `[0, 1]` (`None` before any lookup).
    pub fn bgp_cache_hit_rate(&self) -> Option<f64> {
        let total = self.bgp_cache_hits + self.bgp_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.bgp_cache_hits as f64 / total as f64)
        }
    }

    /// Worker plan-cache hit rate in `[0, 1]` (`None` before any round).
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.plan_cache_hits as f64 / total as f64)
        }
    }

    /// Total window fragments shipped across the continuous-query panels.
    pub fn total_window_fragments(&self) -> u64 {
        self.panels.iter().map(|p| p.window_fragments).sum()
    }

    /// Total stream rows the federations shipped for window fragments.
    pub fn total_stream_rows(&self) -> u64 {
        self.panels.iter().map(|p| p.stream_rows).sum()
    }

    /// Total stream shards skipped by key routing across the panels.
    pub fn total_stream_shards_pruned(&self) -> u64 {
        self.panels.iter().map(|p| p.shards_pruned).sum()
    }

    /// Worker pane-store hit rate across the continuous-query panels in
    /// `[0, 1]` (`None` before any pane probe — e.g. no pane-combinable
    /// distributed query registered).
    pub fn pane_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.panels.iter().map(|p| p.pane_hits).sum();
        let misses: u64 = self.panels.iter().map(|p| p.pane_misses).sum();
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Renders an ASCII dashboard frame.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "┌─ OPTIQUE monitoring ─ {} queries ─ {} alarms ─ wCache {}\n",
            self.panels.len(),
            self.total_alarms(),
            match self.wcache_hit_rate() {
                Some(rate) => format!("{:.0}% hit", rate * 100.0),
                None => "idle".to_string(),
            }
        ));
        let stream = stream_layout();
        out.push_str(&stream.header());
        for p in &self.panels {
            out.push_str(&stream.row(&[
                p.id.to_string(),
                truncate(&p.name, 36),
                p.bindings.to_string(),
                p.ticks.to_string(),
                p.alarms.to_string(),
                p.tuples.to_string(),
                p.fleet_size.to_string(),
                p.workers.to_string(),
                p.window_fragments.to_string(),
                p.stream_rows.to_string(),
                p.shards_pruned.to_string(),
                p.semi_joins_pushed.to_string(),
                p.pane_hits.to_string(),
                p.pane_misses.to_string(),
                p.tick_p50_us.to_string(),
                p.tick_p95_us.to_string(),
                p.tick_p99_us.to_string(),
            ]));
        }
        if !self.static_queries.is_empty() {
            out.push_str(&format!(
                "├─ static SPARQL ─ {} queries ─ p50/p95/p99 {}/{}/{} µs ─ BGP cache {} ─ plan cache {}\n",
                self.static_queries.len(),
                self.static_p50_us,
                self.static_p95_us,
                self.static_p99_us,
                match self.bgp_cache_hit_rate() {
                    Some(rate) => format!(
                        "{:.0}% hit ({} inval)",
                        rate * 100.0,
                        self.bgp_cache_invalidations
                    ),
                    None => "idle".to_string(),
                },
                match self.plan_cache_hit_rate() {
                    Some(rate) => format!("{:.0}% hit", rate * 100.0),
                    None => "idle".to_string(),
                }
            ));
            let layout = static_layout();
            out.push_str(&layout.header());
            for q in &self.static_queries {
                out.push_str(&layout.row(&[
                    q.id.to_string(),
                    truncate(&q.query, 33),
                    q.rows.to_string(),
                    q.bgps.to_string(),
                    q.ucq_disjuncts.to_string(),
                    q.sql_disjuncts.to_string(),
                    q.cache_hits.to_string(),
                    q.fragments.to_string(),
                    q.workers.to_string(),
                    q.partitioned_fragments.to_string(),
                    q.replicated_fallbacks.to_string(),
                    q.coordinator_fallbacks.to_string(),
                    q.shards_pruned.to_string(),
                    q.join_reorders.to_string(),
                    q.semi_joins_pushed.to_string(),
                    format!("{}/{}", q.estimated_rows, q.actual_rows),
                    match q.estimate_accuracy() {
                        Some(acc) => format!("{acc:.1}"),
                        None => "—".to_string(),
                    },
                    q.fragment_rows.to_string(),
                    q.total_micros().to_string(),
                ]));
            }
        }
        if !self.slow_queries.is_empty() {
            out.push_str(&format!(
                "├─ slow queries ─ ≥ {} µs\n",
                self.slow_threshold_us
            ));
            let layout = slow_layout();
            out.push_str(&layout.header());
            for s in &self.slow_queries {
                out.push_str(&layout.row(&[
                    s.id.to_string(),
                    truncate(&s.query, 60),
                    s.workers.to_string(),
                    s.total_us.to_string(),
                ]));
            }
        }
        out.push_str("└─\n");
        out
    }
}

/// Column alignment for [`ColumnLayout`].
#[derive(Clone, Copy, Debug)]
enum Align {
    Left,
    Right,
}

/// A shared header/row layout: every panel table renders its header and
/// its rows through one set of column widths, so columns cannot drift when
/// a field is added (the old hand-counted `format!` strings could — and
/// did).
struct ColumnLayout {
    /// `(title, width, alignment)` per column; widths count chars, not
    /// bytes, and never undercut the title.
    columns: Vec<(&'static str, usize, Align)>,
}

impl ColumnLayout {
    fn new(columns: Vec<(&'static str, usize, Align)>) -> Self {
        let columns = columns
            .into_iter()
            .map(|(title, width, align)| (title, width.max(title.chars().count()), align))
            .collect();
        ColumnLayout { columns }
    }

    fn pad(text: &str, width: usize, align: Align) -> String {
        let fill = width.saturating_sub(text.chars().count());
        match align {
            Align::Left => format!("{text}{}", " ".repeat(fill)),
            Align::Right => format!("{}{text}", " ".repeat(fill)),
        }
    }

    /// The header line, each title aligned exactly like its values.
    fn header(&self) -> String {
        let titles: Vec<String> = self.columns.iter().map(|(t, _, _)| t.to_string()).collect();
        self.row(&titles)
    }

    /// One body line. Missing cells render empty; extra cells are ignored.
    fn row(&self, cells: &[String]) -> String {
        let mut line = String::from("│");
        for (i, (_, width, align)) in self.columns.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            line.push(' ');
            line.push_str(&Self::pad(cell, *width, *align));
        }
        while line.ends_with(' ') {
            line.pop();
        }
        line.push('\n');
        line
    }
}

fn stream_layout() -> ColumnLayout {
    ColumnLayout::new(vec![
        ("id", 4, Align::Left),
        ("name", 36, Align::Left),
        ("bindings", 8, Align::Right),
        ("ticks", 5, Align::Right),
        ("alarms", 6, Align::Right),
        ("tuples", 8, Align::Right),
        ("fleet", 5, Align::Right),
        ("wrk", 3, Align::Right),
        ("wfrag", 5, Align::Right),
        ("srows", 6, Align::Right),
        ("prune", 5, Align::Right),
        ("semi", 4, Align::Right),
        ("phit", 4, Align::Right),
        ("pmiss", 5, Align::Right),
        ("p50µs", 6, Align::Right),
        ("p95µs", 6, Align::Right),
        ("p99µs", 6, Align::Right),
    ])
}

fn static_layout() -> ColumnLayout {
    ColumnLayout::new(vec![
        ("id", 4, Align::Left),
        ("query", 33, Align::Left),
        ("rows", 5, Align::Right),
        ("bgps", 4, Align::Right),
        ("ucq", 3, Align::Right),
        ("sql", 3, Align::Right),
        ("hit", 3, Align::Right),
        ("frag", 4, Align::Right),
        ("wrk", 3, Align::Right),
        ("part", 4, Align::Right),
        ("repl", 4, Align::Right),
        ("fall", 4, Align::Right),
        ("prune", 5, Align::Right),
        ("reord", 5, Align::Right),
        ("semi", 4, Align::Right),
        ("est/act", 8, Align::Right),
        ("acc", 5, Align::Right),
        ("fetched", 7, Align::Right),
        ("µs", 6, Align::Right),
    ])
}

fn slow_layout() -> ColumnLayout {
    ColumnLayout::new(vec![
        ("id", 4, Align::Left),
        ("query", 60, Align::Left),
        ("wrk", 3, Align::Right),
        ("µs", 9, Align::Right),
    ])
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dash() -> Dashboard {
        Dashboard {
            panels: vec![
                QueryPanel {
                    id: 1,
                    name: "T01:monotonic-increase/temperature".into(),
                    bindings: 60,
                    ticks: 10,
                    alarms: 2,
                    tuples: 1200,
                    fleet_size: 5,
                    workers: 4,
                    window_fragments: 10,
                    stream_rows: 1100,
                    shards_pruned: 12,
                    semi_joins_pushed: 10,
                    pane_hits: 8,
                    pane_misses: 2,
                    tick_p50_us: 800,
                    tick_p95_us: 950,
                    tick_p99_us: 990,
                },
                QueryPanel {
                    id: 2,
                    name: "T05:overheat/temperature".into(),
                    bindings: 15,
                    ticks: 10,
                    alarms: 1,
                    tuples: 300,
                    fleet_size: 3,
                    workers: 1,
                    window_fragments: 0,
                    stream_rows: 0,
                    shards_pruned: 0,
                    semi_joins_pushed: 0,
                    pane_hits: 0,
                    pane_misses: 0,
                    tick_p50_us: 0,
                    tick_p95_us: 0,
                    tick_p99_us: 0,
                },
            ],
            static_queries: vec![StaticQueryPanel {
                id: 1,
                query: "SELECT ?s WHERE { ?s a sie:Sensor }".into(),
                rows: 60,
                bgps: 1,
                ucq_disjuncts: 5,
                sql_disjuncts: 8,
                parse_micros: 40,
                rewrite_micros: 120,
                unfold_micros: 300,
                exec_micros: 2000,
                cache_hits: 0,
                cache_misses: 1,
                fragments: 8,
                workers: 4,
                coordinator_fallbacks: 1,
                join_reorders: 1,
                semi_joins_pushed: 2,
                estimated_rows: 70,
                actual_rows: 60,
                fragment_rows: 95,
                partitioned_fragments: 6,
                replicated_fallbacks: 1,
                shards_pruned: 9,
                plan_cache_hits: 6,
                plan_cache_misses: 2,
            }],
            wcache_hits: 9,
            wcache_misses: 1,
            bgp_cache_hits: 3,
            bgp_cache_misses: 1,
            bgp_cache_invalidations: 1,
            plan_cache_hits: 6,
            plan_cache_misses: 2,
            static_p50_us: 2100,
            static_p95_us: 2400,
            static_p99_us: 2460,
            slow_queries: vec![SlowQuery {
                id: 1,
                query: "SELECT ?s WHERE { ?s a sie:Sensor }".into(),
                workers: 4,
                total_us: 2460,
            }],
            slow_threshold_us: 1000,
        }
    }

    #[test]
    fn totals() {
        let d = dash();
        assert_eq!(d.total_alarms(), 3);
        assert_eq!(d.total_tuples(), 1500);
        assert_eq!(d.wcache_hit_rate(), Some(0.9));
    }

    #[test]
    fn empty_dashboard_has_no_hit_rate() {
        assert_eq!(Dashboard::default().wcache_hit_rate(), None);
        assert_eq!(Dashboard::default().bgp_cache_hit_rate(), None);
        assert_eq!(Dashboard::default().plan_cache_hit_rate(), None);
    }

    #[test]
    fn streaming_totals_and_plan_cache_rate() {
        let d = dash();
        assert_eq!(d.total_window_fragments(), 10);
        assert_eq!(d.total_stream_rows(), 1100);
        assert_eq!(d.total_stream_shards_pruned(), 12);
        assert_eq!(d.plan_cache_hit_rate(), Some(0.75));
        let r = d.render();
        assert!(r.contains("plan cache 75% hit"), "{r}");
        assert!(r.contains("wfrag"), "{r}");
        assert!(r.contains("srows"), "{r}");
    }

    #[test]
    fn pane_hit_rate_and_render() {
        let d = dash();
        assert_eq!(d.pane_hit_rate(), Some(0.8));
        let r = d.render();
        assert!(r.contains("phit"), "{r}");
        assert!(r.contains("pmiss"), "{r}");
        assert_eq!(Dashboard::default().pane_hit_rate(), None);
    }

    #[test]
    fn bgp_cache_rate_and_render() {
        let d = dash();
        assert_eq!(d.bgp_cache_hit_rate(), Some(0.75));
        let r = d.render();
        assert!(r.contains("BGP cache 75% hit"), "{r}");
        assert!(r.contains("(1 inval)"), "{r}");
    }

    #[test]
    fn render_contains_all_panels() {
        let r = dash().render();
        assert!(r.contains("T01"));
        assert!(r.contains("T05"));
        assert!(r.contains("90% hit"));
    }

    #[test]
    fn render_contains_static_queries() {
        let r = dash().render();
        assert!(r.contains("static SPARQL"));
        assert!(r.contains("SELECT ?s WHERE"));
        assert!(r.contains("2460"), "total µs column: {r}");
        assert!(r.contains("70/60"), "est/act column: {r}");
        assert!(r.contains("reord"), "planner columns present: {r}");
    }

    #[test]
    fn render_contains_latency_columns_and_slow_log() {
        let r = dash().render();
        assert!(r.contains("p50µs"), "tick percentile header: {r}");
        assert!(r.contains("800"), "p50 value: {r}");
        assert!(r.contains("p50/p95/p99 2100/2400/2460 µs"), "{r}");
        assert!(r.contains("slow queries ─ ≥ 1000 µs"), "{r}");
        // An empty slow log renders no slow section at all.
        let mut quiet = dash();
        quiet.slow_queries.clear();
        assert!(!quiet.render().contains("slow queries"));
    }

    #[test]
    fn planner_totals_sum_across_queries() {
        let d = dash();
        assert_eq!(d.total_join_reorders(), 1);
        assert_eq!(d.total_semi_joins_pushed(), 2);
        assert_eq!(d.total_coordinator_fallbacks(), 1);
        assert_eq!(Dashboard::default().total_semi_joins_pushed(), 0);
    }

    #[test]
    fn partition_totals_sum_across_queries() {
        let d = dash();
        assert_eq!(d.total_partitioned_fragments(), 6);
        assert_eq!(d.total_replicated_fallbacks(), 1);
        assert_eq!(d.total_shards_pruned(), 9);
        assert_eq!(Dashboard::default().total_shards_pruned(), 0);
    }

    /// Regression: a fragment round returning no rows (actual = 0) used to
    /// make the estimated÷actual column divide by zero — the accuracy must
    /// clamp, and the rendered frame must never contain `inf`/`NaN`.
    #[test]
    fn estimate_accuracy_clamps_zero_denominators() {
        let mut panel = dash().static_queries[0].clone();
        assert!((panel.estimate_accuracy().unwrap() - 70.0 / 60.0).abs() < 1e-9);

        panel.actual_rows = 0;
        assert_eq!(
            panel.estimate_accuracy(),
            Some(70.0),
            "zero actual rows divide by a floor of 1, never by zero"
        );
        // A correctly-predicted empty result is accurate, not maximally
        // wrong (the pipeline floors live estimates to 1).
        panel.estimated_rows = 1;
        assert_eq!(panel.estimate_accuracy(), Some(1.0));
        // A wildly-over-estimated empty result clamps.
        panel.estimated_rows = 1_000_000;
        assert_eq!(
            panel.estimate_accuracy(),
            Some(StaticQueryPanel::ACCURACY_CAP)
        );
        panel.estimated_rows = 70;
        let mut d = dash();
        d.static_queries[0].actual_rows = 0;
        let r = d.render();
        assert!(!r.contains("inf"), "{r}");
        assert!(!r.contains("NaN"), "{r}");
        assert!(r.contains("70.0"), "floored-denominator accuracy: {r}");

        // No estimate at all (planner off): no accuracy, not 0/0 noise.
        panel.estimated_rows = 0;
        assert_eq!(panel.estimate_accuracy(), None);
        d.static_queries[0].estimated_rows = 0;
        d.static_queries[0].actual_rows = 0;
        assert!(!d.render().contains("NaN"));
    }

    #[test]
    fn render_contains_partition_columns() {
        let r = dash().render();
        assert!(r.contains("part"), "{r}");
        assert!(r.contains("prune"), "{r}");
        assert!(r.contains("acc"), "{r}");
    }

    #[test]
    fn static_panel_totals() {
        let p = &dash().static_queries[0];
        assert_eq!(p.total_micros(), 2460);
    }

    #[test]
    fn long_names_truncated() {
        assert_eq!(truncate("abcdef", 4), "abc…");
        assert_eq!(truncate("abc", 4), "abc");
    }

    /// Every layout keeps header titles and row cells inside the same
    /// column boundaries — the alignment guarantee the hand-counted
    /// `format!` strings never had.
    #[test]
    fn header_and_rows_share_column_boundaries() {
        for layout in [stream_layout(), static_layout(), slow_layout()] {
            let header: Vec<char> = layout.header().chars().collect();
            let cells = vec!["9".to_string(); layout.columns.len()];
            let row: Vec<char> = layout.row(&cells).chars().collect();
            let mut start = 2; // after "│ "
            for (title, width, align) in &layout.columns {
                let slot = |line: &[char]| -> String {
                    line.iter()
                        .chain(std::iter::repeat(&' '))
                        .skip(start)
                        .take(*width)
                        .collect()
                };
                let header_slot = slot(&header);
                let row_slot = slot(&row);
                match align {
                    Align::Left => {
                        assert!(header_slot.starts_with(title), "{title}: {header_slot:?}");
                        assert!(row_slot.starts_with('9'), "{title}: {row_slot:?}");
                    }
                    Align::Right => {
                        assert!(header_slot.ends_with(title), "{title}: {header_slot:?}");
                        assert!(row_slot.ends_with('9'), "{title}: {row_slot:?}");
                    }
                }
                start += width + 1;
            }
        }
    }

    /// A header title wider than its configured width widens the column
    /// instead of bleeding into its neighbor.
    #[test]
    fn narrow_columns_widen_to_their_title() {
        let layout = ColumnLayout::new(vec![("bindings", 2, Align::Right)]);
        assert_eq!(layout.columns[0].1, 8);
        assert_eq!(layout.header(), "│ bindings\n");
        assert_eq!(layout.row(&["7".into()]), "│        7\n");
    }
}
