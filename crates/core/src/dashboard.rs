//! Monitoring dashboards (the textual equivalent of paper Figure 3).
//!
//! "Dashboards show diagnostics results in real time, as well as statistics
//! on streaming answers, relevant turbines, and other information that is
//! typically required by Siemens Energy service engineers."

/// One query's monitoring panel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPanel {
    /// Platform query id.
    pub id: u64,
    /// Query name.
    pub name: String,
    /// Static WHERE bindings (monitored sensors).
    pub bindings: usize,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Cumulative alarms.
    pub alarms: u64,
    /// Cumulative stream tuples inspected.
    pub tuples: u64,
    /// Size of the low-level query fleet this query replaces.
    pub fleet_size: usize,
    /// Workers evaluating this query's ticks (1 = single-node).
    pub workers: usize,
    /// Cumulative window fragments shipped to the federation (0 =
    /// single-node, or every window came from the shared cache).
    pub window_fragments: u64,
    /// Cumulative stream rows the federation shipped back.
    pub stream_rows: u64,
    /// Cumulative stream shards skipped by key routing.
    pub shards_pruned: u64,
    /// Cumulative stream-key semi-joins pushed into window fragments.
    pub semi_joins_pushed: u64,
}

/// One executed static (SPARQL) query's panel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticQueryPanel {
    /// Platform-assigned id (its own sequence, separate from stream ids).
    pub id: u64,
    /// A one-line preview of the query text.
    pub query: String,
    /// Rows (or the 0/1 ASK verdict) returned.
    pub rows: usize,
    /// Basic graph patterns evaluated.
    pub bgps: usize,
    /// UCQ disjuncts after PerfectRef enrichment.
    pub ucq_disjuncts: usize,
    /// SQL disjuncts emitted by unfolding.
    pub sql_disjuncts: usize,
    /// Microseconds: parsing.
    pub parse_micros: u64,
    /// Microseconds: enrichment.
    pub rewrite_micros: u64,
    /// Microseconds: unfolding.
    pub unfold_micros: u64,
    /// Microseconds: SQL execution.
    pub exec_micros: u64,
    /// BGPs answered from the per-BGP cache.
    pub cache_hits: usize,
    /// BGPs that ran the full rewrite → unfold → execute pipeline.
    pub cache_misses: usize,
    /// Plan fragments shipped to ExaStream workers (0 = single-node).
    pub fragments: usize,
    /// Workers that executed this query (1 = single-node).
    pub workers: usize,
    /// Fragments answered on the coordinator instead of a worker — a
    /// nonzero count exposes a "distributed" run that silently fell back.
    pub coordinator_fallbacks: usize,
    /// Join batches the planner executed in a non-textual order.
    pub join_reorders: usize,
    /// Semi-join value lists pushed into BGP executions.
    pub semi_joins_pushed: usize,
    /// Planner-estimated BGP cardinalities, summed (0 = planner off).
    pub estimated_rows: u64,
    /// Actual BGP solution rows, summed — against
    /// [`Self::estimated_rows`], judges the cardinality model.
    pub actual_rows: u64,
    /// Rows returned by SQL execution before the residual merge (semi-join
    /// pushdown shrinks this).
    pub fragment_rows: usize,
    /// Fragments executed sharded over a hash-partitioned table.
    pub partitioned_fragments: usize,
    /// Fragments answered by a single worker's replicas while the pool had
    /// partitioned tables — the middle rung of the sharded → replicated →
    /// coordinator ladder.
    pub replicated_fallbacks: usize,
    /// Scatter executions skipped by partition-key routing.
    pub shards_pruned: usize,
    /// Fragment executions answered from a worker's prepared-plan cache.
    pub plan_cache_hits: u64,
    /// Fragment executions that parsed their statement.
    pub plan_cache_misses: u64,
}

impl StaticQueryPanel {
    /// End-to-end pipeline time in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.parse_micros + self.rewrite_micros + self.unfold_micros + self.exec_micros
    }

    /// The planner's `estimated ÷ actual` cardinality accuracy, clamped to
    /// a renderable range. `None` when there is no estimate (planner off —
    /// the pipeline floors live estimates to ≥ 1 per BGP, so 0 is
    /// unambiguous); when a round returns no rows the denominator is
    /// treated as 1 — a correctly-predicted empty result renders ≈ 1.0,
    /// an over-estimate renders as its magnitude — and the whole ratio
    /// caps at [`Self::ACCURACY_CAP`], never `inf`/`NaN`.
    pub fn estimate_accuracy(&self) -> Option<f64> {
        if self.estimated_rows == 0 {
            return None;
        }
        let denominator = self.actual_rows.max(1) as f64;
        Some((self.estimated_rows as f64 / denominator).min(Self::ACCURACY_CAP))
    }

    /// Upper clamp for [`Self::estimate_accuracy`].
    pub const ACCURACY_CAP: f64 = 999.0;
}

/// A point-in-time monitoring snapshot.
#[derive(Clone, Debug, Default)]
pub struct Dashboard {
    /// Per-query panels, in registration order.
    pub panels: Vec<QueryPanel>,
    /// Recently executed static SPARQL queries, oldest first.
    pub static_queries: Vec<StaticQueryPanel>,
    /// Shared window-cache hits.
    pub wcache_hits: u64,
    /// Shared window-cache misses.
    pub wcache_misses: u64,
    /// Per-BGP solution-set cache hits (static pipeline).
    pub bgp_cache_hits: u64,
    /// Per-BGP solution-set cache misses.
    pub bgp_cache_misses: u64,
    /// Times the per-BGP cache was invalidated by a relational write.
    pub bgp_cache_invalidations: u64,
    /// Worker plan-cache hits summed over the live federation pools
    /// (counters of dropped pools are gone with them).
    pub plan_cache_hits: u64,
    /// Worker plan-cache misses summed over the live federation pools.
    pub plan_cache_misses: u64,
}

impl Dashboard {
    /// Total alarms across all panels.
    pub fn total_alarms(&self) -> u64 {
        self.panels.iter().map(|p| p.alarms).sum()
    }

    /// Total tuples inspected across all panels.
    pub fn total_tuples(&self) -> u64 {
        self.panels.iter().map(|p| p.tuples).sum()
    }

    /// Window-cache hit rate in `[0, 1]` (`None` before any access).
    pub fn wcache_hit_rate(&self) -> Option<f64> {
        let total = self.wcache_hits + self.wcache_misses;
        if total == 0 {
            None
        } else {
            Some(self.wcache_hits as f64 / total as f64)
        }
    }

    /// Total join-batch reorders across the remembered static queries.
    pub fn total_join_reorders(&self) -> usize {
        self.static_queries.iter().map(|q| q.join_reorders).sum()
    }

    /// Total semi-join pushdowns across the remembered static queries.
    pub fn total_semi_joins_pushed(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.semi_joins_pushed)
            .sum()
    }

    /// Total coordinator fallbacks across the remembered static queries —
    /// 0 proves every "distributed" answer genuinely shipped to workers.
    pub fn total_coordinator_fallbacks(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.coordinator_fallbacks)
            .sum()
    }

    /// Total sharded fragment executions across the remembered static
    /// queries — 0 on a partitioned deployment means the advisor's keys
    /// never matched a scan.
    pub fn total_partitioned_fragments(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.partitioned_fragments)
            .sum()
    }

    /// Total single-replica fallbacks across the remembered static queries
    /// (partitioned pools only).
    pub fn total_replicated_fallbacks(&self) -> usize {
        self.static_queries
            .iter()
            .map(|q| q.replicated_fallbacks)
            .sum()
    }

    /// Total scatter executions skipped by partition-key routing.
    pub fn total_shards_pruned(&self) -> usize {
        self.static_queries.iter().map(|q| q.shards_pruned).sum()
    }

    /// Per-BGP cache hit rate in `[0, 1]` (`None` before any lookup).
    pub fn bgp_cache_hit_rate(&self) -> Option<f64> {
        let total = self.bgp_cache_hits + self.bgp_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.bgp_cache_hits as f64 / total as f64)
        }
    }

    /// Worker plan-cache hit rate in `[0, 1]` (`None` before any round).
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.plan_cache_hits as f64 / total as f64)
        }
    }

    /// Total window fragments shipped across the continuous-query panels.
    pub fn total_window_fragments(&self) -> u64 {
        self.panels.iter().map(|p| p.window_fragments).sum()
    }

    /// Total stream rows the federations shipped for window fragments.
    pub fn total_stream_rows(&self) -> u64 {
        self.panels.iter().map(|p| p.stream_rows).sum()
    }

    /// Total stream shards skipped by key routing across the panels.
    pub fn total_stream_shards_pruned(&self) -> u64 {
        self.panels.iter().map(|p| p.shards_pruned).sum()
    }

    /// Renders an ASCII dashboard frame.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "┌─ OPTIQUE monitoring ─ {} queries ─ {} alarms ─ wCache {}\n",
            self.panels.len(),
            self.total_alarms(),
            match self.wcache_hit_rate() {
                Some(rate) => format!("{:.0}% hit", rate * 100.0),
                None => "idle".to_string(),
            }
        ));
        out.push_str(
            "│ id   name                                bindings  ticks  alarms    tuples  fleet  wrk  wfrag   srows  prune  semi\n",
        );
        for p in &self.panels {
            out.push_str(&format!(
                "│ {:<4} {:<36} {:>8} {:>6} {:>7} {:>9} {:>6} {:>4} {:>6} {:>7} {:>6} {:>5}\n",
                p.id,
                truncate(&p.name, 36),
                p.bindings,
                p.ticks,
                p.alarms,
                p.tuples,
                p.fleet_size,
                p.workers,
                p.window_fragments,
                p.stream_rows,
                p.shards_pruned,
                p.semi_joins_pushed
            ));
        }
        if !self.static_queries.is_empty() {
            out.push_str(&format!(
                "├─ static SPARQL ─ {} queries ─ BGP cache {} ─ plan cache {}\n",
                self.static_queries.len(),
                match self.bgp_cache_hit_rate() {
                    Some(rate) => format!(
                        "{:.0}% hit ({} inval)",
                        rate * 100.0,
                        self.bgp_cache_invalidations
                    ),
                    None => "idle".to_string(),
                },
                match self.plan_cache_hit_rate() {
                    Some(rate) => format!("{:.0}% hit", rate * 100.0),
                    None => "idle".to_string(),
                }
            ));
            out.push_str(
                "│ id   query                              rows  bgps  ucq  sql  hit  frag  wrk  part  repl  fall  prune  reord  semi  est/act   acc  fetched     µs\n",
            );
            for q in &self.static_queries {
                out.push_str(&format!(
                    "│ {:<4} {:<33} {:>5} {:>5} {:>4} {:>4} {:>4} {:>5} {:>4} {:>5} {:>5} {:>5} {:>6} {:>6} {:>5} {:>8} {:>5} {:>8} {:>6}\n",
                    q.id,
                    truncate(&q.query, 33),
                    q.rows,
                    q.bgps,
                    q.ucq_disjuncts,
                    q.sql_disjuncts,
                    q.cache_hits,
                    q.fragments,
                    q.workers,
                    q.partitioned_fragments,
                    q.replicated_fallbacks,
                    q.coordinator_fallbacks,
                    q.shards_pruned,
                    q.join_reorders,
                    q.semi_joins_pushed,
                    format!("{}/{}", q.estimated_rows, q.actual_rows),
                    match q.estimate_accuracy() {
                        Some(acc) => format!("{acc:.1}"),
                        None => "—".to_string(),
                    },
                    q.fragment_rows,
                    q.total_micros()
                ));
            }
        }
        out.push_str("└─\n");
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dash() -> Dashboard {
        Dashboard {
            panels: vec![
                QueryPanel {
                    id: 1,
                    name: "T01:monotonic-increase/temperature".into(),
                    bindings: 60,
                    ticks: 10,
                    alarms: 2,
                    tuples: 1200,
                    fleet_size: 5,
                    workers: 4,
                    window_fragments: 10,
                    stream_rows: 1100,
                    shards_pruned: 12,
                    semi_joins_pushed: 10,
                },
                QueryPanel {
                    id: 2,
                    name: "T05:overheat/temperature".into(),
                    bindings: 15,
                    ticks: 10,
                    alarms: 1,
                    tuples: 300,
                    fleet_size: 3,
                    workers: 1,
                    window_fragments: 0,
                    stream_rows: 0,
                    shards_pruned: 0,
                    semi_joins_pushed: 0,
                },
            ],
            static_queries: vec![StaticQueryPanel {
                id: 1,
                query: "SELECT ?s WHERE { ?s a sie:Sensor }".into(),
                rows: 60,
                bgps: 1,
                ucq_disjuncts: 5,
                sql_disjuncts: 8,
                parse_micros: 40,
                rewrite_micros: 120,
                unfold_micros: 300,
                exec_micros: 2000,
                cache_hits: 0,
                cache_misses: 1,
                fragments: 8,
                workers: 4,
                coordinator_fallbacks: 1,
                join_reorders: 1,
                semi_joins_pushed: 2,
                estimated_rows: 70,
                actual_rows: 60,
                fragment_rows: 95,
                partitioned_fragments: 6,
                replicated_fallbacks: 1,
                shards_pruned: 9,
                plan_cache_hits: 6,
                plan_cache_misses: 2,
            }],
            wcache_hits: 9,
            wcache_misses: 1,
            bgp_cache_hits: 3,
            bgp_cache_misses: 1,
            bgp_cache_invalidations: 1,
            plan_cache_hits: 6,
            plan_cache_misses: 2,
        }
    }

    #[test]
    fn totals() {
        let d = dash();
        assert_eq!(d.total_alarms(), 3);
        assert_eq!(d.total_tuples(), 1500);
        assert_eq!(d.wcache_hit_rate(), Some(0.9));
    }

    #[test]
    fn empty_dashboard_has_no_hit_rate() {
        assert_eq!(Dashboard::default().wcache_hit_rate(), None);
        assert_eq!(Dashboard::default().bgp_cache_hit_rate(), None);
        assert_eq!(Dashboard::default().plan_cache_hit_rate(), None);
    }

    #[test]
    fn streaming_totals_and_plan_cache_rate() {
        let d = dash();
        assert_eq!(d.total_window_fragments(), 10);
        assert_eq!(d.total_stream_rows(), 1100);
        assert_eq!(d.total_stream_shards_pruned(), 12);
        assert_eq!(d.plan_cache_hit_rate(), Some(0.75));
        let r = d.render();
        assert!(r.contains("plan cache 75% hit"), "{r}");
        assert!(r.contains("wfrag"), "{r}");
        assert!(r.contains("srows"), "{r}");
    }

    #[test]
    fn bgp_cache_rate_and_render() {
        let d = dash();
        assert_eq!(d.bgp_cache_hit_rate(), Some(0.75));
        let r = d.render();
        assert!(r.contains("BGP cache 75% hit"), "{r}");
        assert!(r.contains("(1 inval)"), "{r}");
    }

    #[test]
    fn render_contains_all_panels() {
        let r = dash().render();
        assert!(r.contains("T01"));
        assert!(r.contains("T05"));
        assert!(r.contains("90% hit"));
    }

    #[test]
    fn render_contains_static_queries() {
        let r = dash().render();
        assert!(r.contains("static SPARQL"));
        assert!(r.contains("SELECT ?s WHERE"));
        assert!(r.contains("2460"), "total µs column: {r}");
        assert!(r.contains("70/60"), "est/act column: {r}");
        assert!(r.contains("reord"), "planner columns present: {r}");
    }

    #[test]
    fn planner_totals_sum_across_queries() {
        let d = dash();
        assert_eq!(d.total_join_reorders(), 1);
        assert_eq!(d.total_semi_joins_pushed(), 2);
        assert_eq!(d.total_coordinator_fallbacks(), 1);
        assert_eq!(Dashboard::default().total_semi_joins_pushed(), 0);
    }

    #[test]
    fn partition_totals_sum_across_queries() {
        let d = dash();
        assert_eq!(d.total_partitioned_fragments(), 6);
        assert_eq!(d.total_replicated_fallbacks(), 1);
        assert_eq!(d.total_shards_pruned(), 9);
        assert_eq!(Dashboard::default().total_shards_pruned(), 0);
    }

    /// Regression: a fragment round returning no rows (actual = 0) used to
    /// make the estimated÷actual column divide by zero — the accuracy must
    /// clamp, and the rendered frame must never contain `inf`/`NaN`.
    #[test]
    fn estimate_accuracy_clamps_zero_denominators() {
        let mut panel = dash().static_queries[0].clone();
        assert!((panel.estimate_accuracy().unwrap() - 70.0 / 60.0).abs() < 1e-9);

        panel.actual_rows = 0;
        assert_eq!(
            panel.estimate_accuracy(),
            Some(70.0),
            "zero actual rows divide by a floor of 1, never by zero"
        );
        // A correctly-predicted empty result is accurate, not maximally
        // wrong (the pipeline floors live estimates to 1).
        panel.estimated_rows = 1;
        assert_eq!(panel.estimate_accuracy(), Some(1.0));
        // A wildly-over-estimated empty result clamps.
        panel.estimated_rows = 1_000_000;
        assert_eq!(
            panel.estimate_accuracy(),
            Some(StaticQueryPanel::ACCURACY_CAP)
        );
        panel.estimated_rows = 70;
        let mut d = dash();
        d.static_queries[0].actual_rows = 0;
        let r = d.render();
        assert!(!r.contains("inf"), "{r}");
        assert!(!r.contains("NaN"), "{r}");
        assert!(r.contains("70.0"), "floored-denominator accuracy: {r}");

        // No estimate at all (planner off): no accuracy, not 0/0 noise.
        panel.estimated_rows = 0;
        assert_eq!(panel.estimate_accuracy(), None);
        d.static_queries[0].estimated_rows = 0;
        d.static_queries[0].actual_rows = 0;
        assert!(!d.render().contains("NaN"));
    }

    #[test]
    fn render_contains_partition_columns() {
        let r = dash().render();
        assert!(r.contains("part"), "{r}");
        assert!(r.contains("prune"), "{r}");
        assert!(r.contains("acc"), "{r}");
    }

    #[test]
    fn static_panel_totals() {
        let p = &dash().static_queries[0];
        assert_eq!(p.total_micros(), 2460);
    }

    #[test]
    fn long_names_truncated() {
        assert_eq!(truncate("abcdef", 4), "abc…");
        assert_eq!(truncate("abc", 4), "abc");
    }
}
