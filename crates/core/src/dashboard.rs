//! Monitoring dashboards (the textual equivalent of paper Figure 3).
//!
//! "Dashboards show diagnostics results in real time, as well as statistics
//! on streaming answers, relevant turbines, and other information that is
//! typically required by Siemens Energy service engineers."

/// One query's monitoring panel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPanel {
    /// Platform query id.
    pub id: u64,
    /// Query name.
    pub name: String,
    /// Static WHERE bindings (monitored sensors).
    pub bindings: usize,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Cumulative alarms.
    pub alarms: u64,
    /// Cumulative stream tuples inspected.
    pub tuples: u64,
    /// Size of the low-level query fleet this query replaces.
    pub fleet_size: usize,
}

/// A point-in-time monitoring snapshot.
#[derive(Clone, Debug, Default)]
pub struct Dashboard {
    /// Per-query panels, in registration order.
    pub panels: Vec<QueryPanel>,
    /// Shared window-cache hits.
    pub wcache_hits: u64,
    /// Shared window-cache misses.
    pub wcache_misses: u64,
}

impl Dashboard {
    /// Total alarms across all panels.
    pub fn total_alarms(&self) -> u64 {
        self.panels.iter().map(|p| p.alarms).sum()
    }

    /// Total tuples inspected across all panels.
    pub fn total_tuples(&self) -> u64 {
        self.panels.iter().map(|p| p.tuples).sum()
    }

    /// Window-cache hit rate in `[0, 1]` (`None` before any access).
    pub fn wcache_hit_rate(&self) -> Option<f64> {
        let total = self.wcache_hits + self.wcache_misses;
        if total == 0 {
            None
        } else {
            Some(self.wcache_hits as f64 / total as f64)
        }
    }

    /// Renders an ASCII dashboard frame.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "┌─ OPTIQUE monitoring ─ {} queries ─ {} alarms ─ wCache {}\n",
            self.panels.len(),
            self.total_alarms(),
            match self.wcache_hit_rate() {
                Some(rate) => format!("{:.0}% hit", rate * 100.0),
                None => "idle".to_string(),
            }
        ));
        out.push_str("│ id   name                                bindings  ticks  alarms    tuples  fleet\n");
        for p in &self.panels {
            out.push_str(&format!(
                "│ {:<4} {:<36} {:>8} {:>6} {:>7} {:>9} {:>6}\n",
                p.id,
                truncate(&p.name, 36),
                p.bindings,
                p.ticks,
                p.alarms,
                p.tuples,
                p.fleet_size
            ));
        }
        out.push_str("└─\n");
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dash() -> Dashboard {
        Dashboard {
            panels: vec![
                QueryPanel {
                    id: 1,
                    name: "T01:monotonic-increase/temperature".into(),
                    bindings: 60,
                    ticks: 10,
                    alarms: 2,
                    tuples: 1200,
                    fleet_size: 5,
                },
                QueryPanel {
                    id: 2,
                    name: "T05:overheat/temperature".into(),
                    bindings: 15,
                    ticks: 10,
                    alarms: 1,
                    tuples: 300,
                    fleet_size: 3,
                },
            ],
            wcache_hits: 9,
            wcache_misses: 1,
        }
    }

    #[test]
    fn totals() {
        let d = dash();
        assert_eq!(d.total_alarms(), 3);
        assert_eq!(d.total_tuples(), 1500);
        assert_eq!(d.wcache_hit_rate(), Some(0.9));
    }

    #[test]
    fn empty_dashboard_has_no_hit_rate() {
        assert_eq!(Dashboard::default().wcache_hit_rate(), None);
    }

    #[test]
    fn render_contains_all_panels() {
        let r = dash().render();
        assert!(r.contains("T01"));
        assert!(r.contains("T05"));
        assert!(r.contains("90% hit"));
    }

    #[test]
    fn long_names_truncated() {
        assert_eq!(truncate("abcdef", 4), "abc…");
        assert_eq!(truncate("abc", 4), "abc");
    }
}
