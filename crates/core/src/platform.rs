//! The OPTIQUE platform: deployment + continuous-query lifecycle.
//!
//! # Concurrency model
//!
//! The platform is a shared `&self` service. All query-relevant mutable
//! state — catalog, statistics, topology, planner knobs, BGP-cache
//! generation — lives in **one** [`PlatformSnapshot`] behind a single
//! `RwLock<Arc<…>>`. Queries capture the current snapshot with one atomic
//! read at the start and never touch shared state again (MVCC-style), so a
//! request cannot mix pre-write and post-write state across its
//! parse→rewrite→unfold→exec pipeline. Writers
//! ([`insert_static`](OptiquePlatform::insert_static)) build the next
//! snapshot, invalidate the BGP cache and drop the federation pools while
//! still holding the write lock, then publish everything with one swap.
//!
//! # Incremental writes
//!
//! Under the default [`WritePolicy::NoveltyOverlay`], `insert_static` does
//! **not** rebuild the catalog: appended rows land in an immutable
//! per-table novelty log ([`optique_relational::NoveltyOverlay`]) swapped
//! in alongside the *same* base catalog `Arc` — so federation pools stay
//! valid, statistics take an O(1) row-count delta, and the BGP cache keeps
//! every entry whose tables were untouched (per-table write versions,
//! [`optique_sparql::TableVersions`]). Scans merge base + overlay; plan
//! fragments pin the overlay's epoch on the wire so every worker in a
//! round resolves the same overlay. A merge
//! ([`merge_now`](OptiquePlatform::merge_now), or automatic past
//! [`set_merge_threshold`](OptiquePlatform::set_merge_threshold)) folds
//! the log into the base tables, re-analyzes only the touched tables'
//! statistics, and drops the pools so the next distributed query
//! re-partitions over the folded shards. [`WritePolicy::StopTheWorld`]
//! restores the old rebuild-everything write path exactly.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use optique_bootstrap::{bootstrap_direct, BootstrapSettings, RelationalSchema};
use optique_mapping::MappingCatalog;
use optique_ontology::Ontology;
use optique_rdf::Namespaces;
use optique_relational::{Database, DictSnapshot, NoveltyOverlay, StatsCatalog, TermDict, Value};
use optique_rewrite::RewriteSettings;
use optique_siemens::{DiagnosticTask, SiemensDeployment};
use optique_sparql::{
    parse_sparql, BgpCache, GroupPattern, PatternElement, PipelineStats, PlannerSettings,
    Projection, Query, SelectItem, SelectQuery, SolutionModifier, SparqlResults, StaticPipeline,
    TableVersions,
};
use optique_starql::{
    parse_starql, translate, ContinuousQuery, StreamToRdf, TickOutput, TranslationContext,
};
use optique_stream::WCache;
use optique_telemetry::{render_tree, MetricsRegistry, MetricsSnapshot, Tracer};
use parking_lot::{Mutex, RwLock};

use crate::dashboard::{Dashboard, QueryPanel, SlowQuery, StaticQueryPanel};
use crate::federation::{Federation, FederationTopology};

/// A registered STARQL query with its accumulated monitoring counters.
pub struct RegisteredStarQl {
    /// Platform-assigned id.
    pub id: u64,
    /// Human-readable name (output-stream name or task id).
    pub name: String,
    /// The compiled continuous query.
    pub query: ContinuousQuery,
    /// Worker count whose federation pool evaluates this query's ticks
    /// (`None` = single-node, the reference path).
    pub workers: Option<usize>,
    /// Cumulative alarms raised.
    pub alarms: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Cumulative tuples inspected.
    pub tuples: u64,
    /// Cumulative window fragments shipped to the federation.
    pub window_fragments: u64,
    /// Cumulative stream rows the federation shipped back (window-cache
    /// hits ship nothing).
    pub stream_rows: u64,
    /// Cumulative stream shards skipped by key routing.
    pub shards_pruned: u64,
    /// Cumulative stream-key semi-joins pushed into window fragments.
    pub semi_joins_pushed: u64,
    /// Cumulative worker pane-store probes answered from warm incremental
    /// state (pane-combinable distributed queries only).
    pub pane_hits: u64,
    /// Cumulative worker pane-store probes folded from scratch.
    pub pane_misses: u64,
    /// Highest window id already driven by
    /// [`append_stream`](OptiquePlatform::append_stream) — initialized to
    /// the last window the stream's rows had closed at registration, so an
    /// append only ticks windows it *newly* closes.
    last_auto_window: Option<u64>,
}

/// How `insert_static` invalidates the per-BGP cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheInvalidation {
    /// Evict only the entries whose unfolded SQL read the written table
    /// (entries with unknown provenance always go) — the default.
    #[default]
    Dependent,
    /// Clear the whole cache on every write — the conservative fallback.
    FullClear,
}

/// How [`insert_static`](OptiquePlatform::insert_static) publishes rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WritePolicy {
    /// Append to the in-memory novelty overlay: the base catalog `Arc` is
    /// untouched, so federation pools survive, stats take a row-count
    /// delta, and versioned BGP-cache entries over other tables stay warm.
    /// A merge (explicit or threshold-driven) folds the overlay into the
    /// base — the default.
    #[default]
    NoveltyOverlay,
    /// Rebuild the written table (clone + append), re-analyze its stats,
    /// and drop the pools inside the critical section — the original
    /// write path, kept for comparison and as the conservative fallback.
    StopTheWorld,
}

/// The conciseness report behind experiment E3: one STARQL text versus the
/// fleet of low-level queries it replaces.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Query name.
    pub name: String,
    /// Characters of STARQL text.
    pub starql_chars: usize,
    /// Number of generated low-level queries.
    pub fleet_queries: usize,
    /// Total characters of generated SQL.
    pub fleet_chars: usize,
}

/// An immutable, internally consistent view of everything a static or
/// streaming query reads: captured with one atomic load at request start
/// and pinned for the request's whole pipeline. Writers never mutate a
/// published snapshot — they install a complete replacement, so in-flight
/// readers keep a coherent (if momentarily stale) world.
#[derive(Clone)]
pub struct PlatformSnapshot {
    /// The **base** data sources (static tables + stream tables) — overlay
    /// rows excluded. Federation pools shard this catalog and validate by
    /// pointer identity against it; overlay appends keep the `Arc`, merges
    /// swap it.
    pub db: Arc<Database>,
    /// The catalog static queries read: [`Self::db`] with
    /// [`Self::novelty`] installed, so scans merge base + overlay rows.
    /// The same `Arc` as [`Self::db`] while the overlay is empty.
    pub view: Arc<Database>,
    /// Rows appended since the last merge, immutably versioned by epoch
    /// (empty under [`WritePolicy::StopTheWorld`]).
    pub novelty: Arc<NoveltyOverlay>,
    /// Per-table write versions of this snapshot: bumped by every insert,
    /// *unchanged* by merges (a merge changes no table's contents), so
    /// versioned BGP-cache entries survive exactly as long as their data
    /// is current.
    pub versions: Arc<TableVersions>,
    /// Per-table row/distinct statistics over exactly [`Self::db`] —
    /// refreshed in the same swap that installs the catalog, so a
    /// snapshot's cardinalities always describe its rows (no db/stats
    /// tear).
    pub stats: Arc<StatsCatalog>,
    /// Pool layout distributed queries build under this snapshot.
    pub topology: FederationTopology,
    /// Join-order / semi-join planner knobs in force for this snapshot.
    pub planner: PlannerSettings,
    /// BGP-cache generation this snapshot pairs with: readers pass it to
    /// [`BgpCache::lookup_any_at`], so once a write bumps the generation a
    /// reader still holding a pre-write snapshot misses instead of pairing
    /// a fresh catalog with a stale cached solution set (or vice versa).
    pub cache_generation: u64,
    /// Watermark of the global term dictionary at capture. The dictionary
    /// is append-only, so every id a batch produced under this snapshot can
    /// carry resolves stably for the snapshot's lifetime; writers that
    /// intern new terms only ever append past the watermark.
    pub dict: DictSnapshot,
}

/// The deployed integration platform.
pub struct OptiquePlatform {
    /// The query-relevant mutable state, swapped wholesale as one
    /// [`PlatformSnapshot`]: readers take one `read` to pin a consistent
    /// view; writers build the successor and publish it atomically.
    state: RwLock<Arc<PlatformSnapshot>>,
    /// The deployment TBox.
    pub ontology: Ontology,
    /// Prefixes for query text.
    pub namespaces: Namespaces,
    /// The mapping catalog.
    pub mappings: MappingCatalog,
    /// The stream-side mapping.
    pub stream_to_rdf: StreamToRdf,
    wcache: Arc<WCache>,
    queries: Mutex<BTreeMap<u64, RegisteredStarQl>>,
    next_id: std::sync::atomic::AtomicU64,
    static_log: Mutex<VecDeque<StaticQueryPanel>>,
    static_next_id: std::sync::atomic::AtomicU64,
    /// Per-BGP solution-set cache shared by every static query (single-node
    /// and distributed); invalidated inside the write critical section.
    static_cache: BgpCache,
    /// Static-query worker pools, one per requested `(worker count,
    /// topology)`, dropped inside the write critical section (workers
    /// snapshot the catalog they were built over — and a write may change
    /// the advisor's partition keys). Lookups additionally validate the
    /// cached pool's catalog against the request snapshot by pointer
    /// identity, so a pool raced into the map over a superseded catalog is
    /// never served.
    federations: Mutex<HashMap<(usize, FederationTopology), Arc<Federation>>>,
    /// How relational writes invalidate the per-BGP cache
    /// ([`CacheInvalidation::Dependent`] by default).
    invalidation: RwLock<CacheInvalidation>,
    /// Fired once (and cleared) right after `insert_static`'s critical
    /// section — the seam where the pre-fix write path had already
    /// published the new catalog but not yet invalidated the BGP cache or
    /// dropped the pools. Interleaving regression tests hang their
    /// assertions here.
    #[cfg(test)]
    #[allow(clippy::type_complexity)]
    write_probe: Mutex<Option<Box<dyn FnOnce(&OptiquePlatform) + Send>>>,
    /// Fired once (and cleared) right after [`merge_now`]'s critical
    /// section — the seam where the folded catalog has just been published.
    /// The merge-race regression tests hang their assertions here.
    #[cfg(test)]
    #[allow(clippy::type_complexity)]
    merge_probe: Mutex<Option<Box<dyn FnOnce(&OptiquePlatform) + Send>>>,
    /// How `insert_static` publishes rows
    /// ([`WritePolicy::NoveltyOverlay`] by default).
    write_policy: RwLock<WritePolicy>,
    /// Overlay depth (rows) at which an insert triggers an automatic merge.
    merge_threshold: std::sync::atomic::AtomicUsize,
    /// Platform-wide counters and latency histograms, exported by
    /// [`metrics_snapshot`](Self::metrics_snapshot). Static queries feed
    /// `static.query_us`; every registered continuous query feeds
    /// `tick.q<id>.us`.
    registry: Arc<MetricsRegistry>,
    /// Whether static queries record span trees (on by default; the
    /// tracing-overhead bench flips it off for its untraced baseline).
    tracing: std::sync::atomic::AtomicBool,
    /// End-to-end latency at which a static query lands on the slow-query
    /// log, in microseconds.
    slow_threshold_us: std::sync::atomic::AtomicU64,
    /// The most recent slow static queries, oldest first (capped at
    /// [`SLOW_LOG_CAP`]; a deque so eviction pops the front in O(1)).
    slow_log: Mutex<VecDeque<SlowQuery>>,
}

/// How many executed static queries the dashboard remembers.
const STATIC_LOG_CAP: usize = 64;

/// How many slow queries the log remembers.
const SLOW_LOG_CAP: usize = 32;

/// Default slow-query threshold: 100 ms.
const DEFAULT_SLOW_THRESHOLD_US: u64 = 100_000;

/// Default overlay depth that triggers an automatic merge.
const DEFAULT_MERGE_THRESHOLD: usize = 4096;

/// Registry counters accumulating plan-cache hits/misses of federation
/// pools retired by catalog writes and distributed registrations.
const PLAN_CACHE_RETIRED_HITS: &str = "plan_cache.retired_hits";
const PLAN_CACHE_RETIRED_MISSES: &str = "plan_cache.retired_misses";

/// Registry counters accumulating worker pane-store probe outcomes across
/// every registered query (pane-combinable distributed ticks only).
const PANE_HITS: &str = "pane.hits";
const PANE_MISSES: &str = "pane.misses";

impl OptiquePlatform {
    /// Deploys over explicit assets.
    pub fn deploy(
        db: Database,
        ontology: Ontology,
        namespaces: Namespaces,
        mappings: MappingCatalog,
        stream_to_rdf: StreamToRdf,
    ) -> Self {
        let static_cache = BgpCache::new();
        let stats = Arc::new(StatsCatalog::analyze(&db));
        let db = Arc::new(db);
        let state = RwLock::new(Arc::new(PlatformSnapshot {
            view: Arc::clone(&db),
            db,
            novelty: NoveltyOverlay::empty(),
            versions: Arc::new(TableVersions::new()),
            stats,
            topology: FederationTopology::default(),
            planner: PlannerSettings::default(),
            cache_generation: static_cache.generation(),
            dict: TermDict::global().snapshot(),
        }));
        OptiquePlatform {
            state,
            ontology,
            namespaces,
            mappings,
            stream_to_rdf,
            wcache: Arc::new(WCache::new()),
            queries: Mutex::new(BTreeMap::new()),
            next_id: std::sync::atomic::AtomicU64::new(1),
            static_log: Mutex::new(VecDeque::new()),
            static_next_id: std::sync::atomic::AtomicU64::new(1),
            static_cache,
            federations: Mutex::new(HashMap::new()),
            invalidation: RwLock::new(CacheInvalidation::default()),
            #[cfg(test)]
            write_probe: Mutex::new(None),
            #[cfg(test)]
            merge_probe: Mutex::new(None),
            write_policy: RwLock::new(WritePolicy::default()),
            merge_threshold: std::sync::atomic::AtomicUsize::new(DEFAULT_MERGE_THRESHOLD),
            registry: Arc::new(MetricsRegistry::new()),
            tracing: std::sync::atomic::AtomicBool::new(true),
            slow_threshold_us: std::sync::atomic::AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            slow_log: Mutex::new(VecDeque::new()),
        }
    }

    /// Pins the current [`PlatformSnapshot`]: one atomic load, after which
    /// the caller's view of catalog, statistics, topology, planner and
    /// cache generation is immutable for as long as the `Arc` is held.
    pub fn snapshot(&self) -> Arc<PlatformSnapshot> {
        Arc::clone(&self.state.read())
    }

    /// The current relational snapshot (static tables + stream tables),
    /// **including** any unmerged novelty-overlay rows: scans over the
    /// returned catalog merge base + overlay, so readers see every
    /// committed insert regardless of the write policy.
    pub fn db(&self) -> Arc<Database> {
        Arc::clone(&self.state.read().view)
    }

    /// Deploys straight from a generated Siemens scenario.
    pub fn from_siemens(deployment: SiemensDeployment) -> Self {
        OptiquePlatform::deploy(
            deployment.db,
            deployment.ontology,
            deployment.namespaces,
            deployment.mappings,
            deployment.stream_to_rdf,
        )
    }

    /// Deploys by **bootstrapping** ontology and mappings from a relational
    /// schema (demo scenario S3), then merging any extra curated assets.
    pub fn deploy_with_bootstrap(
        db: Database,
        schema: &RelationalSchema,
        settings: &BootstrapSettings,
        namespaces: Namespaces,
        stream_to_rdf: StreamToRdf,
        extra_ontology: Option<&Ontology>,
        extra_mappings: Option<MappingCatalog>,
    ) -> Result<Self, String> {
        let out = bootstrap_direct(schema, settings)?;
        let mut ontology = out.ontology;
        if let Some(extra) = extra_ontology {
            for ax in extra.axioms() {
                ontology.add_axiom(ax.clone());
            }
            for p in extra.data_properties() {
                ontology.declare_data_property(p.clone());
            }
        }
        let mut mappings = out.mappings;
        if let Some(extra) = extra_mappings {
            mappings.merge(extra)?;
        }
        Ok(OptiquePlatform::deploy(
            db,
            ontology,
            namespaces,
            mappings,
            stream_to_rdf,
        ))
    }

    /// Parses, translates (enrich + unfold) and registers a STARQL query.
    /// Ticks evaluate single-node; the static WHERE bindings are computed
    /// through the full static pipeline (per-BGP cache, planner).
    pub fn register_starql(&self, text: &str) -> Result<u64, String> {
        self.register_named(None, text, None)
    }

    /// [`register_starql`](Self::register_starql), with ticks evaluated
    /// **distributed over `workers` ExaStream workers** — mirroring
    /// [`query_static_distributed`](Self::query_static_distributed). The
    /// query's stream hash-partitions across the pool on its stream key,
    /// so every tick's window compiles to a plan fragment that *scatters*:
    /// each worker slices its shard of the window and the partials gather.
    /// The static WHERE bindings run through the same federation (BGP
    /// cache, planner pushdown, partitioned shards). Output streams are
    /// identical to single-node registration — the streaming equivalence
    /// oracle pins this down.
    pub fn register_starql_distributed(&self, text: &str, workers: usize) -> Result<u64, String> {
        if workers == 0 {
            return Err("a distributed continuous query needs at least one worker".into());
        }
        self.register_named(None, text, Some(workers))
    }

    /// Registers a catalog task.
    pub fn register_task(&self, task: &DiagnosticTask) -> Result<u64, String> {
        match &task.query {
            optique_siemens::catalog::TaskQuery::StarQl(text) => {
                self.register_named(Some(format!("{}:{}", task.id, task.name)), text, None)
            }
            optique_siemens::catalog::TaskQuery::SqlPlus(_) => Err(format!(
                "task {} is a SQL(+) dataflow; run it on the relational engine directly",
                task.id
            )),
        }
    }

    fn register_named(
        &self,
        name: Option<String>,
        text: &str,
        workers: Option<usize>,
    ) -> Result<u64, String> {
        let parsed = parse_starql(text, &self.namespaces).map_err(|e| e.to_string())?;
        let ctx = TranslationContext {
            ontology: &self.ontology,
            mappings: &self.mappings,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: Default::default(),
        };
        // Translation stays the validator (answer-variable totality,
        // filter scoping, HAVING expansion) and still carries the fleet /
        // window machinery; the *bindings* are answered by the static
        // pipeline below instead of the raw unfolded SQL.
        let translated = translate(&parsed, &ctx).map_err(|e| e.to_string())?;
        // One snapshot for bindings *and* registration, so the continuous
        // query's initial state is internally consistent.
        let snap = self.snapshot();
        let bindings = self.starql_bindings(&translated, workers, &snap)?;
        let query = ContinuousQuery::register_with_bindings(
            translated,
            self.stream_to_rdf.clone(),
            &snap.db,
            bindings,
        )?;
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name = name.unwrap_or_else(|| parsed.output_stream.clone());
        // Windows the stream's existing rows have already closed never
        // re-fire on the first append: the append-driven clock starts at
        // the registration-time high-water mark.
        let last_auto_window = self
            .stream_clock(&snap, &query.translated.query.stream.name)
            .and_then(|ts| query.window().last_closed(query.window_start(), ts));
        self.queries.lock().insert(
            id,
            RegisteredStarQl {
                id,
                name,
                query,
                workers,
                alarms: 0,
                ticks: 0,
                tuples: 0,
                window_fragments: 0,
                stream_rows: 0,
                shards_pruned: 0,
                semi_joins_pushed: 0,
                pane_hits: 0,
                pane_misses: 0,
                last_auto_window,
            },
        );
        // A distributed registration may introduce a stream the existing
        // pools do not partition; drop them so the next tick's pool
        // re-shards over the full stream set.
        if workers.is_some() {
            let mut pools = self.federations.lock();
            self.retire_plan_cache_counters(&pools);
            pools.clear();
        }
        Ok(id)
    }

    /// Answers a translated STARQL query's static WHERE clause through the
    /// static pipeline — `SELECT DISTINCT <answer vars> WHERE { … }` over
    /// the query's (already-validated) disjuncts and filters — so
    /// continuous queries ride the per-BGP cache, the planner, and (when
    /// `workers` is set) the federated fragment executor.
    fn starql_bindings(
        &self,
        translated: &optique_starql::TranslatedQuery,
        workers: Option<usize>,
        snap: &PlatformSnapshot,
    ) -> Result<Vec<HashMap<String, optique_rdf::Term>>, String> {
        let fallback = [translated.query.where_bgp.clone()];
        let disjuncts: &[Vec<optique_rewrite::Atom>] =
            if translated.query.where_disjuncts.is_empty() {
                &fallback
            } else {
                &translated.query.where_disjuncts
            };
        let branch = |i: usize| -> GroupPattern {
            let mut elements = vec![PatternElement::Triples(disjuncts[i].clone())];
            if let Some(filters) = translated.query.where_filters.get(i) {
                elements.extend(filters.iter().cloned().map(PatternElement::Filter));
            }
            GroupPattern { elements }
        };
        let pattern = if disjuncts.len() <= 1 {
            branch(0)
        } else {
            GroupPattern {
                elements: vec![PatternElement::Union(
                    (0..disjuncts.len()).map(branch).collect(),
                )],
            }
        };
        let select = SelectQuery {
            distinct: true,
            projection: Projection::Items(
                translated
                    .where_answer_vars
                    .iter()
                    .map(|v| SelectItem::Var(v.clone()))
                    .collect(),
            ),
            pattern,
            group_by: Vec::new(),
            modifiers: SolutionModifier::default(),
        };
        let federation = workers.map(|w| self.federation_for(w, snap));
        let mut pipeline = StaticPipeline::new(&self.ontology, &self.mappings, &snap.view)
            .with_cache_versions(&self.static_cache, &snap.versions)
            .with_planner(snap.planner)
            .with_table_stats(&snap.stats);
        if let Some(federation) = federation.as_deref() {
            pipeline = pipeline.with_executor(federation);
        }
        let (results, _) = pipeline
            .answer(&Query::Select(select))
            .map_err(|e| format!("static bindings query failed: {e}"))?;
        let vars = results.vars().to_vec();
        let mut bindings = Vec::new();
        for row in results.rows() {
            let mut env = HashMap::with_capacity(vars.len());
            for (var, term) in vars.iter().zip(row) {
                if let Some(term) = term {
                    env.insert(var.clone(), term.clone());
                }
            }
            bindings.push(env);
        }
        Ok(bindings)
    }

    /// The `(stream table, stream key)` pairs of every registered
    /// continuous query — what federation pools hash-partition the stream
    /// side on.
    fn stream_partition_pairs(&self) -> Vec<(String, String)> {
        let queries = self.queries.lock();
        let mut pairs: Vec<(String, String)> = Vec::new();
        for reg in queries.values() {
            let stream = reg.query.translated.query.stream.name.clone();
            let key = reg.query.stream_to_rdf.subject.column().to_string();
            if !pairs.iter().any(|(s, _)| *s == stream) {
                pairs.push((stream, key));
            }
        }
        pairs
    }

    /// The cached federation pool for `workers` under `snap`'s topology,
    /// building it (static tables per topology, registered streams always
    /// hash-partitioned) on first use. A cached pool is served only when
    /// its catalog **is** the snapshot's catalog (pointer identity) — a
    /// pool built over a superseded catalog, even one raced into the map
    /// after a write cleared it, misses and is rebuilt over `snap`.
    fn federation_for(&self, workers: usize, snap: &PlatformSnapshot) -> Arc<Federation> {
        let key = (workers, snap.topology);
        if let Some(pool) = self.federations.lock().get(&key) {
            if Arc::ptr_eq(pool.catalog(), &snap.db) {
                return Arc::clone(pool);
            }
        }
        // Build outside the map lock: sharding the catalog is the slow
        // part, and `stream_partition_pairs` takes the queries lock.
        let streams = self.stream_partition_pairs();
        let pool = Arc::new(Federation::for_deployment(
            Arc::clone(&snap.db),
            workers,
            snap.topology,
            &snap.stats,
            &self.mappings,
            &streams,
        ));
        // Double-checked insert. When the slot holds a pool over a
        // *different* catalog than ours, ours wins the slot — if that other
        // pool was actually fresher, its own readers re-validate and
        // rebuild, so staleness never escapes (only redundant builds).
        let mut pools = self.federations.lock();
        let entry = pools.entry(key).or_insert_with(|| Arc::clone(&pool));
        if !Arc::ptr_eq(entry.catalog(), &snap.db) {
            // The replaced pool's plan-cache counters retire exactly like
            // an explicitly dropped pool's: a mid-flight swap must not
            // zero the dashboard's cache-rate history.
            let (hits, misses) = entry.plan_cache_stats();
            if hits > 0 {
                self.registry.counter(PLAN_CACHE_RETIRED_HITS).add(hits);
            }
            if misses > 0 {
                self.registry.counter(PLAN_CACHE_RETIRED_MISSES).add(misses);
            }
            *entry = Arc::clone(&pool);
        }
        Arc::clone(entry)
    }

    /// Answers a **static** SPARQL query over the deployment's relational
    /// sources: parse → PerfectRef enrichment against the TBox → mapping
    /// unfolding → relational execution → residual algebra (OPTIONAL/UNION
    /// joins, filters, modifiers, aggregates). Per-stage counters land on
    /// the [`Dashboard`].
    ///
    /// This is the paper's one-time-query half: where `register_starql`
    /// installs a continuous query over the streams, `query_static` answers
    /// a SPARQL question about the static side immediately.
    pub fn query_static(&self, text: &str) -> Result<SparqlResults, String> {
        self.query_static_with_stats(text)
            .map(|(results, _)| results)
    }

    /// [`query_static`](Self::query_static), also returning the pipeline
    /// stats (including parse time) recorded on the dashboard.
    pub fn query_static_with_stats(
        &self,
        text: &str,
    ) -> Result<(SparqlResults, PipelineStats), String> {
        self.run_static(text, None)
    }

    /// Answers a static SPARQL query **federated over ExaStream workers**:
    /// the unfolded `UNION ALL` of every BGP splits into per-disjunct plan
    /// fragments, the gateway routes them across `workers` worker threads,
    /// and the per-fragment solution sets merge back before the residual
    /// algebra. Answers are always the same *set* as
    /// [`query_static`](Self::query_static) — the federation and
    /// partitioned equivalence suites pin that down.
    ///
    /// By default the pool is **auto-partitioned**: the partition-key
    /// advisor shards each qualifying table on its best key (join
    /// frequency × distinctness × evenness over the live [`StatsCatalog`])
    /// and fragments fall down a per-fragment ladder — sharded scatter,
    /// single-replica placement, coordinator — so one awkward fragment
    /// never forces a whole query off the shards.
    /// [`set_federation_topology`](Self::set_federation_topology) pins the
    /// layout back to full replication.
    ///
    /// The worker pool for each `(count, topology)` is built once and
    /// reused; relational writes ([`insert_static`](Self::insert_static))
    /// drop the pools along with the BGP cache — a write may change the
    /// advisor's keys, so pools re-partition on next use.
    pub fn query_static_distributed(
        &self,
        text: &str,
        workers: usize,
    ) -> Result<SparqlResults, String> {
        self.query_static_distributed_with_stats(text, workers)
            .map(|(results, _)| results)
    }

    /// [`query_static_distributed`](Self::query_static_distributed), also
    /// returning the pipeline stats recorded on the dashboard.
    pub fn query_static_distributed_with_stats(
        &self,
        text: &str,
        workers: usize,
    ) -> Result<(SparqlResults, PipelineStats), String> {
        if workers == 0 {
            return Err("a federated query needs at least one worker".into());
        }
        self.run_static(text, Some(workers))
    }

    /// The pool layout distributed static queries currently build.
    pub fn federation_topology(&self) -> FederationTopology {
        self.state.read().topology
    }

    /// Switches the pool layout for subsequent distributed static queries.
    /// Pools of both layouts are cached side by side (keyed by `(workers,
    /// topology)`), so the partitioned-equivalence oracle can flip between
    /// them without rebuild churn — and without ever sharing a pool built
    /// over the wrong layout. In-flight queries keep the snapshot (and
    /// topology) they pinned at start.
    pub fn set_federation_topology(&self, topology: FederationTopology) {
        let mut guard = self.state.write();
        let mut next = (**guard).clone();
        next.topology = topology;
        *guard = Arc::new(next);
    }

    /// Shared static-query driver: parse, answer (single-node or federated
    /// over `workers`), log the dashboard panel.
    fn run_static(
        &self,
        text: &str,
        workers: Option<usize>,
    ) -> Result<(SparqlResults, PipelineStats), String> {
        let trace = self.tracing_enabled();
        self.run_static_traced(text, workers, trace)
            .map(|(results, stats, _)| (results, stats))
    }

    /// The driver behind every static entry point: parse and answer under a
    /// per-query [`Tracer`] (when `trace` is set), log the dashboard panel
    /// with span-derived stage timings, feed the latency histogram and the
    /// slow-query log, and hand the tracer back for EXPLAIN ANALYZE.
    fn run_static_traced(
        &self,
        text: &str,
        workers: Option<usize>,
        trace: bool,
    ) -> Result<(SparqlResults, PipelineStats, Option<Tracer>), String> {
        let started = std::time::Instant::now();
        // One atomic snapshot pin for the whole request: db, stats,
        // planner, topology and cache generation all describe the same
        // instant, no matter what writers do while we run.
        let snap = self.snapshot();
        let federation = workers.map(|w| self.federation_for(w, &snap));
        let workers = federation.as_ref().map_or(1, |f| f.workers());
        let tracer = trace.then(Tracer::new);
        let results;
        let stats;
        {
            // Guards borrow the tracer; this scope closes every borrow
            // before the tracer moves into the return value below.
            let mut root = tracer.as_ref().map(|t| t.span(None, "static_query"));
            let root_id = root.as_ref().map(|g| g.id());

            let parse_span = tracer.as_ref().map(|t| t.span(root_id, "parse"));
            let query = parse_sparql(text, &self.namespaces).map_err(|e| e.to_string())?;
            if let Some(g) = parse_span {
                g.finish();
            }

            let mut pipeline = StaticPipeline::new(&self.ontology, &self.mappings, &snap.view)
                .with_cache_versions(&self.static_cache, &snap.versions)
                .with_planner(snap.planner)
                .with_table_stats(&snap.stats);
            if let Some(federation) = federation.as_deref() {
                pipeline = pipeline.with_executor(federation);
            }
            if let Some(tracer) = tracer.as_ref() {
                pipeline = pipeline.with_tracer(tracer, root_id);
            }
            let answered = pipeline.answer(&query).map_err(|e| e.to_string())?;
            if let Some(mut g) = root.take() {
                g.set_attr("rows", answered.1.rows as u64);
                g.set_attr("workers", workers as u64);
                g.finish();
            }
            results = answered.0;
            stats = answered.1;
        }

        let total_us = started.elapsed().as_micros() as u64;
        self.registry.histogram("static.query_us").record(total_us);

        // Stage timings come off the span tree (0 when tracing is off) —
        // the panel and EXPLAIN ANALYZE read the same clock.
        let (parse_us, rewrite_us, unfold_us, exec_us) = match tracer.as_ref() {
            Some(t) => (
                t.sum_duration("parse"),
                t.sum_duration("rewrite"),
                t.sum_duration("unfold"),
                t.sum_duration("exec"),
            ),
            None => (0, 0, 0, 0),
        };

        let id = self
            .static_next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let preview = text.split_whitespace().collect::<Vec<_>>().join(" ");
        if total_us
            >= self
                .slow_threshold_us
                .load(std::sync::atomic::Ordering::Relaxed)
        {
            let mut slow = self.slow_log.lock();
            if slow.len() == SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(SlowQuery {
                id,
                query: preview.clone(),
                workers,
                total_us,
            });
        }
        let mut log = self.static_log.lock();
        if log.len() == STATIC_LOG_CAP {
            log.pop_front();
        }
        log.push_back(StaticQueryPanel {
            id,
            query: preview,
            rows: stats.rows,
            bgps: stats.bgps,
            ucq_disjuncts: stats.ucq_disjuncts,
            sql_disjuncts: stats.sql_disjuncts,
            parse_micros: parse_us,
            rewrite_micros: rewrite_us,
            unfold_micros: unfold_us,
            exec_micros: exec_us,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            fragments: stats.fragments,
            workers,
            coordinator_fallbacks: stats.coordinator_fallbacks,
            join_reorders: stats.join_reorders,
            semi_joins_pushed: stats.semi_joins_pushed,
            estimated_rows: stats.estimated_rows,
            actual_rows: stats.actual_rows,
            fragment_rows: stats.fragment_rows,
            partitioned_fragments: stats.partitioned_fragments,
            replicated_fallbacks: stats.replicated_fallbacks,
            shards_pruned: stats.shards_pruned,
            plan_cache_hits: stats.plan_cache_hits,
            plan_cache_misses: stats.plan_cache_misses,
        });
        drop(log);
        Ok((results, stats, tracer))
    }

    /// Whether static queries currently record span trees.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Turns span recording for static queries on or off (on by default).
    /// Latency histograms and the slow-query log keep working either way;
    /// only the per-stage span tree (and the panel's stage-time columns)
    /// goes dark when tracing is off.
    pub fn set_tracing(&self, enabled: bool) {
        self.tracing
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// The slow-query threshold in microseconds.
    pub fn slow_query_threshold_us(&self) -> u64 {
        self.slow_threshold_us
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Sets the end-to-end latency at which a static query lands on the
    /// dashboard's slow-query log (default 100 ms).
    pub fn set_slow_query_threshold_us(&self, threshold_us: u64) {
        self.slow_threshold_us
            .store(threshold_us, std::sync::atomic::Ordering::Relaxed);
    }

    /// A point-in-time snapshot of every platform counter and latency
    /// histogram; the snapshot carries the JSON and Prometheus exporters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The shared metrics registry (experiment binaries hook their own
    /// meters in here so everything exports together).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Runs a static query with tracing forced on and renders the stitched
    /// span tree — coordinator stage spans plus the per-fragment worker
    /// spans grafted under `exec` — as an EXPLAIN ANALYZE report.
    /// `workers` picks the federated pool (`None` = single-node).
    pub fn explain_analyze(&self, text: &str, workers: Option<usize>) -> Result<String, String> {
        if workers == Some(0) {
            return Err("a federated query needs at least one worker".into());
        }
        let (results, _, tracer) = self.run_static_traced(text, workers, true)?;
        let tracer = tracer.expect("tracing was forced on");
        let mut out = format!(
            "EXPLAIN ANALYZE — {} row(s), {} worker(s)\n",
            results.len(),
            workers.unwrap_or(1),
        );
        out.push_str(&render_tree(&tracer.spans()));
        Ok(out)
    }

    /// Appends rows to a static table, swapping in a new
    /// [`PlatformSnapshot`]. Every derived static-query structure is
    /// invalidated or refreshed **inside the critical section**, before
    /// the new snapshot is published — so no concurrent reader can ever
    /// pair the new catalog with a pre-write cache entry, an old-shard
    /// pool, or stale cardinalities. Returns the number of inserted rows.
    ///
    /// What "refreshed" means depends on the [`WritePolicy`]: under the
    /// default overlay policy the rows land in the novelty log (same base
    /// catalog `Arc`, pools survive, O(1) stats delta, per-table cache
    /// versions bump); under [`WritePolicy::StopTheWorld`] the table is
    /// rebuilt, its stats re-analyzed, and the pools dropped, exactly as
    /// before. Either way the dependent BGP-cache entries are evicted
    /// inside the critical section.
    pub fn insert_static(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, String> {
        match self.write_policy() {
            WritePolicy::NoveltyOverlay => self.insert_overlay(table, rows),
            WritePolicy::StopTheWorld => self.insert_stop_the_world(table, rows),
        }
    }

    /// The overlay fast path: validate against the base schema, publish a
    /// successor overlay alongside the *same* base catalog `Arc`, and
    /// leave the pools alone. An automatic merge runs afterwards (outside
    /// the critical section) once the overlay passes the threshold.
    fn insert_overlay(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, String> {
        let inserted = rows.len();
        let merge_pending;
        {
            let mut guard = self.state.write();
            // Validate arity and types against the base table *without*
            // cloning it — a rejected batch must leave no trace.
            let base = guard.db.table(table).map_err(|e| e.to_string())?;
            for row in &rows {
                base.check_row(row).map_err(|e| e.to_string())?;
            }
            let novelty = guard.novelty.with_rows(table, rows);
            let depth = novelty.depth();
            // O(1) stats refresh: the planner sees the new cardinality
            // immediately; per-column histograms refresh at merge.
            let stats = Arc::new(guard.stats.with_row_delta(table, inserted));
            let versions = Arc::new(guard.versions.bumped(table));
            // Same eviction discipline (and counter parity) as the
            // stop-the-world path for readers of the legacy generation API.
            match *self.invalidation.read() {
                CacheInvalidation::Dependent => {
                    self.static_cache.invalidate_table(table);
                }
                CacheInvalidation::FullClear => {
                    self.static_cache.invalidate();
                }
            }
            let mut view = (*guard.db).clone();
            view.set_novelty(Some(Arc::clone(&novelty)));
            *guard = Arc::new(PlatformSnapshot {
                // Same base Arc: pools keyed on its pointer identity stay
                // valid, and a scatter round merges overlay rows per shard
                // through each worker's NoveltyScope.
                db: Arc::clone(&guard.db),
                view: Arc::new(view),
                novelty,
                versions,
                stats,
                topology: guard.topology,
                planner: guard.planner,
                cache_generation: self.static_cache.generation(),
                dict: TermDict::global().snapshot(),
            });
            self.registry.gauge("novelty.depth").set(depth as i64);
            merge_pending = depth
                >= self
                    .merge_threshold
                    .load(std::sync::atomic::Ordering::Relaxed);
        }
        #[cfg(test)]
        if let Some(probe) = self.write_probe.lock().take() {
            probe(self);
        }
        if merge_pending {
            self.merge_now()?;
        }
        Ok(inserted)
    }

    /// The original write path: rebuild the written table, re-analyze its
    /// stats and drop the pools inside the critical section. Any unmerged
    /// overlay (left over from a policy switch) is folded in the same
    /// swap, so no row is ever lost or double-counted.
    fn insert_stop_the_world(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, String> {
        let inserted = rows.len();
        {
            let mut guard = self.state.write();
            let (mut new_db, folded) = Self::fold_overlay(&guard.db, &guard.novelty)?;
            let mut new_table = (**new_db.table(table).map_err(|e| e.to_string())?).clone();
            for row in rows {
                new_table.push_row(row).map_err(|e| e.to_string())?;
            }
            new_db.put_table(table, new_table);
            let new_db = Arc::new(new_db);
            // Only the changed tables are re-analyzed; writers serialize on
            // the state write lock, so stats always describe the catalog
            // installed by the same swap.
            let mut stats = (*guard.stats).clone();
            for touched in folded.iter().map(String::as_str).chain([table]) {
                let changed = Arc::clone(new_db.table(touched).expect("table was just rebuilt"));
                stats = stats.with_refreshed_table(touched, &changed);
            }
            // Invalidate the cache and drop the pools while the write lock
            // still blocks snapshot pins: a reader runs entirely before
            // this write (old snapshot, old generation — its cache hits
            // are valid) or entirely after (new snapshot, new generation).
            // The old ordering did both *after* releasing the lock,
            // opening a window where the new catalog answered from stale
            // cache entries and old-shard pools.
            match *self.invalidation.read() {
                CacheInvalidation::Dependent => {
                    self.static_cache.invalidate_table(table);
                }
                CacheInvalidation::FullClear => {
                    self.static_cache.invalidate();
                }
            }
            {
                let mut pools = self.federations.lock();
                self.retire_plan_cache_counters(&pools);
                pools.clear();
            }
            *guard = Arc::new(PlatformSnapshot {
                view: Arc::clone(&new_db),
                db: new_db,
                novelty: NoveltyOverlay::empty(),
                versions: Arc::new(guard.versions.bumped(table)),
                stats: Arc::new(stats),
                topology: guard.topology,
                planner: guard.planner,
                cache_generation: self.static_cache.generation(),
                // Re-pin after interning the inserted rows' text: ids for
                // the new literals fall at or below the fresh watermark.
                dict: TermDict::global().snapshot(),
            });
        }
        #[cfg(test)]
        if let Some(probe) = self.write_probe.lock().take() {
            probe(self);
        }
        Ok(inserted)
    }

    /// `db` with every overlay row appended to its base table; returns the
    /// folded catalog (novelty cleared) and the names of the touched
    /// tables, in sorted order.
    fn fold_overlay(
        db: &Database,
        novelty: &NoveltyOverlay,
    ) -> Result<(Database, Vec<String>), String> {
        let mut folded = db.clone();
        folded.set_novelty(None);
        folded.set_novelty_scope(None);
        let mut touched = Vec::new();
        for (table, rows) in novelty.tables() {
            let mut t = (**folded.table(table).map_err(|e| e.to_string())?).clone();
            for row in rows.iter() {
                // Rows were validated against this schema on append.
                t.push_row(row.clone()).map_err(|e| e.to_string())?;
            }
            folded.put_table(table, t);
            touched.push(table.to_string());
        }
        Ok((folded, touched))
    }

    /// Folds the novelty overlay into the base catalog **now**: every
    /// overlay row becomes a base-table row, the touched tables' stats are
    /// re-analyzed (per-column histograms catch up with the O(1) deltas),
    /// and the pools are dropped so the next distributed query
    /// re-partitions over the folded shards — only tables whose advisor
    /// keys drifted actually change layout. Table versions do **not**
    /// bump: a merge changes no table's contents, so versioned BGP-cache
    /// entries stay warm across it. Returns the number of rows folded
    /// (0 when the overlay was already empty).
    ///
    /// Inserts past [`set_merge_threshold`](Self::set_merge_threshold)
    /// trigger this automatically; calling it directly makes merge timing
    /// deterministic for tests and benchmarks.
    pub fn merge_now(&self) -> Result<usize, String> {
        let started = std::time::Instant::now();
        let merged;
        {
            let mut guard = self.state.write();
            if guard.novelty.is_empty() {
                return Ok(0);
            }
            merged = guard.novelty.depth();
            let (folded, touched) = Self::fold_overlay(&guard.db, &guard.novelty)?;
            let folded = Arc::new(folded);
            let mut stats = (*guard.stats).clone();
            for table in &touched {
                let t = Arc::clone(folded.table(table).expect("folded table exists"));
                stats = stats.with_refreshed_table(table, &t);
            }
            // The fold swaps the base catalog Arc the pools shard, so they
            // retire here exactly like a stop-the-world write.
            {
                let mut pools = self.federations.lock();
                self.retire_plan_cache_counters(&pools);
                pools.clear();
            }
            *guard = Arc::new(PlatformSnapshot {
                view: Arc::clone(&folded),
                db: folded,
                novelty: NoveltyOverlay::empty(),
                // Unchanged: pre-merge and post-merge answers are
                // identical, so cached solution sets stay valid.
                versions: Arc::clone(&guard.versions),
                stats: Arc::new(stats),
                topology: guard.topology,
                planner: guard.planner,
                cache_generation: self.static_cache.generation(),
                dict: TermDict::global().snapshot(),
            });
            self.registry.gauge("novelty.depth").set(0);
        }
        self.registry
            .histogram("novelty.merge_us")
            .record(started.elapsed().as_micros() as u64);
        #[cfg(test)]
        if let Some(probe) = self.merge_probe.lock().take() {
            probe(self);
        }
        Ok(merged)
    }

    /// How `insert_static` currently publishes rows.
    pub fn write_policy(&self) -> WritePolicy {
        *self.write_policy.read()
    }

    /// Switches the write path. Switching **to**
    /// [`WritePolicy::StopTheWorld`] merges any pending overlay first, so
    /// the policies never interleave over the same unmerged rows.
    pub fn set_write_policy(&self, policy: WritePolicy) -> Result<(), String> {
        *self.write_policy.write() = policy;
        if policy == WritePolicy::StopTheWorld {
            self.merge_now()?;
        }
        Ok(())
    }

    /// Rows currently in the novelty overlay (0 right after a merge).
    pub fn novelty_depth(&self) -> usize {
        self.state.read().novelty.depth()
    }

    /// Sets the overlay depth at which an insert triggers an automatic
    /// [`merge_now`](Self::merge_now) (default 4096 rows). Benchmarks
    /// isolating pure append latency set it high; write-heavy workloads
    /// tune it to bound scan-side merge work.
    pub fn set_merge_threshold(&self, rows: usize) {
        self.merge_threshold
            .store(rows.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Folds the prepared-plan cache counters of pools that are about to be
    /// dropped into the shared [`MetricsRegistry`], so the dashboard's
    /// hit/miss totals accumulate across pool rebuilds instead of resetting
    /// every time a write or a distributed registration drops the pools.
    fn retire_plan_cache_counters(
        &self,
        pools: &HashMap<(usize, FederationTopology), Arc<Federation>>,
    ) {
        let (hits, misses) = pools
            .values()
            .map(|f| f.plan_cache_stats())
            .fold((0, 0), |(h, m), (fh, fm)| (h + fh, m + fm));
        if hits > 0 {
            self.registry.counter(PLAN_CACHE_RETIRED_HITS).add(hits);
        }
        if misses > 0 {
            self.registry.counter(PLAN_CACHE_RETIRED_MISSES).add(misses);
        }
    }

    /// Number of cached federation pools whose catalog is not the current
    /// snapshot's — must always be zero at rest; the interleaving
    /// regression tests assert it right after `insert_static`'s critical
    /// section.
    #[cfg(test)]
    fn stale_pool_count(&self) -> usize {
        // Pools shard the *base* catalog — overlay appends must not make
        // them look stale.
        let base = Arc::clone(&self.state.read().db);
        self.federations
            .lock()
            .values()
            .filter(|f| !Arc::ptr_eq(f.catalog(), &base))
            .count()
    }

    /// Arms the one-shot write probe fired at the seam right after
    /// `insert_static`'s critical section (see the field docs).
    #[cfg(test)]
    fn set_write_probe(&self, probe: impl FnOnce(&OptiquePlatform) + Send + 'static) {
        *self.write_probe.lock() = Some(Box::new(probe));
    }

    /// Arms the one-shot merge probe fired at the seam right after
    /// [`merge_now`](Self::merge_now)'s critical section.
    #[cfg(test)]
    fn set_merge_probe(&self, probe: impl FnOnce(&OptiquePlatform) + Send + 'static) {
        *self.merge_probe.lock() = Some(Box::new(probe));
    }

    /// How relational writes invalidate the per-BGP cache.
    pub fn cache_invalidation(&self) -> CacheInvalidation {
        *self.invalidation.read()
    }

    /// Switches between dependency-tracked eviction (the default: a write
    /// evicts only the entries whose unfolded SQL read the written table)
    /// and the conservative whole-cache clear.
    pub fn set_cache_invalidation(&self, mode: CacheInvalidation) {
        *self.invalidation.write() = mode;
    }

    /// The shared per-BGP solution-set cache (hit/miss counters feed the
    /// dashboard).
    pub fn bgp_cache(&self) -> &BgpCache {
        &self.static_cache
    }

    /// The planner's statistics snapshot over the current relational state.
    pub fn table_stats(&self) -> Arc<StatsCatalog> {
        Arc::clone(&self.state.read().stats)
    }

    /// The static-query planner knobs currently in force.
    pub fn planner_settings(&self) -> PlannerSettings {
        self.state.read().planner
    }

    /// Replaces the static-query planner knobs. Passing
    /// [`PlannerSettings::disabled`] runs every subsequent static query on
    /// the naive textual-order pipeline — the differential plan-equivalence
    /// suite flips this to compare optimized and naive answers. In-flight
    /// queries keep the snapshot (and planner) they pinned at start.
    pub fn set_planner_settings(&self, settings: PlannerSettings) {
        let mut guard = self.state.write();
        let mut next = (**guard).clone();
        next.planner = settings;
        *guard = Arc::new(next);
    }

    /// Deregisters a query; returns whether it existed.
    pub fn deregister(&self, id: u64) -> bool {
        self.queries.lock().remove(&id).is_some()
    }

    /// Number of registered queries.
    pub fn registered(&self) -> usize {
        self.queries.lock().len()
    }

    /// Runs one pulse tick for every registered query, updating counters.
    /// Outputs come back in registration order. Queries registered through
    /// [`register_starql_distributed`](Self::register_starql_distributed)
    /// materialize their windows as plan fragments over their federation
    /// pool; the rest slice locally.
    pub fn tick_all(&self, tick_ms: i64) -> Result<Vec<(u64, TickOutput)>, String> {
        // One snapshot for the whole tick round: the pools and the db
        // every query slices are the same world, even if a write lands
        // mid-round (its rows show up next tick).
        let snap = self.snapshot();
        // Pools build outside the query lock (pool construction calls
        // back into `stream_partition_pairs`, which takes it).
        let worker_counts: Vec<usize> = {
            let queries = self.queries.lock();
            let mut counts: Vec<usize> = queries.values().filter_map(|r| r.workers).collect();
            counts.sort_unstable();
            counts.dedup();
            counts
        };
        let pools: HashMap<usize, Arc<Federation>> = worker_counts
            .into_iter()
            .map(|w| (w, self.federation_for(w, &snap)))
            .collect();

        let mut out = Vec::new();
        // Ticks read the *view* catalog: unmerged novelty-overlay rows are
        // part of every window, single-node and distributed alike (the
        // fragments pin the overlay epoch on the wire).
        let db = &snap.view;
        let mut queries = self.queries.lock();
        for (id, reg) in queries.iter_mut() {
            // A query whose worker count registered *between* the snapshot
            // above and this lock has no pool yet: it ticks single-node
            // this once (identical output stream — the oracle's contract)
            // and gets its pool next tick. Building here would deadlock on
            // the queries lock (pool construction reads the stream pairs).
            let executor = reg.workers.and_then(|w| pools.get(&w));
            let result = self.run_tick(reg, db, tick_ms, executor)?;
            out.push((*id, result));
        }
        Ok(out)
    }

    /// One timed tick of one registered query, folding the tick's counters
    /// into the query's panel and the pane counters into the registry —
    /// shared by [`tick_all`](Self::tick_all) and append-driven ticking.
    fn run_tick(
        &self,
        reg: &mut RegisteredStarQl,
        db: &Arc<Database>,
        tick_ms: i64,
        executor: Option<&Arc<Federation>>,
    ) -> Result<TickOutput, String> {
        let tick_started = std::time::Instant::now();
        let result =
            reg.query
                .tick_via(db, &self.wcache, tick_ms, executor.map(|f| f.as_ref() as _))?;
        self.registry
            .histogram(&format!("tick.q{}.us", reg.id))
            .record(tick_started.elapsed().as_micros() as u64);
        reg.ticks += 1;
        reg.alarms += result.satisfied as u64;
        reg.tuples += result.tuples_in_window as u64;
        reg.window_fragments += result.window_fragments as u64;
        reg.stream_rows += result.stream_rows_shipped as u64;
        reg.shards_pruned += result.shards_pruned as u64;
        reg.semi_joins_pushed += result.semi_joins_pushed as u64;
        reg.pane_hits += result.pane_hits;
        reg.pane_misses += result.pane_misses;
        if result.pane_hits > 0 {
            self.registry.counter(PANE_HITS).add(result.pane_hits);
        }
        if result.pane_misses > 0 {
            self.registry.counter(PANE_MISSES).add(result.pane_misses);
        }
        Ok(result)
    }

    /// The stream's clock under `snap`: the maximum timestamp over the
    /// table's base rows and any unmerged overlay rows (`None` for an
    /// empty or non-stream table).
    fn stream_clock(&self, snap: &PlatformSnapshot, table: &str) -> Option<i64> {
        let base = snap.view.table(table).ok()?;
        let ts_idx = base.schema.index_of(&self.stream_to_rdf.timestamp_col)?;
        base.rows
            .iter()
            .chain(snap.view.novelty_rows(table))
            .filter_map(|row| row.get(ts_idx).and_then(Value::as_i64))
            .max()
    }

    /// Appends rows to a stream table **and drives the continuous queries
    /// over it**: after the write publishes, every registered query on
    /// `table` ticks once per window the appended rows newly closed (each
    /// tick at that window's close instant), exactly as if
    /// [`tick_all`](Self::tick_all) had been pulsed at those times.
    /// Returns the driven tick outputs as `(query id, output)` pairs in
    /// registration order, oldest window first — empty when the append
    /// left every window still open.
    ///
    /// This is the push half of the paper's pulse model: where `tick_all`
    /// polls on an external clock, `append_stream` lets the *data* advance
    /// the clock — the batch's maximum timestamp becomes the stream's new
    /// high-water mark.
    pub fn append_stream(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<(u64, TickOutput)>, String> {
        self.insert_static(table, rows)?;
        // One snapshot for the whole driven round, pinned *after* the
        // write so the ticks see the rows that closed their windows.
        let snap = self.snapshot();
        let Some(clock) = self.stream_clock(&snap, table) else {
            return Ok(Vec::new());
        };
        // Pools build outside the queries lock, exactly as in `tick_all`.
        let worker_counts: Vec<usize> = {
            let queries = self.queries.lock();
            let mut counts: Vec<usize> = queries
                .values()
                .filter(|r| r.query.translated.query.stream.name == table)
                .filter_map(|r| r.workers)
                .collect();
            counts.sort_unstable();
            counts.dedup();
            counts
        };
        let pools: HashMap<usize, Arc<Federation>> = worker_counts
            .into_iter()
            .map(|w| (w, self.federation_for(w, &snap)))
            .collect();

        let mut out = Vec::new();
        let db = &snap.view;
        let mut queries = self.queries.lock();
        for (id, reg) in queries.iter_mut() {
            if reg.query.translated.query.stream.name != table {
                continue;
            }
            let window = reg.query.window();
            let start = reg.query.window_start();
            let Some(newest) = window.last_closed(start, clock) else {
                continue;
            };
            let first = reg.last_auto_window.map_or(0, |w| w + 1);
            let executor = reg.workers.and_then(|w| pools.get(&w));
            for w in first..=newest {
                let close = window.bounds(start, w).1;
                let result = self.run_tick(reg, db, close, executor)?;
                out.push((*id, result));
            }
            reg.last_auto_window = Some(newest);
        }
        Ok(out)
    }

    /// Enables/disables incremental pane aggregation on every registered
    /// query. Disabled queries rescan the full window even when
    /// pane-combinable — the differential oracle's reference arm; output
    /// streams are identical either way.
    pub fn set_pane_aggregation(&self, enabled: bool) {
        for reg in self.queries.lock().values() {
            reg.query.set_pane_aggregation(enabled);
        }
    }

    /// The shared window cache (hit/miss statistics for E8).
    pub fn wcache(&self) -> &WCache {
        &self.wcache
    }

    /// Conciseness report for one registered query (E3).
    pub fn fleet_report(&self, id: u64, starql_text: &str) -> Option<FleetReport> {
        let queries = self.queries.lock();
        let reg = queries.get(&id)?;
        let fleet = &reg.query.translated.fleet;
        Some(FleetReport {
            name: reg.name.clone(),
            starql_chars: starql_text.len(),
            fleet_queries: fleet.len(),
            fleet_chars: fleet.iter().map(String::len).sum(),
        })
    }

    /// A monitoring snapshot of all registered queries.
    pub fn dashboard(&self) -> Dashboard {
        let queries = self.queries.lock();
        let panels = queries
            .values()
            .map(|reg| {
                let ticks = self
                    .registry
                    .histogram(&format!("tick.q{}.us", reg.id))
                    .summary();
                QueryPanel {
                    id: reg.id,
                    name: reg.name.clone(),
                    bindings: reg.query.binding_count(),
                    ticks: reg.ticks,
                    alarms: reg.alarms,
                    tuples: reg.tuples,
                    fleet_size: reg.query.translated.fleet.len(),
                    workers: reg.workers.unwrap_or(1),
                    window_fragments: reg.window_fragments,
                    stream_rows: reg.stream_rows,
                    shards_pruned: reg.shards_pruned,
                    semi_joins_pushed: reg.semi_joins_pushed,
                    pane_hits: reg.pane_hits,
                    pane_misses: reg.pane_misses,
                    tick_p50_us: ticks.p50,
                    tick_p95_us: ticks.p95,
                    tick_p99_us: ticks.p99,
                }
            })
            .collect();
        drop(queries);
        // Live pools plus counters retired when earlier pools were dropped
        // (`insert_static`, distributed registration) — rebuilding a pool
        // must never zero the dashboard's cache-rate history.
        let (live_hits, live_misses) = self
            .federations
            .lock()
            .values()
            .map(|f| f.plan_cache_stats())
            .fold((0, 0), |(h, m), (fh, fm)| (h + fh, m + fm));
        let plan_cache_hits = live_hits + self.registry.counter(PLAN_CACHE_RETIRED_HITS).get();
        let plan_cache_misses =
            live_misses + self.registry.counter(PLAN_CACHE_RETIRED_MISSES).get();
        let static_latency = self.registry.histogram("static.query_us").summary();
        Dashboard {
            panels,
            static_queries: self.static_log.lock().iter().cloned().collect(),
            wcache_hits: self.wcache.hits(),
            wcache_misses: self.wcache.misses(),
            bgp_cache_hits: self.static_cache.hits(),
            bgp_cache_misses: self.static_cache.misses(),
            bgp_cache_invalidations: self.static_cache.invalidations(),
            plan_cache_hits,
            plan_cache_misses,
            static_p50_us: static_latency.p50,
            static_p95_us: static_latency.p95,
            static_p99_us: static_latency.p99,
            slow_queries: self.slow_log.lock().iter().cloned().collect(),
            slow_threshold_us: self.slow_query_threshold_us(),
        }
    }
}

impl std::fmt::Debug for OptiquePlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OptiquePlatform({} queries, {} mappings, {:?})",
            self.registered(),
            self.mappings.len(),
            self.ontology
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_siemens::catalog::TaskQuery;

    fn platform() -> OptiquePlatform {
        OptiquePlatform::from_siemens(SiemensDeployment::small())
    }

    #[test]
    fn register_and_tick_figure1() {
        let p = platform();
        let id = p.register_starql(optique_starql::FIGURE1).unwrap();
        assert_eq!(p.registered(), 1);
        // The small deployment plants ramp failures near the end of its 60 s
        // stream; tick across the stream and count alarms.
        let mut alarms = 0;
        for tick in (600_000..=660_000).step_by(1_000) {
            let outputs = p.tick_all(tick).unwrap();
            alarms += outputs[0].1.satisfied;
        }
        assert!(alarms >= 1, "the planted monotonic ramp must fire");
        assert!(p.deregister(id));
    }

    #[test]
    fn catalog_tasks_register() {
        let p = platform();
        let mut registered = 0;
        for task in optique_siemens::diagnostic_tasks() {
            match &task.query {
                TaskQuery::StarQl(_) => {
                    p.register_task(&task)
                        .unwrap_or_else(|e| panic!("{}: {e}", task.id));
                    registered += 1;
                }
                TaskQuery::SqlPlus(sql) => {
                    optique_relational::exec::query(sql, &p.db()).unwrap();
                }
            }
        }
        assert_eq!(registered, 18);
        assert_eq!(p.registered(), 18);
    }

    /// Distributed registration evaluates ticks through window fragments
    /// over a stream-partitioned pool and raises the same alarms.
    #[test]
    fn distributed_starql_ticks_match_single_node() {
        let single = platform();
        let distributed = platform();
        single.register_starql(optique_starql::FIGURE1).unwrap();
        distributed
            .register_starql_distributed(optique_starql::FIGURE1, 4)
            .unwrap();
        let mut single_alarms = 0usize;
        let mut distributed_alarms = 0usize;
        for tick in (600_000..=660_000).step_by(1_000) {
            let s = single.tick_all(tick).unwrap();
            let d = distributed.tick_all(tick).unwrap();
            single_alarms += s[0].1.satisfied;
            distributed_alarms += d[0].1.satisfied;
            let mut st = s[0].1.triples.clone();
            let mut dt = d[0].1.triples.clone();
            st.sort_by_key(|t| format!("{t:?}"));
            dt.sort_by_key(|t| format!("{t:?}"));
            assert_eq!(st, dt, "tick {tick}");
        }
        assert!(single_alarms >= 1);
        assert_eq!(single_alarms, distributed_alarms);
        // The distributed panel shows windows genuinely shipped.
        let dash = distributed.dashboard();
        assert_eq!(dash.panels[0].workers, 4);
        assert!(dash.panels[0].window_fragments > 0, "{:?}", dash.panels[0]);
        assert!(dash.panels[0].stream_rows > 0);
        assert!(dash.render().contains("wfrag"));
        // Repeated rounds of the same window wire hit the worker plan
        // caches.
        assert!(dash.plan_cache_hits + dash.plan_cache_misses > 0);
    }

    /// Dependent invalidation keeps entries over unwritten tables warm;
    /// the full-clear knob restores the conservative behavior.
    #[test]
    fn dependent_invalidation_keeps_unrelated_entries() {
        let p = platform();
        assert_eq!(p.cache_invalidation(), CacheInvalidation::Dependent);
        let sensors = "SELECT ?s WHERE { ?s a sie:Sensor }";
        let turbines = "SELECT ?t WHERE { ?t a sie:Turbine }";
        p.query_static(sensors).unwrap();
        p.query_static(turbines).unwrap();

        // Insert into turbines: the sensor entry must survive…
        let t = p.db().table("turbines").unwrap().clone();
        let mut row: Vec<Value> = t.rows[0].clone();
        let id_col = t.schema.index_of("tid").unwrap();
        row[id_col] = Value::Int(77_001);
        p.insert_static("turbines", vec![row.clone()]).unwrap();
        let (_, stats) = p.query_static_with_stats(sensors).unwrap();
        assert!(stats.cache_hits >= 1, "sensor entry stayed warm: {stats:?}");
        // …while the turbine entry was evicted and sees the new row.
        let (fresh, stats) = p.query_static_with_stats(turbines).unwrap();
        assert_eq!(stats.cache_hits, 0, "turbine entry evicted: {stats:?}");
        assert!(!fresh.is_empty());

        // Full-clear fallback: the same write now clears everything.
        p.set_cache_invalidation(CacheInvalidation::FullClear);
        p.query_static(sensors).unwrap();
        row[id_col] = Value::Int(77_002);
        p.insert_static("turbines", vec![row]).unwrap();
        let (_, stats) = p.query_static_with_stats(sensors).unwrap();
        assert_eq!(stats.cache_hits, 0, "full clear evicted sensors too");
    }

    /// Regression: a relational write drops the federation pools, but the
    /// dashboard's plan-cache totals must accumulate across the rebuild —
    /// the counters retire into the registry, they don't reset to zero.
    #[test]
    fn plan_cache_counters_survive_pool_rebuilds() {
        let p = platform();
        // Reads `turbines`, so the insert below evicts its BGP-cache entry
        // and the post-write run re-executes on the rebuilt pool.
        let q = "SELECT ?t WHERE { ?t a sie:Turbine }";
        p.query_static_distributed(q, 2).unwrap();
        p.query_static_distributed(q, 2).unwrap();
        let before = p.dashboard();
        assert!(before.plan_cache_hits + before.plan_cache_misses > 0);

        p.insert_static("turbines", vec![new_turbine_row(&p, 88_001)])
            .unwrap();
        let after = p.dashboard();
        assert!(
            after.plan_cache_hits >= before.plan_cache_hits
                && after.plan_cache_misses >= before.plan_cache_misses,
            "retired counters lost: {before:?} -> {after:?}"
        );

        // New traffic lands on top of the retired totals.
        p.query_static_distributed(q, 2).unwrap();
        let later = p.dashboard();
        assert!(
            later.plan_cache_hits + later.plan_cache_misses
                > after.plan_cache_hits + after.plan_cache_misses
        );
    }

    /// Regression (pool-*replacement* counter loss): a straggler holding a
    /// pre-write snapshot can win the pool slot back from a fresher pool
    /// via `federation_for`'s double-checked insert. The replaced pool's
    /// plan-cache counters must retire into the registry exactly like an
    /// explicitly dropped pool's — pre-fix they vanished with the `Arc`.
    #[test]
    fn plan_cache_counters_survive_pool_replacement() {
        let p = platform();
        let q = "SELECT ?t WHERE { ?t a sie:Turbine }";
        p.query_static_distributed(q, 2).unwrap();
        let old_snap = p.snapshot();
        // A stop-the-world write swaps the base catalog and drops the
        // pools (retiring the first pool's counters).
        p.set_write_policy(WritePolicy::StopTheWorld).unwrap();
        p.insert_static("turbines", vec![new_turbine_row(&p, 97_001)])
            .unwrap();
        // Fresh pool over the new catalog, with live counters.
        p.query_static_distributed(q, 2).unwrap();
        let before = p.dashboard();
        assert!(before.plan_cache_hits + before.plan_cache_misses > 0);

        // The straggler rebuilds over the superseded catalog and replaces
        // the fresh pool in the slot.
        let _ = p.federation_for(2, &old_snap);
        let after = p.dashboard();
        assert!(
            after.plan_cache_hits >= before.plan_cache_hits
                && after.plan_cache_misses >= before.plan_cache_misses,
            "replaced pool's counters lost: {} + {} -> {} + {}",
            before.plan_cache_hits,
            before.plan_cache_misses,
            after.plan_cache_hits,
            after.plan_cache_misses,
        );
    }

    /// An aggregate HAVING over the Siemens stream: a pure `MAX` threshold
    /// tree over the stream's value property — pane-combinable by
    /// construction, and exact across backends (`MAX` is order-independent,
    /// unlike a float `SUM`). The planted ramps peak at 87.5 and the hot
    /// bursts at 96+, so `>= 85` fires on the anomalies only.
    const AGG_QUERY: &str = r#"
PREFIX sie: <http://siemens.example/ontology#>
CREATE STREAM S_agg AS
CONSTRUCT GRAPH NOW { ?c2 a sie:MonInc }
FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
USING PULSE WITH START = "00:10:00CET", FREQUENCY = "1S"
WHERE {?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c1 sie:inAssembly ?c2.}
SEQUENCE BY StdSeq AS seq
HAVING MAX(?c2, sie:hasValue) >= 85
"#;

    /// An `S_Msmt` row (`ts TIMESTAMP, sensor_id INT, value FLOAT,
    /// event TEXT`).
    fn msmt_row(ts: i64, sensor_id: i64, value: f64) -> Vec<Value> {
        vec![
            Value::Timestamp(ts),
            Value::Int(sensor_id),
            Value::Float(value),
            Value::Null,
        ]
    }

    /// A sensor id that actually streams (first row of `S_Msmt`).
    fn streamed_sensor(p: &OptiquePlatform) -> i64 {
        p.db().table("S_Msmt").unwrap().rows[0][1]
            .as_i64()
            .expect("sensor_id is an int")
    }

    /// Appending stream rows drives registered queries without any
    /// external `tick_all` pulse: each newly closed window ticks at its
    /// close instant, counters accumulate, and an append that closes no
    /// window drives nothing.
    #[test]
    fn append_driven_ticks_fire_without_external_pulse() {
        let p = platform();
        p.register_starql(AGG_QUERY).unwrap();
        let sensor = streamed_sensor(&p);

        // Within the last already-closed window: no new window, no tick.
        let out = p
            .append_stream("S_Msmt", vec![msmt_row(659_500, sensor, 50.0)])
            .unwrap();
        assert!(out.is_empty(), "no window newly closed: {out:?}");
        assert_eq!(p.dashboard().panels[0].ticks, 0);

        // Ten seconds past the stream end, hot values: ten windows close
        // and the threshold fires.
        let rows: Vec<Vec<Value>> = (1..=10)
            .map(|k| msmt_row(659_000 + k * 1_000, sensor, 99.0))
            .collect();
        let out = p.append_stream("S_Msmt", rows).unwrap();
        assert_eq!(out.len(), 10, "one driven tick per newly closed window");
        assert!(
            out.iter().any(|(_, t)| t.satisfied > 0),
            "hot appended values must fire: {out:?}"
        );
        let dash = p.dashboard();
        assert_eq!(dash.panels[0].ticks, 10);
        assert!(dash.panels[0].alarms > 0);

        // Re-appending inside the now-closed span drives nothing again.
        let out = p
            .append_stream("S_Msmt", vec![msmt_row(669_000, sensor, 99.0)])
            .unwrap();
        assert!(out.is_empty());
    }

    /// Append-driven ticking raises the same output stream as external
    /// pulses at the same instants — over base rows *and* unmerged
    /// novelty-overlay rows (the overlay write path is the default).
    #[test]
    fn append_driven_ticks_match_external_pulses() {
        let driven = platform();
        let pulsed = platform();
        driven.register_starql(AGG_QUERY).unwrap();
        pulsed.register_starql(AGG_QUERY).unwrap();
        let sensor = streamed_sensor(&driven);
        let rows: Vec<Vec<Value>> = (1..=5)
            .map(|k| msmt_row(659_000 + k * 1_000, sensor, 99.0))
            .collect();

        let driven_out = driven.append_stream("S_Msmt", rows.clone()).unwrap();
        pulsed.insert_static("S_Msmt", rows).unwrap();
        let mut pulsed_out = Vec::new();
        for tick in (660_000..=664_000).step_by(1_000) {
            pulsed_out.extend(pulsed.tick_all(tick).unwrap());
        }

        assert_eq!(driven_out.len(), pulsed_out.len());
        for ((_, d), (_, e)) in driven_out.iter().zip(&pulsed_out) {
            assert_eq!(d.tick_ms, e.tick_ms);
            let mut dt = d.triples.clone();
            let mut et = e.triples.clone();
            dt.sort_by_key(|t| format!("{t:?}"));
            et.sort_by_key(|t| format!("{t:?}"));
            assert_eq!(dt, et, "tick {}", d.tick_ms);
        }
    }

    /// A pane-combinable distributed query answers its ticks from
    /// shard-local pane stores: probe counters surface on the panel and
    /// the registry, and overlapping windows re-use warm panes.
    #[test]
    fn pane_counters_accumulate_on_distributed_agg_query() {
        let p = platform();
        p.register_starql_distributed(AGG_QUERY, 4).unwrap();
        for tick in (600_000..=620_000).step_by(1_000) {
            p.tick_all(tick).unwrap();
        }
        let dash = p.dashboard();
        let panel = &dash.panels[0];
        assert!(
            panel.pane_hits + panel.pane_misses > 0,
            "pane path never probed: {panel:?}"
        );
        assert!(
            panel.pane_hits > 0,
            "overlapping windows must re-use warm panes: {panel:?}"
        );
        assert_eq!(
            p.registry.counter(PANE_HITS).get() + p.registry.counter(PANE_MISSES).get(),
            panel.pane_hits + panel.pane_misses,
            "registry mirrors the panel"
        );
        assert!(dash.pane_hit_rate().is_some());
        assert!(dash.render().contains("phit"));
    }

    /// The pane-combined distributed backend, the rescan fallback
    /// (panes disabled), and single-node evaluation raise identical
    /// output streams tick for tick.
    #[test]
    fn distributed_agg_ticks_match_single_node_with_and_without_panes() {
        let single = platform();
        let panes = platform();
        let rescan = platform();
        single.register_starql(AGG_QUERY).unwrap();
        panes.register_starql_distributed(AGG_QUERY, 4).unwrap();
        rescan.register_starql_distributed(AGG_QUERY, 4).unwrap();
        rescan.set_pane_aggregation(false);
        let mut alarms = 0usize;
        for tick in (600_000..=660_000).step_by(1_000) {
            let s = single.tick_all(tick).unwrap();
            let p = panes.tick_all(tick).unwrap();
            let r = rescan.tick_all(tick).unwrap();
            alarms += s[0].1.satisfied;
            let sort = |t: &TickOutput| {
                let mut v = t.triples.clone();
                v.sort_by_key(|t| format!("{t:?}"));
                v
            };
            assert_eq!(sort(&s[0].1), sort(&p[0].1), "panes, tick {tick}");
            assert_eq!(sort(&s[0].1), sort(&r[0].1), "rescan, tick {tick}");
        }
        assert!(alarms >= 1, "planted anomalies must fire");
        // The pane arm genuinely used panes; the rescan arm genuinely
        // did not.
        assert!(panes.dashboard().panels[0].pane_hits > 0);
        let rp = &rescan.dashboard().panels[0];
        assert_eq!(rp.pane_hits + rp.pane_misses, 0);
        assert!(rp.window_fragments > 0, "rescan fell back to shipping");
    }

    /// A `turbines` row with a fresh primary key, cloned off the first row.
    fn new_turbine_row(p: &OptiquePlatform, tid: i64) -> Vec<Value> {
        let turbines = p.db().table("turbines").unwrap().clone();
        let mut row: Vec<Value> = turbines.rows[0].clone();
        let id_col = turbines.schema.index_of("tid").expect("turbines.tid");
        row[id_col] = Value::Int(tid);
        row
    }

    /// Interleaving regression (write-path race #1): at the seam right
    /// after `insert_static`'s critical section the BGP cache must already
    /// be invalidated. Under the pre-fix ordering — invalidate *after* the
    /// write lock dropped — the probe runs before the invalidation, so it
    /// observes the pre-write generation and a reader at the seam pairs
    /// the new catalog with the stale cached solution set; both assertions
    /// fail deterministically.
    #[test]
    fn bgp_cache_invalidated_inside_insert_critical_section() {
        let p = platform();
        // The race this regression pins lives in the stop-the-world write
        // path; the overlay path has its own seam test below.
        p.set_write_policy(WritePolicy::StopTheWorld).unwrap();
        let text = "SELECT ?t WHERE { ?t a sie:Turbine }";
        let before = p.query_static(text).unwrap().len();
        let generation_before = p.bgp_cache().generation();
        let row = new_turbine_row(&p, 88_001);
        p.set_write_probe(move |p| {
            assert!(
                p.bgp_cache().generation() > generation_before,
                "cache invalidation must precede snapshot publication"
            );
            let fresh = p.query_static(text).unwrap();
            assert_eq!(
                fresh.len(),
                before + 1,
                "a reader at the seam sees the inserted row, not the stale cache entry"
            );
        });
        p.insert_static("turbines", vec![row]).unwrap();
    }

    /// Interleaving regression (write-path race #2): at the same seam no
    /// federation pool sharded over the superseded catalog may remain
    /// visible to new lookups. Pre-fix, the pools were cleared after the
    /// lock dropped, so a distributed query at the seam grabbed a pool
    /// built over the old shards and missed the insert.
    #[test]
    fn federation_pools_dropped_inside_insert_critical_section() {
        let p = platform();
        // Pool-dropping is stop-the-world behavior; under the overlay
        // policy pools deliberately survive (seam test below).
        p.set_write_policy(WritePolicy::StopTheWorld).unwrap();
        let text = "SELECT DISTINCT ?t WHERE { ?t a sie:Turbine }";
        let before = p.query_static_distributed(text, 2).unwrap().len();
        let row = new_turbine_row(&p, 88_002);
        p.set_write_probe(move |p| {
            assert_eq!(
                p.stale_pool_count(),
                0,
                "no pool over the superseded catalog survives publication"
            );
            let fresh = p.query_static_distributed(text, 2).unwrap();
            assert_eq!(
                fresh.len(),
                before + 1,
                "a distributed reader at the seam shards over the new catalog"
            );
        });
        p.insert_static("turbines", vec![row]).unwrap();
    }

    /// A pinned snapshot's stats always describe its db — before, across,
    /// and after a write (no db/stats tear), and the cache generation
    /// moves with the catalog.
    #[test]
    fn snapshot_stats_describe_snapshot_db() {
        let p = platform();
        // Base-table growth per insert is the stop-the-world contract; the
        // overlay twin below checks the same coherence over the view.
        p.set_write_policy(WritePolicy::StopTheWorld).unwrap();
        let old = p.snapshot();
        let old_rows = old.db.table("turbines").unwrap().rows.len();
        assert_eq!(old.stats.row_count("turbines"), Some(old_rows));

        let row = new_turbine_row(&p, 88_003);
        p.insert_static("turbines", vec![row]).unwrap();

        // The pre-write snapshot still coheres…
        assert_eq!(old.db.table("turbines").unwrap().rows.len(), old_rows);
        assert_eq!(old.stats.row_count("turbines"), Some(old_rows));
        // …and the new one describes the new catalog, under a new cache
        // generation.
        let new = p.snapshot();
        assert_eq!(new.db.table("turbines").unwrap().rows.len(), old_rows + 1);
        assert_eq!(new.stats.row_count("turbines"), Some(old_rows + 1));
        assert!(new.cache_generation > old.cache_generation);
    }

    /// Overlay seam regression: right after an overlay insert publishes,
    /// the federation pools must still be valid (same base catalog Arc —
    /// nothing was dropped) and a distributed reader at the seam already
    /// sees the row through the fragment's pinned novelty epoch.
    #[test]
    fn overlay_insert_keeps_pools_and_is_visible_at_seam() {
        let p = platform();
        assert_eq!(p.write_policy(), WritePolicy::NoveltyOverlay);
        let text = "SELECT DISTINCT ?t WHERE { ?t a sie:Turbine }";
        let before = p.query_static_distributed(text, 2).unwrap().len();
        let base_before = Arc::clone(&p.snapshot().db);
        let row = new_turbine_row(&p, 90_001);
        p.set_write_probe(move |p| {
            assert_eq!(p.stale_pool_count(), 0, "pools survive an overlay append");
            assert_eq!(p.federations.lock().len(), 1, "…without being rebuilt");
            let fresh = p.query_static_distributed(text, 2).unwrap();
            assert_eq!(
                fresh.len(),
                before + 1,
                "a distributed reader at the seam sees the appended row"
            );
        });
        p.insert_static("turbines", vec![row]).unwrap();
        assert_eq!(p.novelty_depth(), 1);
        let snap = p.snapshot();
        assert!(
            Arc::ptr_eq(&snap.db, &base_before),
            "overlay writes keep the base catalog"
        );
        assert_eq!(snap.novelty.epoch(), snap.view.novelty_epoch());
        assert_eq!(p.query_static(text).unwrap().len(), before + 1);
    }

    /// Overlay twin of `snapshot_stats_describe_snapshot_db`: the base
    /// stays put, the view layers the row, the stats carry the O(1)
    /// cardinality delta, and the table's write version bumps.
    #[test]
    fn overlay_snapshot_stats_and_versions_cohere() {
        let p = platform();
        let old = p.snapshot();
        let old_rows = old.db.table("turbines").unwrap().rows.len();
        p.insert_static("turbines", vec![new_turbine_row(&p, 90_002)])
            .unwrap();
        // The pre-write snapshot still coheres…
        assert_eq!(old.novelty.depth(), 0);
        assert_eq!(old.stats.row_count("turbines"), Some(old_rows));
        // …and the new one layers the row over the same base.
        let new = p.snapshot();
        assert!(Arc::ptr_eq(&new.db, &old.db));
        assert_eq!(new.db.table("turbines").unwrap().rows.len(), old_rows);
        assert_eq!(new.view.novelty_rows("turbines").count(), 1);
        assert_eq!(new.stats.row_count("turbines"), Some(old_rows + 1));
        assert_eq!(new.versions.of("turbines"), old.versions.of("turbines") + 1);
    }

    /// Interleaving regression (merge race): a query at the seam right
    /// after `merge_now` publishes sees the folded catalog — the same
    /// answer as before the merge, never a torn mix — while a reader that
    /// pinned its snapshot pre-merge keeps answering over base + overlay.
    #[test]
    fn query_racing_a_merge_is_never_torn() {
        let p = platform();
        let text = "SELECT ?t WHERE { ?t a sie:Turbine }";
        let before = p.query_static(text).unwrap().len();
        p.insert_static("turbines", vec![new_turbine_row(&p, 91_001)])
            .unwrap();
        p.insert_static("turbines", vec![new_turbine_row(&p, 91_002)])
            .unwrap();
        let old = p.snapshot();
        assert_eq!(old.novelty.depth(), 2);
        p.set_merge_probe(move |p| {
            assert_eq!(p.novelty_depth(), 0);
            assert_eq!(p.query_static(text).unwrap().len(), before + 2);
            assert_eq!(
                p.query_static_distributed(text, 2).unwrap().len(),
                before + 2,
                "a distributed reader at the seam shards over the folded catalog"
            );
        });
        assert_eq!(p.merge_now().unwrap(), 2);
        // The pre-merge snapshot holds its overlay strong and still
        // resolves: scans over its view keep merging base + overlay.
        assert_eq!(old.view.novelty_epoch(), old.novelty.epoch());
        let rows = optique_relational::exec::query("SELECT tid FROM turbines", &old.view).unwrap();
        assert_eq!(rows.rows.len(), before + 2);
    }

    /// A merge changes no table's contents, so versioned BGP-cache entries
    /// stay warm across it — and the incrementally maintained stats equal
    /// a from-scratch analyze (no drift survives a merge).
    #[test]
    fn merge_keeps_versioned_cache_entries_warm() {
        let p = platform();
        let sensors = "SELECT ?s WHERE { ?s a sie:Sensor }";
        p.query_static(sensors).unwrap();
        p.insert_static("turbines", vec![new_turbine_row(&p, 94_001)])
            .unwrap();
        assert_eq!(p.merge_now().unwrap(), 1);
        let (_, stats) = p.query_static_with_stats(sensors).unwrap();
        assert!(
            stats.cache_hits >= 1,
            "merge must not cold the cache: {stats:?}"
        );
        assert_eq!(*p.table_stats(), StatsCatalog::analyze(&p.db()));
    }

    #[test]
    fn auto_merge_triggers_past_threshold() {
        let p = platform();
        p.set_merge_threshold(3);
        let base_rows = p.snapshot().db.table("turbines").unwrap().rows.len();
        for tid in 0..3 {
            p.insert_static("turbines", vec![new_turbine_row(&p, 92_000 + tid)])
                .unwrap();
        }
        // The third insert crossed the threshold and folded the log.
        assert_eq!(p.novelty_depth(), 0);
        assert_eq!(
            p.snapshot().db.table("turbines").unwrap().rows.len(),
            base_rows + 3
        );
    }

    /// Switching to the stop-the-world policy merges the pending overlay
    /// first, so the two write paths never interleave over unmerged rows.
    #[test]
    fn policy_switch_merges_pending_overlay() {
        let p = platform();
        let text = "SELECT ?t WHERE { ?t a sie:Turbine }";
        let before = p.query_static(text).unwrap().len();
        p.insert_static("turbines", vec![new_turbine_row(&p, 93_001)])
            .unwrap();
        assert_eq!(p.novelty_depth(), 1);
        p.set_write_policy(WritePolicy::StopTheWorld).unwrap();
        assert_eq!(p.novelty_depth(), 0);
        p.insert_static("turbines", vec![new_turbine_row(&p, 93_002)])
            .unwrap();
        assert_eq!(p.query_static(text).unwrap().len(), before + 2);
    }

    #[test]
    fn dashboard_reflects_activity() {
        let p = platform();
        p.register_starql(optique_starql::FIGURE1).unwrap();
        p.tick_all(609_000).unwrap();
        let dash = p.dashboard();
        assert_eq!(dash.panels.len(), 1);
        assert_eq!(dash.panels[0].ticks, 1);
        assert!(dash.panels[0].bindings > 0);
        assert!(dash.render().contains("S_out"));
    }

    #[test]
    fn fleet_report_shows_conciseness() {
        let p = platform();
        let id = p.register_starql(optique_starql::FIGURE1).unwrap();
        let report = p.fleet_report(id, optique_starql::FIGURE1).unwrap();
        assert!(report.fleet_queries >= 2);
        assert!(report.fleet_chars > 0);
    }

    #[test]
    fn bad_starql_rejected() {
        let p = platform();
        assert!(p.register_starql("CREATE NONSENSE").is_err());
        assert_eq!(p.registered(), 0);
    }

    #[test]
    fn query_static_answers_select() {
        let p = platform();
        let results = p
            .query_static("SELECT ?s WHERE { ?s a sie:Sensor }")
            .unwrap();
        // The small deployment has 60 sensors; the regional registries remap
        // the same individuals, and the pipeline returns distinct solutions.
        assert_eq!(results.len(), 60);
    }

    #[test]
    fn query_static_enriches_through_the_taxonomy() {
        let p = platform();
        // MonitoringDevice has no direct mapping; only the subclass axiom
        // Sensor ⊑ MonitoringDevice (and the sensor-kind taxonomy below it)
        // makes the data reachable.
        let results = p
            .query_static("SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }")
            .unwrap();
        assert_eq!(results.len(), 60);
    }

    #[test]
    fn query_static_ask_and_errors() {
        let p = platform();
        assert_eq!(
            p.query_static("ASK { ?s a sie:Sensor }").unwrap().as_bool(),
            Some(true)
        );
        let err = p.query_static("SELECT ?x WHERE { ?x a }").unwrap_err();
        assert!(err.contains("line"), "positioned error: {err}");
    }

    #[test]
    fn query_static_distributed_matches_single_node() {
        let p = platform();
        let text = "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }";
        let single = p.query_static(text).unwrap();
        for workers in [1usize, 2, 4] {
            let distributed = p.query_static_distributed(text, workers).unwrap();
            let canon = |r: &SparqlResults| {
                let mut rows: Vec<String> = r.rows().iter().map(|row| format!("{row:?}")).collect();
                rows.sort();
                rows
            };
            assert_eq!(canon(&single), canon(&distributed), "workers={workers}");
        }
        assert!(p
            .query_static_distributed("ASK { ?s a sie:Sensor }", 0)
            .is_err());
    }

    #[test]
    fn bgp_cache_hits_and_insert_invalidation() {
        let p = platform();
        let text = "SELECT ?t WHERE { ?t a sie:Turbine }";
        let first = p.query_static(text).unwrap();
        let (_, stats) = p.query_static_with_stats(text).unwrap();
        assert!(stats.cache_hits >= 1, "second run hits: {stats:?}");
        let hits_before = p.dashboard().bgp_cache_hits;
        assert!(hits_before >= 1);

        // A relational INSERT invalidates: a new turbine row appears in the
        // next answer instead of the stale cached set.
        let turbines = p.db().table("turbines").unwrap().clone();
        let mut row: Vec<Value> = turbines.rows[0].clone();
        let id_col = turbines.schema.index_of("tid").expect("turbines.tid");
        row[id_col] = Value::Int(99_999);
        p.insert_static("turbines", vec![row]).unwrap();
        let after = p.query_static(text).unwrap();
        assert_eq!(after.len(), first.len() + 1, "inserted turbine is visible");
        assert_eq!(p.dashboard().bgp_cache_invalidations, 1);
    }

    #[test]
    fn query_static_lands_on_the_dashboard() {
        let p = platform();
        p.query_static("SELECT ?s WHERE { ?s a sie:Sensor } LIMIT 5")
            .unwrap();
        p.query_static("ASK { ?s a sie:Sensor }").unwrap();
        let dash = p.dashboard();
        assert_eq!(dash.static_queries.len(), 2);
        assert_eq!(dash.static_queries[0].rows, 5);
        assert!(dash.static_queries[0].sql_disjuncts >= 1);
        assert!(dash.render().contains("static SPARQL"));
    }

    #[test]
    fn bootstrap_deployment_path() {
        let deployment = SiemensDeployment::small();
        let schema = optique_siemens::fleet::fleet_schema();
        let p = OptiquePlatform::deploy_with_bootstrap(
            deployment.db,
            &schema,
            &BootstrapSettings {
                vocab_ns: optique_siemens::SIE_NS.into(),
                data_ns: optique_siemens::DATA_NS.into(),
                mandatory_participation: true,
            },
            deployment.namespaces,
            deployment.stream_to_rdf,
            Some(&deployment.ontology),
            Some(deployment.mappings),
        )
        .unwrap();
        // Both bootstrapped and curated terms are mapped.
        assert!(p.mappings.len() > 13);
        let id = p.register_starql(optique_starql::FIGURE1).unwrap();
        let _ = p.tick_all(609_000).unwrap();
        assert!(p.deregister(id));
    }
}
