//! ExaStream-backed federation — **one** fragment pipeline for static
//! queries *and* continuous-query windows.
//!
//! The static pipeline ([`optique_sparql::StaticPipeline`]) splits each
//! unfolded `UNION ALL` into per-disjunct [`PlanFragment`]s, and the
//! STARQL engine compiles each tick's window to a window-sliced fragment
//! (`ContinuousQuery::tick_via`); this module is the [`FragmentExecutor`]
//! that ships both through the same gateway/scheduler/exchange machinery.
//! Stream tables always hash-partition on their stream key
//! ([`Federation::for_deployment`]) so window fragments **scatter** —
//! every worker slices its shard of the window — instead of replicating
//! the stream onto one node. Two catalog layouts for the static tables:
//!
//! * **replicated** — every worker shares the full relational catalog;
//!   fragments are placed one-per-worker, LPT by cost.
//! * **partitioned** — named tables are hash-partitioned across workers
//!   (each worker holds one shard), everything else replicated. Fragments
//!   execute down a per-fragment fallback ladder — **sharded → replicated
//!   → coordinator**:
//!
//!   1. fragments whose partitioned scans are shard-sound (one occurrence,
//!      or several **co-partitioned** on their keys) become **scatter**
//!      fragments: every worker scans its shard and the partials
//!      concatenate on gather. Semi-join `IN`-lists over key-derived
//!      columns additionally prune the scatter to the shards that can hold
//!      matching keys ([`PlanFragment::shard_plan`]);
//!   2. fragments reading only replicated tables run on one worker's
//!      replicas (placed LPT by cost);
//!   3. everything else (non-co-partitioned multi-shard joins,
//!      non-decomposable shapes) falls back to the coordinator's full
//!      catalog, which is always correct.
//!
//! [`Federation::auto_partitioned`] makes the partitioned layout the
//! smart default: a partition-key advisor scores every term-map column of
//! the mapping catalog (join frequency × distinctness × evenness, from the
//! [`StatsCatalog`]'s sampled statistics) and shards each qualifying table
//! on its best key, falling back to full replication when nothing
//! qualifies.

use std::sync::Arc;

use optique_exastream::cluster::hash_partition;
use optique_exastream::{Cluster, Gateway, StaticFragment};
use optique_mapping::MappingCatalog;
use optique_relational::{
    shard_compatibility, Database, NoveltyScope, PartitionSpec, PlanFragment, ShardCompatibility,
    StatsCatalog, Table,
};
use optique_sparql::{FragmentExecutor, FragmentRound};

/// Tables smaller than this never partition under
/// [`Federation::auto_partitioned`]: sharding a tiny table buys no
/// parallelism and costs every scan a scatter round.
pub const MIN_PARTITION_ROWS: usize = 48;

/// Which worker-pool layout the platform builds for distributed static
/// queries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FederationTopology {
    /// Advisor-picked hash partitioning ([`Federation::auto_partitioned`]);
    /// falls back to full replication when no table qualifies.
    #[default]
    AutoPartitioned,
    /// Full replication: every worker holds the whole catalog.
    Replicated,
}

/// A static-query worker pool over the deployment's relational sources.
pub struct Federation {
    gateway: Arc<Gateway>,
    /// The full (unpartitioned) catalog, for fragments that cannot run
    /// shard-locally.
    coordinator: Arc<Database>,
    workers: usize,
    /// `(table, key_column)` pairs hash-partitioned across the workers.
    partition: Vec<(String, String)>,
}

impl Federation {
    /// A federation whose workers all share the full catalog.
    pub fn replicated(db: Arc<Database>, workers: usize) -> Self {
        let cluster = Arc::new(Cluster::replicated(workers, Arc::clone(&db)));
        Federation {
            gateway: Gateway::new(cluster),
            coordinator: db,
            workers,
            partition: Vec::new(),
        }
    }

    /// A federation that hash-partitions each `(table, key_column)` in
    /// `partition` across the workers and replicates every other table.
    pub fn partitioned(
        db: Arc<Database>,
        workers: usize,
        partition: &[(String, String)],
    ) -> Result<Self, String> {
        // Shard each partitioned table by its key column.
        let mut shard_sets: Vec<(String, Vec<Table>)> = Vec::with_capacity(partition.len());
        let mut key_columns: std::collections::HashMap<String, usize> = Default::default();
        for (table, key) in partition {
            let t = db.table(table).map_err(|e| e.to_string())?;
            let col = t
                .schema
                .index_of(key)
                .ok_or_else(|| format!("no column {key} on partitioned table {table}"))?;
            key_columns.insert(table.clone(), col);
            shard_sets.push((table.clone(), hash_partition(t, col, workers)));
        }
        let cluster = Arc::new(Cluster::provision(workers, |id| {
            let mut worker_db = (*db).clone();
            for (table, shards) in &shard_sets {
                worker_db.put_table(table.clone(), shards[id].clone());
            }
            // A partitioned worker sees only the novelty-overlay rows that
            // hash to its shard for the keyed tables (replicated tables'
            // overlay rows stay fully visible) — a scatter round then
            // covers each appended row exactly once, like the base shards.
            worker_db.set_novelty_scope(Some(Arc::new(NoveltyScope {
                shard: id,
                shards: workers,
                keys: key_columns.clone(),
            })));
            worker_db
        }));
        Ok(Federation {
            gateway: Gateway::new(cluster),
            coordinator: db,
            workers,
            partition: partition.to_vec(),
        })
    }

    /// The smart default: asks the partition-key advisor
    /// ([`optique_relational::advise_partition_keys`]) to score every
    /// term-map column the mapping catalog joins through and shards each
    /// qualifying table on its best key. Falls back to full replication
    /// when nothing qualifies (tiny tables, skewed keys) or only one
    /// worker exists (one shard is the whole table anyway).
    pub fn auto_partitioned(
        db: Arc<Database>,
        workers: usize,
        stats: &StatsCatalog,
        mappings: &MappingCatalog,
    ) -> Self {
        Federation::for_deployment(
            db,
            workers,
            FederationTopology::AutoPartitioned,
            stats,
            mappings,
            &[],
        )
    }

    /// The deployment-wide constructor the platform uses: static tables
    /// partition per `topology` (advisor-picked keys, or none under
    /// [`FederationTopology::Replicated`]), while the `(stream table,
    /// stream key)` pairs in `streams` **always** hash-partition — window
    /// fragments must scatter, not replicate, whatever the static layout.
    /// Streams unknown to the catalog (or with a missing key column) are
    /// skipped rather than failing pool construction; their window
    /// fragments then run placed on a replica, which stays correct.
    pub fn for_deployment(
        db: Arc<Database>,
        workers: usize,
        topology: FederationTopology,
        stats: &StatsCatalog,
        mappings: &MappingCatalog,
        streams: &[(String, String)],
    ) -> Self {
        let mut keys: Vec<(String, String)> = Vec::new();
        if workers > 1 {
            if topology == FederationTopology::AutoPartitioned {
                let usage = mappings.term_column_usage();
                keys = optique_relational::advise_partition_keys(stats, &usage, MIN_PARTITION_ROWS);
            }
            for (stream, key) in streams {
                let resolvable = db
                    .table(stream)
                    .is_ok_and(|t| t.schema.index_of(key).is_some());
                if resolvable {
                    // The stream key wins over an advisor pick for the
                    // same table: window fragments restrict and route on
                    // the stream key, so partitioning on anything else
                    // would silently disable stream-shard pruning.
                    keys.retain(|(t, _)| t != stream);
                    keys.push((stream.clone(), key.clone()));
                }
            }
        }
        if !keys.is_empty() {
            if let Ok(federation) = Federation::partitioned(Arc::clone(&db), workers, &keys) {
                return federation;
            }
        }
        Federation::replicated(db, workers)
    }

    /// Summed prepared-plan cache hits and misses across the pool's
    /// workers (dashboard observability).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.gateway.plan_cache_stats()
    }

    /// Summed pane-store hits and misses across the pool's workers.
    pub fn pane_stats(&self) -> (u64, u64) {
        self.gateway.pane_stats()
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The catalog snapshot this pool was sharded from. Pool caches compare
    /// it by pointer identity against the current platform snapshot to
    /// detect pools built over a superseded catalog.
    pub fn catalog(&self) -> &Arc<Database> {
        &self.coordinator
    }

    /// The `(table, key_column)` pairs partitioned across the workers
    /// (empty for replicated pools).
    pub fn partition(&self) -> &[(String, String)] {
        &self.partition
    }

    /// Decides how a fragment may execute against this federation's layout.
    fn classify(&self, sql: &str) -> Classification {
        if self.partition.is_empty() {
            return Classification::Placed;
        }
        // Unparseable SQL cannot be classified; the coordinator needs no
        // classification and will surface the real error.
        let Ok(statement) = optique_relational::parse_select(sql) else {
            return Classification::Coordinator;
        };
        match shard_compatibility(&statement, &self.partition) {
            ShardCompatibility::Unpartitioned => Classification::Placed,
            ShardCompatibility::Scatter {
                dedup,
                table,
                column,
            } => {
                let column_type = self
                    .coordinator
                    .table(&table)
                    .ok()
                    .and_then(|t| {
                        let idx = t.schema.index_of(&column)?;
                        Some(t.schema.columns()[idx].ty)
                    })
                    .unwrap_or(optique_relational::ColumnType::Any);
                Classification::Scatter {
                    dedup,
                    spec: PartitionSpec {
                        table,
                        column,
                        column_type,
                    },
                    // The parse rides along so shard routing in the gateway
                    // reuses it instead of re-parsing the same text.
                    statement: Box::new(statement),
                }
            }
            ShardCompatibility::Incompatible => Classification::Coordinator,
        }
    }
}

/// How one fragment executes: on a single worker's replica, scattered
/// across every shard, or on the coordinator's full catalog.
enum Classification {
    Placed,
    Scatter {
        /// The statement is DISTINCT: shard-local dedup cannot see
        /// cross-shard duplicates, so the gathered concat is deduped.
        dedup: bool,
        /// Routing metadata for shard-pruned scatter.
        spec: PartitionSpec,
        /// The fragment's SQL, parsed once during classification.
        statement: Box<optique_relational::SelectStatement>,
    },
    Coordinator,
}

/// Removes duplicate rows in place, keeping first occurrences.
fn dedup_rows(table: &mut Table) {
    let mut seen: std::collections::HashSet<Vec<optique_relational::Value>> = Default::default();
    table.rows.retain(|row| seen.insert(row.clone()));
}

impl FragmentExecutor for Federation {
    fn execute(&self, fragments: Vec<PlanFragment>) -> Result<FragmentRound, String> {
        // Classify fragments down the ladder: sharded scatter, placed on a
        // replica, or coordinator fallback (several non-co-partitioned
        // occurrences — a shard-local join would be incomplete — or a
        // non-decomposable statement shape).
        let mut shipped: Vec<StaticFragment> = Vec::new();
        // Slot of each shipped fragment, plus whether its gathered concat
        // needs a cross-shard dedup (scattered DISTINCT statements).
        let mut shipped_slots: Vec<(usize, bool)> = Vec::new();
        let mut results: Vec<Option<Result<Table, String>>> =
            fragments.iter().map(|_| None).collect();
        let mut coordinator_fallbacks = 0usize;
        let mut partitioned_fragments = 0usize;
        let mut replicated_fallbacks = 0usize;
        for (slot, fragment) in fragments.into_iter().enumerate() {
            // Pane-combine fragments route on their probe, not their SQL:
            // a partitioned stream scatters (each worker combines its
            // shard's panes; per-key partials concatenate on gather), any
            // other layout places on one worker's full replica — answering
            // on every replica would multiply each group by the pool size.
            if let Some(probe) = &fragment.pane {
                if self.partition.iter().any(|(t, _)| t == &probe.stream) {
                    partitioned_fragments += 1;
                    shipped.push(StaticFragment::scattered(fragment));
                } else {
                    if !self.partition.is_empty() {
                        replicated_fallbacks += 1;
                    }
                    shipped.push(StaticFragment::placed(fragment));
                }
                shipped_slots.push((slot, false));
                continue;
            }
            match self.classify(&fragment.sql) {
                Classification::Placed => {
                    if !self.partition.is_empty() {
                        replicated_fallbacks += 1;
                    }
                    shipped.push(StaticFragment::placed(fragment));
                    shipped_slots.push((slot, false));
                }
                Classification::Scatter {
                    dedup,
                    spec,
                    statement,
                } => {
                    partitioned_fragments += 1;
                    shipped.push(
                        StaticFragment::scattered(fragment.with_partition(spec))
                            .with_statement(*statement),
                    );
                    shipped_slots.push((slot, dedup));
                }
                Classification::Coordinator => {
                    coordinator_fallbacks += 1;
                    // `PlanFragment::execute` honors semi-join restrictions
                    // on the fallback path too.
                    results[slot] = Some(
                        fragment
                            .execute(&self.coordinator)
                            .map_err(|e| e.to_string()),
                    );
                }
            }
        }
        let round = self.gateway.run_static_round(&shipped);
        for ((slot, dedup), outcome) in shipped_slots.into_iter().zip(round.tables) {
            let mut outcome = outcome.map_err(|e| e.to_string());
            if dedup {
                if let Ok(table) = &mut outcome {
                    dedup_rows(table);
                }
            }
            results[slot] = Some(outcome);
        }
        let tables = results
            .into_iter()
            .map(|slot| slot.expect("every fragment executed"))
            .collect::<Result<Vec<Table>, String>>()?;
        Ok(FragmentRound {
            tables,
            coordinator_fallbacks,
            partitioned_fragments,
            replicated_fallbacks,
            shards_pruned: round.shards_pruned,
            plan_cache_hits: round.plan_cache_hits,
            plan_cache_misses: round.plan_cache_misses,
            pane_hits: round.pane_hits,
            pane_misses: round.pane_misses,
            // Worker-side spans ride back with the round; a traced pipeline
            // grafts them under its exec span (untraced callers drop them).
            spans: round.spans,
        })
    }

    fn workers(&self) -> usize {
        self.workers
    }

    /// A partitioned federation slices key-derived `IN`-lists per shard
    /// (`PlanFragment::shard_plan`), so it accepts lists up to
    /// `base × workers`: in the common case — a scatter fragment restricted
    /// through its partition key — each worker sees only its ~`base`-value
    /// slice. Fragments on the other rungs (or restricted on non-key
    /// columns) still ship the whole list; that costs wire bytes, never
    /// answers. Replicated pools ship every list whole and keep the base
    /// budget.
    fn max_restriction_values(&self, base: usize) -> usize {
        if self.partition.is_empty() {
            base
        } else {
            base.saturating_mul(self.workers)
        }
    }
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Federation({} workers, {} partitioned tables)",
            self.workers,
            self.partition.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{table::table_of, ColumnType, Value};

    fn db() -> Arc<Database> {
        let mut db = Database::new();
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                    .collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int)],
                (0..7).map(|i| vec![Value::Int(i)]).collect(),
            )
            .unwrap(),
        );
        Arc::new(db)
    }

    fn canon(t: &Table) -> Vec<Vec<Value>> {
        let mut rows = t.rows.clone();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    fn sensors_by_sid(db: Arc<Database>, workers: usize) -> Federation {
        Federation::partitioned(db, workers, &[("sensors".to_string(), "sid".to_string())]).unwrap()
    }

    #[test]
    fn replicated_execution_matches_local() {
        let db = db();
        let federation = Federation::replicated(Arc::clone(&db), 4);
        let sql = "SELECT sid FROM sensors WHERE tid = 3";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let round = federation
            .execute(vec![PlanFragment::new(0, sql, 1.0)])
            .unwrap();
        assert_eq!(canon(&round.tables[0]), canon(&local));
        // Placed execution on a replicated pool is the design, not a
        // fallback rung.
        assert_eq!(round.replicated_fallbacks, 0);
        assert_eq!(round.partitioned_fragments, 0);
    }

    #[test]
    fn partitioned_scan_covers_all_shards() {
        let db = db();
        let federation = sensors_by_sid(Arc::clone(&db), 4);
        let sql = "SELECT sid FROM sensors";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let round = federation
            .execute(vec![PlanFragment::new(0, sql, 1.0)])
            .unwrap();
        assert_eq!(round.tables[0].len(), 100);
        assert_eq!(canon(&round.tables[0]), canon(&local));
        assert_eq!(round.partitioned_fragments, 1);
    }

    #[test]
    fn partitioned_join_with_replica_is_complete() {
        let db = db();
        let federation = sensors_by_sid(Arc::clone(&db), 4);
        // One partitioned occurrence + one replica: scatter is sound.
        let sql = "SELECT s.sid FROM sensors AS s JOIN turbines AS t ON s.tid = t.tid";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let results = federation
            .execute(vec![PlanFragment::new(0, sql, 2.0)])
            .unwrap()
            .tables;
        assert_eq!(canon(&results[0]), canon(&local));
    }

    #[test]
    fn co_partitioned_self_join_scatters() {
        let db = db();
        let federation = sensors_by_sid(Arc::clone(&db), 4);
        // Joined on the partition key: matching rows share a shard, so the
        // scatter is complete — no coordinator fallback needed.
        let sql = "SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.sid = b.sid";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let round = federation
            .execute(vec![PlanFragment::new(0, sql, 4.0)])
            .unwrap();
        assert_eq!(round.coordinator_fallbacks, 0, "key join scatters");
        assert_eq!(round.partitioned_fragments, 1);
        assert_eq!(canon(&round.tables[0]), canon(&local));
    }

    #[test]
    fn partitioned_self_join_falls_back_to_coordinator() {
        let db = db();
        let federation = sensors_by_sid(Arc::clone(&db), 4);
        // Two partitioned occurrences joined on a non-partition key: a
        // shard-local join would miss cross-shard pairs; the coordinator
        // path must keep it complete.
        let sql = "SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.tid = b.tid";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let round = federation
            .execute(vec![PlanFragment::new(0, sql, 4.0)])
            .unwrap();
        assert_eq!(round.coordinator_fallbacks, 1, "non-key join falls back");
        let results = round.tables;
        assert_eq!(canon(&results[0]), canon(&local));
    }

    #[test]
    fn classification_counts_table_refs_not_text() {
        let db = db();
        let federation = sensors_by_sid(db, 2);
        assert!(matches!(
            federation.classify("SELECT sid FROM sensors"),
            Classification::Scatter { dedup: false, .. }
        ));
        assert!(matches!(
            federation.classify("SELECT DISTINCT sid FROM sensors"),
            Classification::Scatter { dedup: true, .. }
        ));
        // Two partitioned references joined off-key: shard-local joins
        // would be incomplete.
        assert!(matches!(
            federation
                .classify("SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.tid = b.tid"),
            Classification::Coordinator
        ));
        // A partitioned-table name inside a string literal is data, not a
        // scan: this fragment reads only the replicated `turbines` table.
        assert!(matches!(
            federation.classify("SELECT tid FROM turbines WHERE 'sensors' = 'sensors'"),
            Classification::Placed
        ));
        // Aggregates / GROUP BY / LIMIT are not concat-decomposable.
        for sql in [
            "SELECT COUNT(*) AS n FROM sensors",
            "SELECT tid, COUNT(*) AS n FROM sensors GROUP BY tid",
            "SELECT sid FROM sensors LIMIT 3",
            "SELECT sid FROM sensors ORDER BY sid",
            "SELECT sid FROM (SELECT sid FROM sensors) AS s \
             UNION ALL SELECT sid FROM sensors",
        ] {
            assert!(
                matches!(federation.classify(sql), Classification::Coordinator),
                "{sql} must fall back to the coordinator"
            );
        }
        // Unparseable SQL → coordinator fallback (surfaces the real error).
        assert!(matches!(
            federation.classify("SELECT FROM"),
            Classification::Coordinator
        ));
        // The scatter spec carries the key column and its type.
        if let Classification::Scatter { spec, .. } = federation.classify("SELECT sid FROM sensors")
        {
            assert_eq!(spec.table, "sensors");
            assert_eq!(spec.column, "sid");
            assert_eq!(spec.column_type, ColumnType::Int);
        } else {
            panic!("expected scatter");
        }
    }

    /// Non-decomposable fragments over a partitioned table must return the
    /// *global* result, not per-shard partials.
    #[test]
    fn aggregates_over_partitioned_tables_stay_global() {
        let db = db();
        let federation = sensors_by_sid(db, 4);
        let round = federation
            .execute(vec![
                PlanFragment::new(0, "SELECT COUNT(*) AS n FROM sensors", 1.0),
                PlanFragment::new(1, "SELECT sid FROM sensors LIMIT 3", 1.0),
                PlanFragment::new(2, "SELECT DISTINCT tid FROM sensors", 1.0),
            ])
            .unwrap();
        // COUNT(*) and LIMIT fall back; DISTINCT scatters with gather-dedup.
        assert_eq!(round.coordinator_fallbacks, 2);
        let results = round.tables;
        assert_eq!(
            results[0].rows,
            vec![vec![Value::Int(100)]],
            "one global count"
        );
        assert_eq!(results[1].len(), 3, "global LIMIT, not 4×3");
        assert_eq!(results[2].len(), 7, "DISTINCT deduped across shards");
    }

    /// A literal containing a partitioned table's name must not force
    /// scatter execution (which would duplicate replicated rows per worker).
    #[test]
    fn literal_mentions_do_not_scatter() {
        let db = db();
        let federation = sensors_by_sid(Arc::clone(&db), 4);
        let sql = "SELECT tid FROM turbines WHERE 'sensors' = 'sensors'";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let round = federation
            .execute(vec![PlanFragment::new(0, sql, 1.0)])
            .unwrap();
        assert_eq!(
            round.tables[0].len(),
            local.len(),
            "scatter would return 4x the rows"
        );
        // In a partitioned pool, a placed fragment is the ladder's middle
        // rung.
        assert_eq!(round.replicated_fallbacks, 1);
    }

    /// Semi-join `IN`-lists over the partition key prune the scatter to the
    /// shards that can hold matching rows — without changing the answer.
    #[test]
    fn keyed_semi_join_prunes_shards() {
        use optique_relational::SemiJoin;
        let db = db();
        let federation = sensors_by_sid(Arc::clone(&db), 8);
        let fragment = PlanFragment::new(0, "SELECT sid FROM sensors", 1.0)
            .with_semi_joins(vec![SemiJoin::new("sid", vec![Value::Int(5)])]);
        let round = federation.execute(vec![fragment]).unwrap();
        assert!(round.shards_pruned >= 6, "8 shards, ≤ 2 targets: {round:?}");
        assert_eq!(round.tables[0].rows, vec![vec![Value::Int(5)]]);
    }

    /// The advisor partitions the 100-row sensors table on `sid` (unique,
    /// even, most-joined) and leaves the 7-row turbines table replicated.
    #[test]
    fn auto_partitioned_picks_keys_from_stats_and_mappings() {
        use optique_mapping::{MappingAssertion, TermMap};
        let db = db();
        let stats = StatsCatalog::analyze(&db);
        let mut mappings = MappingCatalog::new();
        mappings
            .add(MappingAssertion::class(
                "sensor",
                optique_rdf::Iri::new("http://x/Sensor"),
                "SELECT sid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
            ))
            .unwrap();
        mappings
            .add(MappingAssertion::property(
                "at",
                optique_rdf::Iri::new("http://x/at"),
                "SELECT sid, tid FROM sensors",
                TermMap::template("http://x/sensor/{sid}"),
                TermMap::template("http://x/turbine/{tid}"),
            ))
            .unwrap();
        mappings
            .add(MappingAssertion::class(
                "turbine",
                optique_rdf::Iri::new("http://x/Turbine"),
                "SELECT tid FROM turbines",
                TermMap::template("http://x/turbine/{tid}"),
            ))
            .unwrap();

        let federation = Federation::auto_partitioned(Arc::clone(&db), 4, &stats, &mappings);
        assert_eq!(
            federation.partition(),
            &[("sensors".to_string(), "sid".to_string())],
            "sensors shard on sid; turbines (7 rows) stay replicated"
        );

        // One worker, or no qualifying table: plain replication.
        let single = Federation::auto_partitioned(Arc::clone(&db), 1, &stats, &mappings);
        assert!(single.partition().is_empty());
        let no_stats =
            Federation::auto_partitioned(Arc::clone(&db), 4, &StatsCatalog::new(), &mappings);
        assert!(no_stats.partition().is_empty());
    }

    /// Stream tables partition unconditionally under `for_deployment`:
    /// window fragments scatter even when the advisor shards nothing.
    #[test]
    fn for_deployment_always_partitions_streams() {
        use optique_relational::WindowSlice;
        let mut db = Database::new();
        db.put_table(
            "S_M",
            table_of(
                "S_M",
                &[("ts", ColumnType::Timestamp), ("sid", ColumnType::Int)],
                (0..40)
                    .map(|i| vec![Value::Timestamp(i * 100), Value::Int(i % 8)])
                    .collect(),
            )
            .unwrap(),
        );
        let db = Arc::new(db);
        let streams = [("S_M".to_string(), "sid".to_string())];
        let federation = Federation::for_deployment(
            Arc::clone(&db),
            4,
            FederationTopology::Replicated,
            &StatsCatalog::new(),
            &MappingCatalog::new(),
            &streams,
        );
        assert_eq!(federation.partition(), &streams);

        // A window fragment over the partitioned stream scatters, and the
        // gathered rows are exactly the local slice.
        let fragment =
            PlanFragment::new(0, "SELECT ts, sid FROM S_M", 1.0).with_window(WindowSlice {
                column: "ts".into(),
                open_ms: 900,
                close_ms: 1900,
            });
        let local = fragment.execute(&db).unwrap();
        let round = federation.execute(vec![fragment]).unwrap();
        assert_eq!(round.partitioned_fragments, 1, "the window scattered");
        assert_eq!(canon(&round.tables[0]), canon(&local));
        assert_eq!(local.len(), 10);

        // Unknown streams are skipped, not fatal.
        let lenient = Federation::for_deployment(
            Arc::clone(&db),
            4,
            FederationTopology::Replicated,
            &StatsCatalog::new(),
            &MappingCatalog::new(),
            &[("nope".to_string(), "sid".to_string())],
        );
        assert!(lenient.partition().is_empty());
        // One worker: a single shard is the whole stream anyway.
        let single = Federation::for_deployment(
            db,
            1,
            FederationTopology::Replicated,
            &StatsCatalog::new(),
            &MappingCatalog::new(),
            &streams,
        );
        assert!(single.partition().is_empty());
    }

    /// When the advisor picks a key for a table that is also a registered
    /// stream, the stream key wins: window routing restricts on it, so
    /// partitioning on the advisor's column would silently disable
    /// stream-shard pruning.
    #[test]
    fn stream_key_overrides_advisor_pick() {
        use optique_mapping::{MappingAssertion, TermMap};
        let mut db = Database::new();
        db.put_table(
            "S_M",
            table_of(
                "S_M",
                &[
                    ("ts", ColumnType::Timestamp),
                    ("sid", ColumnType::Int),
                    ("other", ColumnType::Int),
                ],
                (0..64)
                    .map(|i| vec![Value::Timestamp(i * 100), Value::Int(i % 16), Value::Int(i)])
                    .collect(),
            )
            .unwrap(),
        );
        let db = Arc::new(db);
        let stats = StatsCatalog::analyze(&db);
        // The mapping joins through `other`, so the advisor would shard
        // S_M on it.
        let mut mappings = MappingCatalog::new();
        mappings
            .add(MappingAssertion::class(
                "event",
                optique_rdf::Iri::new("http://x/Event"),
                "SELECT other FROM S_M",
                TermMap::template("http://x/event/{other}"),
            ))
            .unwrap();
        let advisor_only = Federation::for_deployment(
            Arc::clone(&db),
            4,
            FederationTopology::AutoPartitioned,
            &stats,
            &mappings,
            &[],
        );
        assert_eq!(
            advisor_only.partition(),
            &[("S_M".to_string(), "other".to_string())],
            "precondition: the advisor picks `other`"
        );
        let with_stream = Federation::for_deployment(
            db,
            4,
            FederationTopology::AutoPartitioned,
            &stats,
            &mappings,
            &[("S_M".to_string(), "sid".to_string())],
        );
        assert_eq!(
            with_stream.partition(),
            &[("S_M".to_string(), "sid".to_string())],
            "the stream key replaces the advisor pick"
        );
    }

    /// A stream-key semi-join on a scattered window fragment prunes the
    /// shards that hold no admissible key — the stream side of the
    /// stream-static join pushdown.
    #[test]
    fn restricted_window_fragment_prunes_stream_shards() {
        use optique_relational::{SemiJoin, WindowSlice};
        let mut db = Database::new();
        db.put_table(
            "S_M",
            table_of(
                "S_M",
                &[("ts", ColumnType::Timestamp), ("sid", ColumnType::Int)],
                (0..80)
                    .map(|i| vec![Value::Timestamp(i * 10), Value::Int(i % 16)])
                    .collect(),
            )
            .unwrap(),
        );
        let db = Arc::new(db);
        let federation = Federation::for_deployment(
            Arc::clone(&db),
            8,
            FederationTopology::Replicated,
            &StatsCatalog::new(),
            &MappingCatalog::new(),
            &[("S_M".to_string(), "sid".to_string())],
        );
        let fragment = PlanFragment::new(0, "SELECT ts, sid FROM S_M", 1.0)
            .with_window(WindowSlice {
                column: "ts".into(),
                open_ms: -1,
                close_ms: 1000,
            })
            .with_semi_joins(vec![SemiJoin::new("sid", vec![Value::Int(3)])]);
        let local = fragment.execute(&db).unwrap();
        let round = federation.execute(vec![fragment]).unwrap();
        assert!(round.shards_pruned >= 6, "8 shards, ≤ 2 targets: {round:?}");
        assert_eq!(canon(&round.tables[0]), canon(&local));
        assert!(!round.tables[0].rows.is_empty());
    }

    /// A scatter round pinned at a novelty epoch gathers each overlay row
    /// exactly once: partitioned workers slice the overlay by the same
    /// hash as the base shards, while replicated pools (one worker answers)
    /// see the full overlay.
    #[test]
    fn scatter_covers_novelty_rows_exactly_once() {
        use optique_relational::NoveltyOverlay;
        let db = db();
        let overlay = NoveltyOverlay::empty().with_rows(
            "sensors",
            (100..110)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                .collect(),
        );
        let pinned =
            || PlanFragment::new(0, "SELECT sid FROM sensors", 1.0).at_epoch(overlay.epoch());

        let partitioned = sensors_by_sid(Arc::clone(&db), 4);
        let round = partitioned.execute(vec![pinned()]).unwrap();
        assert_eq!(round.partitioned_fragments, 1, "the scan scattered");
        let distinct: std::collections::HashSet<i64> = round.tables[0]
            .rows
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(round.tables[0].len(), 110, "no overlay row duplicated");
        assert_eq!(distinct.len(), 110, "no overlay row missed");

        let replicated = Federation::replicated(Arc::clone(&db), 4);
        let round = replicated.execute(vec![pinned()]).unwrap();
        assert_eq!(round.tables[0].len(), 110);
    }

    /// The restriction budget widens only for pools that can slice lists
    /// per shard.
    #[test]
    fn restriction_budget_scales_with_partitioning() {
        let db = db();
        let replicated = Federation::replicated(Arc::clone(&db), 4);
        assert_eq!(replicated.max_restriction_values(256), 256);
        let partitioned = sensors_by_sid(db, 4);
        assert_eq!(partitioned.max_restriction_values(256), 1024);
    }
}
