//! ExaStream-backed federation of the static SPARQL pipeline.
//!
//! The static pipeline ([`optique_sparql::StaticPipeline`]) splits each
//! unfolded `UNION ALL` into per-disjunct [`PlanFragment`]s; this module is
//! the [`FragmentExecutor`] that ships those fragments to an ExaStream
//! worker pool through the gateway/scheduler/exchange machinery the stream
//! side already uses. Two catalog layouts:
//!
//! * **replicated** — every worker shares the full relational catalog;
//!   fragments are placed one-per-worker, LPT by cost.
//! * **partitioned** — named tables are hash-partitioned across workers
//!   (each worker holds one shard), everything else replicated. Fragments
//!   scanning exactly one partitioned source become **scatter** fragments
//!   (every worker scans its shard; partials concatenate on gather);
//!   fragments joining several partitioned occurrences — where shard-local
//!   joins would miss cross-shard pairs — fall back to the coordinator's
//!   full catalog, which is always correct.

use std::sync::Arc;

use optique_exastream::cluster::hash_partition;
use optique_exastream::{Cluster, Gateway, StaticFragment};
use optique_relational::parser::{Projection, TableRef};
use optique_relational::{Database, PlanFragment, SelectStatement, Table};
use optique_sparql::{FragmentExecutor, FragmentRound};

/// A static-query worker pool over the deployment's relational sources.
pub struct StaticFederation {
    gateway: Arc<Gateway>,
    /// The full (unpartitioned) catalog, for fragments that cannot run
    /// shard-locally.
    coordinator: Arc<Database>,
    workers: usize,
    /// Tables hash-partitioned across the workers.
    partitioned: Vec<String>,
}

impl StaticFederation {
    /// A federation whose workers all share the full catalog.
    pub fn replicated(db: Arc<Database>, workers: usize) -> Self {
        let cluster = Arc::new(Cluster::replicated(workers, Arc::clone(&db)));
        StaticFederation {
            gateway: Gateway::new(cluster),
            coordinator: db,
            workers,
            partitioned: Vec::new(),
        }
    }

    /// A federation that hash-partitions each `(table, key_column)` in
    /// `partition` across the workers and replicates every other table.
    pub fn partitioned(
        db: Arc<Database>,
        workers: usize,
        partition: &[(String, String)],
    ) -> Result<Self, String> {
        // Shard each partitioned table by its key column.
        let mut shard_sets: Vec<(String, Vec<Table>)> = Vec::with_capacity(partition.len());
        for (table, key) in partition {
            let t = db.table(table).map_err(|e| e.to_string())?;
            let col = t
                .schema
                .index_of(key)
                .ok_or_else(|| format!("no column {key} on partitioned table {table}"))?;
            shard_sets.push((table.clone(), hash_partition(t, col, workers)));
        }
        let cluster = Arc::new(Cluster::provision(workers, |id| {
            let mut worker_db = (*db).clone();
            for (table, shards) in &shard_sets {
                worker_db.put_table(table.clone(), shards[id].clone());
            }
            worker_db
        }));
        Ok(StaticFederation {
            gateway: Gateway::new(cluster),
            coordinator: db,
            workers,
            partitioned: partition.iter().map(|(t, _)| t.clone()).collect(),
        })
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tables partitioned across the workers.
    pub fn partitioned_tables(&self) -> &[String] {
        &self.partitioned
    }

    /// Decides how a fragment may execute against this federation's layout.
    fn classify(&self, sql: &str) -> Classification {
        if self.partitioned.is_empty() {
            return Classification::Placed;
        }
        // Unparseable SQL cannot be classified; the coordinator needs no
        // classification and will surface the real error.
        let Ok(statement) = optique_relational::parse_select(sql) else {
            return Classification::Coordinator;
        };
        let mut count = 0usize;
        count_partitioned_refs(&statement, &self.partitioned, &mut count);
        match count {
            0 => Classification::Placed,
            // Exactly one partitioned scan *and* a concat-decomposable
            // statement shape: per-shard results union to the global
            // result. Aggregates / GROUP BY / LIMIT / ORDER BY are not
            // decomposable by concatenation; DISTINCT is, up to cross-shard
            // duplicates, which the gather dedups.
            1 if scatter_decomposable(&statement) => Classification::Scatter {
                dedup: statement.distinct,
            },
            _ => Classification::Coordinator,
        }
    }
}

/// How one fragment executes: on a single worker's replica, scattered
/// across every shard, or on the coordinator's full catalog.
enum Classification {
    Placed,
    Scatter {
        /// The statement is DISTINCT: shard-local dedup cannot see
        /// cross-shard duplicates, so the gathered concat is deduped.
        dedup: bool,
    },
    Coordinator,
}

/// True when concatenating per-shard results of `statement` yields the
/// global result (modulo DISTINCT, handled by the caller): plain
/// select-project-join with no aggregation, grouping, ordering or slicing.
/// Exactly the shape mapping unfolding emits.
fn scatter_decomposable(statement: &SelectStatement) -> bool {
    statement.group_by.is_empty()
        && statement.having.is_none()
        && statement.order_by.is_empty()
        && statement.limit.is_none()
        && statement.union_all.is_none()
        && !statement.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
}

/// Walks a statement's FROM/JOIN tree (including subqueries and the
/// `UNION ALL` chain) counting base-table references to `partitioned`.
fn count_partitioned_refs(statement: &SelectStatement, partitioned: &[String], count: &mut usize) {
    let mut visit = |table: &TableRef| match table {
        TableRef::Named { name, .. } => {
            if partitioned.iter().any(|t| t == name) {
                *count += 1;
            }
        }
        TableRef::Subquery { query, .. } => count_partitioned_refs(query, partitioned, count),
        TableRef::Function { .. } => {}
    };
    visit(&statement.from);
    for join in &statement.joins {
        visit(&join.table);
    }
    if let Some(next) = &statement.union_all {
        count_partitioned_refs(next, partitioned, count);
    }
}

/// Removes duplicate rows in place, keeping first occurrences.
fn dedup_rows(table: &mut Table) {
    let mut seen: std::collections::HashSet<Vec<optique_relational::Value>> = Default::default();
    table.rows.retain(|row| seen.insert(row.clone()));
}

impl FragmentExecutor for StaticFederation {
    fn execute(&self, fragments: Vec<PlanFragment>) -> Result<FragmentRound, String> {
        // Classify fragments: shippable (placed or scatter) vs coordinator
        // fallback (several partitioned occurrences — a shard-local join
        // would be incomplete — or a non-decomposable statement shape).
        let mut shipped: Vec<StaticFragment> = Vec::new();
        // Slot of each shipped fragment, plus whether its gathered concat
        // needs a cross-shard dedup (scattered DISTINCT statements).
        let mut shipped_slots: Vec<(usize, bool)> = Vec::new();
        let mut results: Vec<Option<Result<Table, String>>> =
            fragments.iter().map(|_| None).collect();
        let mut coordinator_fallbacks = 0usize;
        for (slot, fragment) in fragments.into_iter().enumerate() {
            match self.classify(&fragment.sql) {
                Classification::Placed => {
                    shipped.push(StaticFragment::placed(fragment));
                    shipped_slots.push((slot, false));
                }
                Classification::Scatter { dedup } => {
                    shipped.push(StaticFragment::scattered(fragment));
                    shipped_slots.push((slot, dedup));
                }
                Classification::Coordinator => {
                    coordinator_fallbacks += 1;
                    // `PlanFragment::execute` honors semi-join restrictions
                    // on the fallback path too.
                    results[slot] = Some(
                        fragment
                            .execute(&self.coordinator)
                            .map_err(|e| e.to_string()),
                    );
                }
            }
        }
        for ((slot, dedup), outcome) in shipped_slots
            .into_iter()
            .zip(self.gateway.run_static_fragments(&shipped))
        {
            let mut outcome = outcome.map_err(|e| e.to_string());
            if dedup {
                if let Ok(table) = &mut outcome {
                    dedup_rows(table);
                }
            }
            results[slot] = Some(outcome);
        }
        let tables = results
            .into_iter()
            .map(|slot| slot.expect("every fragment executed"))
            .collect::<Result<Vec<Table>, String>>()?;
        Ok(FragmentRound {
            tables,
            coordinator_fallbacks,
        })
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

impl std::fmt::Debug for StaticFederation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StaticFederation({} workers, {} partitioned tables)",
            self.workers,
            self.partitioned.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_relational::{table::table_of, ColumnType, Value};

    fn db() -> Arc<Database> {
        let mut db = Database::new();
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                    .collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "turbines",
            table_of(
                "turbines",
                &[("tid", ColumnType::Int)],
                (0..7).map(|i| vec![Value::Int(i)]).collect(),
            )
            .unwrap(),
        );
        Arc::new(db)
    }

    fn canon(t: &Table) -> Vec<Vec<Value>> {
        let mut rows = t.rows.clone();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    #[test]
    fn replicated_execution_matches_local() {
        let db = db();
        let federation = StaticFederation::replicated(Arc::clone(&db), 4);
        let sql = "SELECT sid FROM sensors WHERE tid = 3";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let results = federation
            .execute(vec![PlanFragment::new(0, sql, 1.0)])
            .unwrap()
            .tables;
        assert_eq!(canon(&results[0]), canon(&local));
    }

    #[test]
    fn partitioned_scan_covers_all_shards() {
        let db = db();
        let federation = StaticFederation::partitioned(
            Arc::clone(&db),
            4,
            &[("sensors".to_string(), "sid".to_string())],
        )
        .unwrap();
        let sql = "SELECT sid FROM sensors";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let results = federation
            .execute(vec![PlanFragment::new(0, sql, 1.0)])
            .unwrap()
            .tables;
        assert_eq!(results[0].len(), 100);
        assert_eq!(canon(&results[0]), canon(&local));
    }

    #[test]
    fn partitioned_join_with_replica_is_complete() {
        let db = db();
        let federation = StaticFederation::partitioned(
            Arc::clone(&db),
            4,
            &[("sensors".to_string(), "sid".to_string())],
        )
        .unwrap();
        // One partitioned occurrence + one replica: scatter is sound.
        let sql = "SELECT s.sid FROM sensors AS s JOIN turbines AS t ON s.tid = t.tid";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let results = federation
            .execute(vec![PlanFragment::new(0, sql, 2.0)])
            .unwrap()
            .tables;
        assert_eq!(canon(&results[0]), canon(&local));
    }

    #[test]
    fn partitioned_self_join_falls_back_to_coordinator() {
        let db = db();
        let federation = StaticFederation::partitioned(
            Arc::clone(&db),
            4,
            &[("sensors".to_string(), "sid".to_string())],
        )
        .unwrap();
        // Two partitioned occurrences joined on a non-partition key: a
        // shard-local join would miss cross-shard pairs; the coordinator
        // path must keep it complete.
        let sql = "SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.tid = b.tid";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let round = federation
            .execute(vec![PlanFragment::new(0, sql, 4.0)])
            .unwrap();
        assert_eq!(round.coordinator_fallbacks, 1, "self-join must fall back");
        let results = round.tables;
        assert_eq!(canon(&results[0]), canon(&local));
    }

    #[test]
    fn classification_counts_table_refs_not_text() {
        let db = db();
        let federation = StaticFederation::partitioned(
            Arc::clone(&db),
            2,
            &[("sensors".to_string(), "sid".to_string())],
        )
        .unwrap();
        assert!(matches!(
            federation.classify("SELECT sid FROM sensors"),
            Classification::Scatter { dedup: false }
        ));
        assert!(matches!(
            federation.classify("SELECT DISTINCT sid FROM sensors"),
            Classification::Scatter { dedup: true }
        ));
        // Two partitioned references: shard-local joins would be incomplete.
        assert!(matches!(
            federation
                .classify("SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.sid = b.sid"),
            Classification::Coordinator
        ));
        // A partitioned-table name inside a string literal is data, not a
        // scan: this fragment reads only the replicated `turbines` table.
        assert!(matches!(
            federation.classify("SELECT tid FROM turbines WHERE 'sensors' = 'sensors'"),
            Classification::Placed
        ));
        // Aggregates / GROUP BY / LIMIT are not concat-decomposable.
        for sql in [
            "SELECT COUNT(*) AS n FROM sensors",
            "SELECT tid, COUNT(*) AS n FROM sensors GROUP BY tid",
            "SELECT sid FROM sensors LIMIT 3",
            "SELECT sid FROM sensors ORDER BY sid",
            "SELECT sid FROM (SELECT sid FROM sensors) AS s \
             UNION ALL SELECT sid FROM sensors",
        ] {
            assert!(
                matches!(federation.classify(sql), Classification::Coordinator),
                "{sql} must fall back to the coordinator"
            );
        }
        // Unparseable SQL → coordinator fallback (surfaces the real error).
        assert!(matches!(
            federation.classify("SELECT FROM"),
            Classification::Coordinator
        ));
    }

    /// Non-decomposable fragments over a partitioned table must return the
    /// *global* result, not per-shard partials.
    #[test]
    fn aggregates_over_partitioned_tables_stay_global() {
        let db = db();
        let federation = StaticFederation::partitioned(
            Arc::clone(&db),
            4,
            &[("sensors".to_string(), "sid".to_string())],
        )
        .unwrap();
        let round = federation
            .execute(vec![
                PlanFragment::new(0, "SELECT COUNT(*) AS n FROM sensors", 1.0),
                PlanFragment::new(1, "SELECT sid FROM sensors LIMIT 3", 1.0),
                PlanFragment::new(2, "SELECT DISTINCT tid FROM sensors", 1.0),
            ])
            .unwrap();
        // COUNT(*) and LIMIT fall back; DISTINCT scatters with gather-dedup.
        assert_eq!(round.coordinator_fallbacks, 2);
        let results = round.tables;
        assert_eq!(
            results[0].rows,
            vec![vec![Value::Int(100)]],
            "one global count"
        );
        assert_eq!(results[1].len(), 3, "global LIMIT, not 4×3");
        assert_eq!(results[2].len(), 7, "DISTINCT deduped across shards");
    }

    /// A literal containing a partitioned table's name must not force
    /// scatter execution (which would duplicate replicated rows per worker).
    #[test]
    fn literal_mentions_do_not_scatter() {
        let db = db();
        let federation = StaticFederation::partitioned(
            Arc::clone(&db),
            4,
            &[("sensors".to_string(), "sid".to_string())],
        )
        .unwrap();
        let sql = "SELECT tid FROM turbines WHERE 'sensors' = 'sensors'";
        let local = optique_relational::exec::query(sql, &db).unwrap();
        let results = federation
            .execute(vec![PlanFragment::new(0, sql, 1.0)])
            .unwrap()
            .tables;
        assert_eq!(
            results[0].len(),
            local.len(),
            "scatter would return 4x the rows"
        );
    }
}
