//! Span recording and cross-worker stitching.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Identifier of one recorded span, unique within its [`Tracer`].
pub type SpanId = u64;

/// One attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Signed integer (ids, deltas).
    Int(i64),
    /// Unsigned integer (rows, bytes, counts).
    Uint(u64),
    /// Floating point (costs, ratios).
    Float(f64),
    /// Free text (table names, variants).
    Text(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v:.2}"),
            AttrValue::Text(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Uint(v as u64)
    }
}

/// One finished span: a labelled, timed slice of work in a tree.
///
/// Times are microseconds relative to the owning tracer's epoch (creation
/// instant), so spans from one tracer order totally and nest exactly.
#[derive(Clone, Debug)]
pub struct Span {
    /// Tracer-unique id (ids start at 1).
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Stage label, e.g. `"rewrite"` or `"fragment"`.
    pub label: String,
    /// Key/value attributes (rows, worker id, cache hit, …).
    pub attrs: Vec<(String, AttrValue)>,
    /// Start offset from the tracer epoch, in µs.
    pub start_us: u64,
    /// Wall-clock duration, in µs.
    pub duration_us: u64,
}

/// A portable span batch entry for shipping spans between execution sites.
///
/// Worker-side code has no access to the coordinator's tracer (nor its
/// epoch), so it records spans as *records*: the parent is an index into the
/// same batch (or `None` for batch roots) and `start_us` is relative to the
/// batch's own start. The coordinator stitches a batch into its tree with
/// [`Tracer::graft`], which re-bases starts and re-parents batch roots under
/// a coordinator span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Index of the parent record in the same batch, or `None` for roots.
    pub parent: Option<usize>,
    /// Stage label.
    pub label: String,
    /// Key/value attributes.
    pub attrs: Vec<(String, AttrValue)>,
    /// Start offset from the batch start, in µs.
    pub start_us: u64,
    /// Duration in µs.
    pub duration_us: u64,
}

impl SpanRecord {
    /// A root record with the given label and timing.
    pub fn new(label: impl Into<String>, start_us: u64, duration_us: u64) -> Self {
        SpanRecord {
            parent: None,
            label: label.into(),
            attrs: Vec::new(),
            start_us,
            duration_us,
        }
    }

    /// Sets the parent index (builder style).
    pub fn under(mut self, parent: usize) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Appends an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

/// A low-overhead, thread-safe span recorder.
///
/// Recording is a lock-push of an owned [`Span`]; when no tracer is
/// installed the instrumented code paths skip even that (they carry
/// `Option<&Tracer>`).
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<Span>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; its epoch is now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the tracer's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span; it records itself when finished (or dropped).
    pub fn span(&self, parent: Option<SpanId>, label: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            label: label.into(),
            attrs: Vec::new(),
            start_us: self.now_us(),
            started: Instant::now(),
            done: false,
        }
    }

    /// Records a span with explicit timing (for spans derived after the
    /// fact rather than measured in place). Returns its id.
    pub fn record(
        &self,
        parent: Option<SpanId>,
        label: impl Into<String>,
        start_us: u64,
        duration_us: u64,
        attrs: Vec<(String, AttrValue)>,
    ) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.spans.lock().push(Span {
            id,
            parent,
            label: label.into(),
            attrs,
            start_us,
            duration_us,
        });
        id
    }

    /// Stitches a [`SpanRecord`] batch into this tracer's tree: batch roots
    /// become children of `parent`, inner parent indices are preserved, and
    /// every start is re-based by `base_us` (the batch start expressed on
    /// this tracer's clock). Returns the new ids, index-aligned with the
    /// batch.
    pub fn graft(
        &self,
        parent: Option<SpanId>,
        base_us: u64,
        records: &[SpanRecord],
    ) -> Vec<SpanId> {
        // Two passes: a record's parent index may exceed its own index
        // (children often finish before their parent), so ids are assigned
        // up front.
        let ids: Vec<SpanId> = records
            .iter()
            .map(|_| self.next_id.fetch_add(1, Ordering::Relaxed))
            .collect();
        let mut spans = self.spans.lock();
        for (record, &id) in records.iter().zip(&ids) {
            let stitched_parent = match record.parent {
                Some(ix) => ids.get(ix).copied().or(parent),
                None => parent,
            };
            spans.push(Span {
                id,
                parent: stitched_parent,
                label: record.label.clone(),
                attrs: record.attrs.clone(),
                start_us: base_us + record.start_us,
                duration_us: record.duration_us,
            });
        }
        ids
    }

    /// Snapshot of every recorded span.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total duration of every span with the given label, in µs. The
    /// single timing source for per-stage reporting (summing children of a
    /// repeated stage, e.g. one `rewrite` per BGP).
    pub fn sum_duration(&self, label: &str) -> u64 {
        self.spans
            .lock()
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.duration_us)
            .sum()
    }

    /// Exports the recorded spans as a portable batch: ids become batch
    /// indices, parents recorded by other tracers become batch roots.
    pub fn export(&self) -> Vec<SpanRecord> {
        let spans = self.spans.lock();
        let index: HashMap<SpanId, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        spans
            .iter()
            .map(|s| SpanRecord {
                parent: s.parent.and_then(|p| index.get(&p).copied()),
                label: s.label.clone(),
                attrs: s.attrs.clone(),
                start_us: s.start_us,
                duration_us: s.duration_us,
            })
            .collect()
    }
}

/// An open span; finishes (and records itself) on [`SpanGuard::finish`] or
/// drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: SpanId,
    parent: Option<SpanId>,
    label: String,
    attrs: Vec<(String, AttrValue)>,
    start_us: u64,
    started: Instant,
    done: bool,
}

impl SpanGuard<'_> {
    /// The span's id — usable as a parent for children opened while this
    /// span is still running.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) {
        self.attrs.push((key.into(), value.into()));
    }

    /// Closes the span, recording its duration. Returns the id.
    pub fn finish(mut self) -> SpanId {
        self.close();
        self.id
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.tracer.spans.lock().push(Span {
            id: self.id,
            parent: self.parent,
            label: std::mem::take(&mut self.label),
            attrs: std::mem::take(&mut self.attrs),
            start_us: self.start_us,
            duration_us: self.started.elapsed().as_micros() as u64,
        });
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Renders a span forest as an `EXPLAIN ANALYZE`-style text tree.
///
/// Siblings order by start time; each node shows its label, duration and
/// attributes:
///
/// ```text
/// static_query  (time=1240us)
/// ├── parse  (time=12us)
/// └── bgp  (time=1180us, cache=miss)
///     └── exec  (time=1102us, rows=42)
/// ```
pub fn render_tree(spans: &[Span]) -> String {
    let known: HashMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut children: HashMap<Option<SpanId>, Vec<&Span>> = HashMap::new();
    for span in spans {
        // A dangling parent (never recorded) makes the span a root.
        let key = span.parent.filter(|p| known.contains_key(p));
        children.entry(key).or_default().push(span);
    }
    for siblings in children.values_mut() {
        siblings.sort_by_key(|s| (s.start_us, s.id));
    }
    let mut out = String::new();
    if let Some(roots) = children.get(&None) {
        for (i, root) in roots.iter().enumerate() {
            let last = i + 1 == roots.len();
            render_node(root, "", last, roots.len() == 1, &children, &mut out);
        }
    }
    out
}

fn render_node(
    span: &Span,
    prefix: &str,
    last: bool,
    top: bool,
    children: &HashMap<Option<SpanId>, Vec<&Span>>,
    out: &mut String,
) {
    let (branch, extend) = if top {
        ("", "")
    } else if last {
        ("└── ", "    ")
    } else {
        ("├── ", "│   ")
    };
    out.push_str(prefix);
    out.push_str(branch);
    out.push_str(&span.label);
    out.push_str(&format!("  (time={}us", span.duration_us));
    for (key, value) in &span.attrs {
        out.push_str(&format!(", {key}={value}"));
    }
    out.push_str(")\n");
    if let Some(kids) = children.get(&Some(span.id)) {
        let child_prefix = format!("{prefix}{extend}");
        for (i, kid) in kids.iter().enumerate() {
            let kid_last = i + 1 == kids.len();
            render_node(kid, &child_prefix, kid_last, false, children, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_finish_and_on_drop() {
        let tracer = Tracer::new();
        let root = tracer.span(None, "root");
        let root_id = root.id();
        {
            let mut child = tracer.span(Some(root_id), "child");
            child.set_attr("rows", 7u64);
            // Dropped without finish: still recorded.
        }
        let finished = root.finish();
        assert_eq!(finished, root_id);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.label == "child").unwrap();
        assert_eq!(child.parent, Some(root_id));
        assert_eq!(child.attrs, vec![("rows".to_string(), AttrValue::Uint(7))]);
    }

    #[test]
    fn graft_rebases_and_reparents() {
        let tracer = Tracer::new();
        let root = tracer.record(None, "exec", 100, 500, Vec::new());
        let batch = vec![
            SpanRecord::new("worker", 0, 400).attr("worker", 1u64),
            SpanRecord::new("fragment", 10, 200).under(0),
        ];
        let ids = tracer.graft(Some(root), 150, &batch);
        assert_eq!(ids.len(), 2);
        let spans = tracer.spans();
        let worker = spans.iter().find(|s| s.label == "worker").unwrap();
        let fragment = spans.iter().find(|s| s.label == "fragment").unwrap();
        assert_eq!(worker.parent, Some(root));
        assert_eq!(worker.start_us, 150);
        assert_eq!(fragment.parent, Some(worker.id));
        assert_eq!(fragment.start_us, 160);
    }

    #[test]
    fn graft_handles_child_before_parent_in_batch() {
        let tracer = Tracer::new();
        // Child at index 0 points at parent at index 1 (finish order).
        let batch = vec![
            SpanRecord::new("inner", 5, 10).under(1),
            SpanRecord::new("outer", 0, 20),
        ];
        tracer.graft(None, 0, &batch);
        let spans = tracer.spans();
        let inner = spans.iter().find(|s| s.label == "inner").unwrap();
        let outer = spans.iter().find(|s| s.label == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn export_then_graft_roundtrips_structure() {
        let worker = Tracer::new();
        let root = worker.span(None, "round");
        let root_id = root.id();
        worker.span(Some(root_id), "fragment").finish();
        root.finish();
        let batch = worker.export();
        assert_eq!(batch.len(), 2);

        let coord = Tracer::new();
        let exec = coord.record(None, "exec", 0, 1000, Vec::new());
        coord.graft(Some(exec), 0, &batch);
        let spans = coord.spans();
        let round = spans.iter().find(|s| s.label == "round").unwrap();
        let fragment = spans.iter().find(|s| s.label == "fragment").unwrap();
        assert_eq!(round.parent, Some(exec));
        assert_eq!(fragment.parent, Some(round.id));
    }

    #[test]
    fn sum_duration_totals_repeated_labels() {
        let tracer = Tracer::new();
        tracer.record(None, "rewrite", 0, 30, Vec::new());
        tracer.record(None, "rewrite", 40, 12, Vec::new());
        tracer.record(None, "unfold", 60, 5, Vec::new());
        assert_eq!(tracer.sum_duration("rewrite"), 42);
        assert_eq!(tracer.sum_duration("unfold"), 5);
        assert_eq!(tracer.sum_duration("missing"), 0);
    }

    #[test]
    fn render_tree_shows_nested_spans_with_attrs() {
        let tracer = Tracer::new();
        let root = tracer.record(None, "static_query", 0, 1240, Vec::new());
        tracer.record(Some(root), "parse", 0, 12, Vec::new());
        let bgp = tracer.record(
            Some(root),
            "bgp",
            20,
            1180,
            vec![("cache".to_string(), AttrValue::Text("miss".into()))],
        );
        tracer.record(
            Some(bgp),
            "exec",
            40,
            1102,
            vec![("rows".to_string(), AttrValue::Uint(42))],
        );
        let text = render_tree(&tracer.spans());
        assert!(text.starts_with("static_query  (time=1240us)\n"));
        assert!(text.contains("├── parse  (time=12us)\n"));
        assert!(text.contains("└── bgp  (time=1180us, cache=miss)\n"));
        assert!(text.contains("    └── exec  (time=1102us, rows=42)\n"));
    }

    #[test]
    fn render_tree_orders_siblings_by_start() {
        let tracer = Tracer::new();
        tracer.record(None, "second", 50, 1, Vec::new());
        tracer.record(None, "first", 10, 1, Vec::new());
        let text = render_tree(&tracer.spans());
        let first_at = text.find("first").unwrap();
        let second_at = text.find("second").unwrap();
        assert!(first_at < second_at);
    }
}
