//! Query observability for the OPTIQUE reproduction.
//!
//! The paper's Figure 3 dashboards "show diagnostics results in real time";
//! behind them sits per-stage, per-worker timing. This crate is that
//! measurement substrate:
//!
//! - [`Tracer`] — a low-overhead in-process span recorder. A span has an id,
//!   an optional parent, a label, attributes, a start offset and a duration
//!   (all times in microseconds relative to the tracer's epoch).
//! - [`SpanRecord`] — a portable, epoch-free span batch entry. Workers record
//!   their fragment spans as records (parents are batch indices, starts are
//!   relative to the batch start); the coordinator [`Tracer::graft`]s the
//!   batch under its own execution span, stitching worker-side children into
//!   one tree.
//! - [`Histogram`] — a log-linear (HDR-style) latency histogram with atomic
//!   buckets and p50/p95/p99 extraction, accurate to one sub-bucket
//!   (16 sub-buckets per power of two, ≤ 6.25 % relative error).
//! - [`MetricsRegistry`] — a thread-safe name → counter/gauge/histogram
//!   registry with JSON and Prometheus-text exporters.
//! - [`render_tree`] — an `EXPLAIN ANALYZE`-style text rendering of a span
//!   forest, used by `Platform::explain_analyze`.

mod metrics;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use span::{render_tree, AttrValue, Span, SpanGuard, SpanId, SpanRecord, Tracer};
