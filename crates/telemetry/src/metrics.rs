//! Counters, log-linear latency histograms, and the metrics registry.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level that can move both ways (queue depths, in-flight
/// request counts) — where [`Counter`] only accumulates.
#[derive(Debug, Default)]
pub struct Gauge(std::sync::atomic::AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the level.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements the level.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two,
/// bounding the relative quantization error at 1/16 = 6.25 %.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range at that resolution.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Index of the log-linear bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as u64;
        let mantissa = (v >> (exp - SUB_BITS as u64)) & (SUB - 1);
        (((exp - SUB_BITS as u64 + 1) << SUB_BITS) + mantissa) as usize
    }
}

/// Largest value mapping to bucket `index` (the reported quantile value).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        index as u64
    } else {
        let exp = (index as u64 >> SUB_BITS) + SUB_BITS as u64 - 1;
        let mantissa = index as u64 & (SUB - 1);
        let lower = (SUB + mantissa) << (exp - SUB_BITS as u64);
        // `lower - 1 + width` rather than `lower + width - 1`: the top
        // bucket's upper bound is exactly `u64::MAX` and must not overflow.
        (lower - 1) + (1u64 << (exp - SUB_BITS as u64))
    }
}

/// A thread-safe log-linear (HDR-style) histogram of `u64` samples
/// (microseconds, by convention).
///
/// Values land in one of [`BUCKETS`] atomic buckets — exact below 16, then
/// 16 linear sub-buckets per power of two — so recording is two atomic adds
/// and quantiles come back within 6.25 % of the exact sorted quantile.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX => 0,
            v => v,
        }
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        match self.count() {
            0 => 0,
            n => self.sum() / n,
        }
    }

    /// The nearest-rank `p`-th percentile (`0.0 ..= 100.0`), within one
    /// log-linear bucket of the exact sorted quantile. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Report the bucket's upper bound, clamped to the observed
                // extremes so p0/p100 stay exact.
                return bucket_upper(index)
                    .min(self.max.load(Ordering::Relaxed))
                    .max(self.min());
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Point-in-time summary for export.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
        }
    }
}

/// A frozen histogram summary (one registry snapshot row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A thread-safe registry of named counters and histograms.
///
/// Names are dotted paths (`"static.query_us"`); [`MetricsRegistry::counter`]
/// and [`MetricsRegistry::histogram`] get-or-create, so instruments can be
/// resolved once and then updated lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Point-in-time snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A frozen registry snapshot, exportable as JSON or Prometheus text.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter rows, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauge rows, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` histogram rows, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Renders the snapshot as a JSON object (hand-rolled: the build has no
    /// serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_string(name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50,
                s.p95,
                s.p99
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters as `counter` metrics, gauges as `gauge` metrics, histograms
    /// as `summary` metrics with `quantile` labels plus `_sum`/`_count`
    /// rows. Dotted names are sanitized (`static.query_us` →
    /// `static_query_us`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, s) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", s.sum);
            let _ = writeln!(out, "{name}_count {}", s.count);
        }
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// `[a-zA-Z0-9_:]`, prefixing a digit-initial name with `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' || (c.is_ascii_digit() && i > 0) {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank percentile over a sorted copy of `samples`.
    fn exact_percentile(samples: &[u64], p: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    /// The histogram's quantization bound: one sub-bucket of relative error
    /// (1/16), plus 1 for integer rounding at small values.
    fn within_bucket_error(approx: u64, exact: u64) -> bool {
        let tolerance = exact / (SUB - 1) + 1;
        approx >= exact.saturating_sub(tolerance) && approx <= exact + tolerance
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut last = 0usize;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= last, "bucket index regressed at {v}");
            assert!(v <= bucket_upper(b), "{v} above its bucket's upper bound");
            last = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentiles_match_exact_quantiles_on_fixed_samples() {
        let samples: Vec<u64> = (1..=1000).collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let exact = exact_percentile(&samples, p);
            let approx = h.percentile(p);
            assert!(
                within_bucket_error(approx, exact),
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn skewed_tail_is_resolved() {
        let h = Histogram::new();
        // 99 fast queries and one slow outlier.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(within_bucket_error(h.p50(), 100));
        assert!(within_bucket_error(h.p95(), 100));
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        assert_eq!(h.max(), 7999);
    }

    proptest! {
        #[test]
        fn percentiles_track_exact_quantiles(
            samples in proptest::collection::vec(0u64..10_000_000, 1..400),
            p in 0.0f64..100.0,
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let exact = exact_percentile(&samples, p);
            let approx = h.percentile(p);
            prop_assert!(
                within_bucket_error(approx, exact),
                "p{}: approx {} vs exact {} over {} samples",
                p, approx, exact, samples.len()
            );
        }
    }

    #[test]
    fn registry_get_or_create_shares_instruments() {
        let registry = MetricsRegistry::new();
        registry.counter("queries").inc();
        registry.counter("queries").add(2);
        assert_eq!(registry.counter("queries").get(), 3);
        registry.histogram("latency_us").record(10);
        registry.histogram("latency_us").record(20);
        assert_eq!(registry.histogram("latency_us").count(), 2);
    }

    #[test]
    fn gauge_tracks_level_not_total() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("server.queue_depth");
        g.add(5);
        g.dec();
        registry.gauge("server.queue_depth").inc();
        assert_eq!(g.get(), 5);
        g.set(-2);
        assert_eq!(registry.snapshot().gauge("server.queue_depth"), Some(-2));
    }

    #[test]
    fn snapshot_exports_json_and_prometheus() {
        let registry = MetricsRegistry::new();
        registry.counter("static.queries").add(42);
        registry.gauge("server.queue_depth").set(7);
        let h = registry.histogram("static.query_us");
        for v in [100, 200, 300] {
            h.record(v);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("static.queries"), Some(42));
        assert_eq!(snap.histogram("static.query_us").unwrap().count, 3);

        let json = snap.to_json();
        assert!(json.contains("\"static.queries\":42"), "{json}");
        assert!(json.contains("\"server.queue_depth\":7"), "{json}");
        assert!(json.contains("\"static.query_us\":{\"count\":3"), "{json}");

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE static_queries counter"), "{prom}");
        assert!(prom.contains("static_queries 42"), "{prom}");
        assert!(prom.contains("# TYPE server_queue_depth gauge"), "{prom}");
        assert!(prom.contains("server_queue_depth 7"), "{prom}");
        assert!(prom.contains("# TYPE static_query_us summary"), "{prom}");
        assert!(prom.contains("static_query_us{quantile=\"0.5\"}"), "{prom}");
        assert!(prom.contains("static_query_us_count 3"), "{prom}");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("static.query_us"), "static_query_us");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
    }
}
