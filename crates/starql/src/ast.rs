//! The STARQL abstract syntax tree.

use optique_rewrite::Atom;
use optique_sparql::Expression;

use crate::having::ProtoFormula;

/// CQL-style relation-to-stream operator selecting what a tick emits.
///
/// Each tick computes a relation (the constructed graph for the closed
/// window); the output mode turns the tick-indexed sequence of relations
/// back into a stream: `RSTREAM` emits the whole relation, `ISTREAM` only
/// the triples new since the previous tick, `DSTREAM` only the triples
/// that disappeared.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputMode {
    /// Emit the full per-tick relation (the default).
    #[default]
    RStream,
    /// Emit insertions w.r.t. the previous tick.
    IStream,
    /// Emit deletions w.r.t. the previous tick.
    DStream,
}

/// A parsed STARQL continuous query (paper Figure 1 shape).
#[derive(Clone, Debug)]
pub struct StarQlQuery {
    /// `CREATE STREAM <name> AS` — the output stream's name.
    pub output_stream: String,
    /// `AS [RSTREAM|ISTREAM|DSTREAM] CONSTRUCT` — the relation-to-stream
    /// operator applied to the per-tick constructed graphs.
    pub output_mode: OutputMode,
    /// `CONSTRUCT GRAPH NOW { … }` — the output triple template (atoms over
    /// WHERE/HAVING variables).
    pub construct: Vec<Atom>,
    /// `FROM STREAM <name> [window] -> slide`.
    pub stream: StreamClause,
    /// `STATIC DATA <iri>`, when present.
    pub static_data: Option<String>,
    /// `ONTOLOGY <iri>`, when present.
    pub ontology_ref: Option<String>,
    /// `USING PULSE WITH START = …, FREQUENCY = …`.
    pub pulse: Option<PulseClause>,
    /// The WHERE basic graph pattern (a conjunctive query over the
    /// ontology's vocabulary). When the clause uses `UNION`, this is the
    /// first disjunct; see [`StarQlQuery::where_disjuncts`].
    pub where_bgp: Vec<Atom>,
    /// The full WHERE clause as a union of basic graph patterns. STARQL
    /// WHERE clauses are parsed with the SPARQL group-graph-pattern parser
    /// (`optique-sparql`), so nested groups flatten and `UNION` distributes
    /// into disjuncts; each disjunct is enriched and unfolded separately and
    /// the results are unioned. Invariant: `where_disjuncts[0] == where_bgp`.
    pub where_disjuncts: Vec<Vec<Atom>>,
    /// Per-disjunct `FILTER` expressions (parallel to
    /// [`StarQlQuery::where_disjuncts`]). Only the SQL-expressible fragment
    /// is accepted — comparisons, `&&`/`||`/`!`, arithmetic — and the
    /// translator pushes each filter into the unfolded SQL `WHERE` clause,
    /// so filtered continuous queries monitor exactly the bindings that
    /// pass. Invariant: `where_filters.len() == where_disjuncts.len()`.
    pub where_filters: Vec<Vec<Expression>>,
    /// `SEQUENCE BY` method.
    pub sequence: SequenceMethod,
    /// The HAVING condition, pre-macro-expansion.
    pub having: ProtoFormula,
    /// `CREATE AGGREGATE` macro definitions appearing with the query.
    pub aggregates: Vec<AggregateDef>,
}

/// The windowed input stream reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamClause {
    /// Stream name.
    pub name: String,
    /// Window range in ms (`NOW - range` to `NOW`).
    pub range_ms: i64,
    /// Window slide in ms (`-> slide`).
    pub slide_ms: i64,
}

/// The output pulse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PulseClause {
    /// First tick, ms (clock literals are ms since the logical midnight).
    pub start_ms: i64,
    /// Tick period, ms.
    pub frequency_ms: i64,
}

/// Window sequencing strategies. The paper's demo uses the *standard
/// sequence* (one state per distinct timestamp); the enum leaves room for
/// the sensitivity variants of [12].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SequenceMethod {
    /// One state per distinct timestamp, states ordered by time.
    StdSeq {
        /// The sequence variable name (`AS seq`).
        alias: String,
    },
}

impl SequenceMethod {
    /// The sequence alias.
    pub fn alias(&self) -> &str {
        match self {
            SequenceMethod::StdSeq { alias } => alias,
        }
    }
}

/// A `CREATE AGGREGATE NS:NAME ($p1, $p2) AS HAVING <formula>` macro.
#[derive(Clone, Debug)]
pub struct AggregateDef {
    /// Namespace part (`MONOTONIC`).
    pub namespace: String,
    /// Name part (`HAVING`).
    pub name: String,
    /// Formal parameters, `$`-stripped (`var`, `attr`).
    pub params: Vec<String>,
    /// The body, with [`crate::having::ProtoTerm::Param`] placeholders.
    pub body: ProtoFormula,
}

impl std::fmt::Display for StreamClause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [NOW-\"{}\"^^xsd:duration, NOW]->\"{}\"^^xsd:duration",
            self.name,
            crate::duration::format_duration_ms(self.range_ms),
            crate::duration::format_duration_ms(self.slide_ms)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_clause_displays_durations() {
        let c = StreamClause {
            name: "S_Msmt".into(),
            range_ms: 10_000,
            slide_ms: 1_000,
        };
        assert_eq!(
            c.to_string(),
            "S_Msmt [NOW-\"PT10S\"^^xsd:duration, NOW]->\"PT1S\"^^xsd:duration"
        );
    }

    #[test]
    fn sequence_alias() {
        let s = SequenceMethod::StdSeq {
            alias: "seq".into(),
        };
        assert_eq!(s.alias(), "seq");
    }
}
